//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the proptest API the workspace's property-based tests use:
//! the [`Strategy`](strategy::Strategy) trait with `prop_map`/`boxed`, range
//! and tuple strategies, [`collection::vec()`] / [`collection::btree_set()`],
//! [`option::of`], [`Just`](strategy::Just),
//! `any::<T>()`, and the `proptest!` / `prop_oneof!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest: generation is driven by a deterministic
//! per-test PRNG (fixed seed, overridable via `PROPTEST_RNG_SEED`), and there
//! is **no shrinking** — a failing case panics with the assertion message
//! directly. That is sufficient for CI-grade property checking; failures
//! reproduce exactly across runs because the seed is fixed.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs a block of property-based test functions.
///
/// Supported shape (a subset of real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0..10usize, v in collection::vec(any::<bool>(), 5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng =
                $crate::test_runner::TestRng::for_test(::core::stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniformly chooses among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}
