//! Test configuration and the deterministic generation PRNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic PRNG driving value generation (SplitMix64).
///
/// Each test function derives its stream from a fixed global seed and the
/// test's name, so adding a test never perturbs the cases of another, and
/// failures reproduce exactly. Set `PROPTEST_RNG_SEED` to explore a different
/// stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for the named test.
    pub fn for_test(name: &str) -> Self {
        let base = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x0000_5EED_0CFD_2008);
        // FNV-1a over the test name decorrelates sibling tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: base ^ h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot draw below 0");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn in_range_inclusive(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "cannot sample from empty range");
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as i128
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}
