//! The [`Strategy`] trait and its core combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating random values of an associated type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces a fresh value per case from the test's deterministic PRNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy so differently-typed strategies can be mixed
    /// (e.g. by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Object-safe face of [`Strategy`], used behind [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several strategies of the same value type; built by
/// [`crate::prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                rng.in_range_inclusive(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_inclusive(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
