//! Strategies for `Option`, mirroring `proptest::option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`; returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match real proptest's default: `None` with probability 1/2... biased
        // slightly toward `Some` so optional structure is exercised often.
        if rng.chance(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// Wraps a strategy to produce `Option`s of its values.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
