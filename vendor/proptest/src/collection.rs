//! Strategies for collections, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.in_range_inclusive(self.lo as i128, self.hi as i128) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>`; returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>`; returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates shrink the set, so retry a bounded number of times; a
        // small element universe may legitimately cap the reachable size.
        let mut attempts = 0;
        while set.len() < target && attempts < 50 + 10 * target {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates ordered sets whose size falls in `size` (best effort when the
/// element universe is smaller than the requested size).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
