//! The [`Arbitrary`] trait and the [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy producing arbitrary values of `A`; returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<A> {
    _marker: PhantomData<fn() -> A>,
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

/// Returns the canonical strategy for `A`, mirroring `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
