//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro crate
//! accepts the `#[derive(Serialize, Deserialize)]` attributes used throughout
//! the workspace (including `#[serde(..)]` helper attributes) and expands to
//! nothing. Nothing in the workspace performs actual serialisation; the
//! derives only mark types as serialisable for downstream consumers.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
