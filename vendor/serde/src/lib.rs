//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io. The workspace only uses
//! serde to *mark* types with `#[derive(Serialize, Deserialize)]`; no code
//! path serialises anything. This crate therefore exposes the two trait names
//! and re-exports no-op derive macros from the sibling `serde_derive` shim.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
