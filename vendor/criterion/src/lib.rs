//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the criterion API the bench targets use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `iter`, and the
//! `criterion_group!` / `criterion_main!` macros — as a simple wall-clock
//! harness: it warms up for `warm_up_time`, then runs `sample_size` samples
//! whose iteration counts are sized to fill `measurement_time`, and prints
//! mean / min / max per benchmark. There is no statistical analysis, HTML
//! report, or baseline comparison.
//!
//! Passing `--test` (as `cargo test --benches` does) runs each benchmark for
//! a single iteration, so benches double as smoke tests.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver; one per bench target.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // Recognise the flags cargo passes to bench binaries; ignore the rest
        // (e.g. `--bench`, which cargo always appends).
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Self { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget each benchmark's samples share.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| routine(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| routine(b, input));
        self
    }

    /// Ends the group. (Statistics are printed per benchmark as they run.)
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.test_mode {
            let mut bencher = Bencher {
                mode: Mode::Test,
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            routine(&mut bencher);
            println!("test {full} ... ok");
            return;
        }

        // Warm-up: run until the warm-up budget is spent, measuring the mean
        // iteration cost to size the measurement samples.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut bencher = Bencher {
            mode: Mode::Measure,
            elapsed: Duration::ZERO,
            iterations: 1,
        };
        while warm_start.elapsed() < self.warm_up_time {
            routine(&mut bencher);
            warm_iters += bencher.iterations;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Size each sample so all samples together roughly fill the budget.
        let budget = self.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut times = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iterations = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            routine(&mut bencher);
            times.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{full:<50} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Test,
    Measure,
}

/// Timer handle passed to benchmark routines.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it as many times as the harness requests.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iterations {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
            }
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
