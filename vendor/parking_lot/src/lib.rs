//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API: the
//! guard accessors return guards directly instead of `LockResult`s. A
//! poisoned lock (a panic while holding the guard) is transparently recovered,
//! which matches parking_lot's behaviour of not tracking poisoning at all.

#![forbid(unsafe_code)]

use std::sync;

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}
