//! Sequence-related sampling helpers.

use crate::{Rng, RngCore};

/// Extension methods for random operations on slices.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
