//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++ seeded via
/// SplitMix64, matching `rand`'s `StdRng` role (not its exact stream).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&y));
        }
    }
}
