//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the `rand` API the workspace uses — [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::gen`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — on top of xoshiro256++, seeded
//! via SplitMix64. Determinism per seed is the only distributional property
//! the workspace relies on (datagen fixes seeds for reproducible workloads);
//! the generator is nevertheless a high-quality one.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's bit stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
