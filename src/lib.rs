//! # ecfd
//!
//! Extended Conditional Functional Dependencies (eCFDs) for data cleaning —
//! a reproduction of *"Increasing the Expressivity of Conditional Functional
//! Dependencies without Extra Complexity"* (Bravo, Fan, Geerts, Ma;
//! ICDE 2008) as a Rust workspace.
//!
//! This crate is the facade: it re-exports the workspace crates so that an
//! application only needs one dependency.
//!
//! * [`relation`] — in-memory relational storage (schemas, relations, row
//!   ids, indexes, catalogs, update batches, CSV I/O).
//! * [`engine`] — a small SQL engine (parser + executor) playing the role of
//!   the RDBMS the paper runs its detection queries on.
//! * [`logic`] — propositional formulas and MAXGSAT approximation algorithms.
//! * [`core`] — the eCFD constraint language: pattern tableaux, a textual
//!   syntax, satisfaction semantics, exact satisfiability and implication,
//!   and the MAXSS → MAXGSAT reduction.
//! * [`detect`] — violation detection: the tableau-as-data encoding, the
//!   SQL-based `BATCHDETECT`, the incremental `INCDETECT`, and a native
//!   semantic detector.
//! * [`plan`] — plan compilation: constraint sets lowered into explicit
//!   detection plans (HIR → shared-scan-fused MIR) executed over pluggable
//!   storage drivers (columnar scan, SQL pushdown), behind the same
//!   `DetectorBackend` trait; `EXPLAIN PLAN` renders the result.
//! * [`repair`] — violation explanation and data repair: conflict graphs,
//!   cardinality repairs by tuple deletion (greedy and MAXGSAT-backed exact),
//!   value-modification repairs under pluggable cost models, and a verified
//!   repair → re-detect loop.
//! * [`session`] — the high-level API: a stateful [`Session`](session::Session)
//!   owning the catalog, compiled constraint sets, and the four detector
//!   backends behind one `DetectorBackend` trait, with policy-based routing
//!   between batch and incremental detection — plus epoch-stamped
//!   [`Snapshot`](session::Snapshot)s for concurrent readers.
//! * [`serve`] — the concurrent serving layer: a single writer applying
//!   delta batches from a bounded ingest queue, Arc-swapped snapshot
//!   publication for lock-free readers, and a line protocol over TCP
//!   (see `ARCHITECTURE.md` for the epoch lifecycle).
//! * [`wal`] — an append-only write-ahead log of ticket-ordered delta
//!   records with checksummed framing and epoch checkpoints; the serving
//!   layer's durability and replication substrate.
//! * [`obs`] — the observability core: atomic counters/gauges, lock-free
//!   latency histograms with p50/p95/p99 extraction, and the sorted text
//!   exposition served by the `STATS` protocol verb.
//! * [`datagen`] — synthetic workloads reproducing the paper's experimental
//!   setting.
//!
//! ## Quick start
//!
//! The [`session::Session`] API is the recommended path — load data, register
//! constraints once, then detect / explain / repair against the compiled set:
//!
//! ```
//! use ecfd::prelude::*;
//!
//! // A toy cust table (Fig. 1 of the paper, abridged).
//! let schema = Schema::builder("cust")
//!     .attr("CT", DataType::Str)
//!     .attr("AC", DataType::Str)
//!     .build();
//! let data = Relation::with_tuples(schema, [
//!     Tuple::from_iter(["Albany", "718"]),   // wrong area code
//!     Tuple::from_iter(["NYC", "212"]),
//! ]).unwrap();
//!
//! let mut session = Session::new();
//! session.load(data).unwrap();
//! // φ1 of the paper, written in the textual syntax.
//! session.register_text(
//!     "cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }",
//! ).unwrap();
//!
//! let report = session.detect().unwrap();
//! assert_eq!(report.num_sv(), 1);
//!
//! let outcome = session.repair().unwrap();
//! assert!(outcome.final_report.is_clean());
//! ```
//!
//! The per-detector types (`SemanticDetector`, `BatchDetector`,
//! `IncrementalDetector`, `RepairEngine`) remain exported as the low-level
//! layer — see `examples/incremental_monitoring.rs` for that style.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ecfd_core as core;
pub use ecfd_datagen as datagen;
pub use ecfd_detect as detect;
pub use ecfd_engine as engine;
pub use ecfd_logic as logic;
pub use ecfd_obs as obs;
pub use ecfd_plan as plan;
pub use ecfd_relation as relation;
pub use ecfd_repair as repair;
pub use ecfd_serve as serve;
pub use ecfd_session as session;
pub use ecfd_wal as wal;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use ecfd_core::{
        check, check_all, parse_ecfd, parse_ecfds, Cfd, CompileOptions, ConstraintSet, ECfd,
        ECfdBuilder, PatternTuple, PatternValue, SatisfactionResult, Violation, ViolationKind,
        ViolationSet,
    };
    pub use ecfd_core::{implication, maxss, satisfiability};
    pub use ecfd_detect::{
        BackendKind, BatchDetector, ConstraintRef, DetectionReport, DetectorBackend, Encoding,
        EvidenceReport, IncrementalBackend, IncrementalDetector, Parallelism, SemanticBackend,
        SemanticDetector, SqlBackend,
    };
    pub use ecfd_engine::{Engine, ResultSet};
    pub use ecfd_logic::{BoolExpr, HardSoftInstance, MaxGSatInstance, MaxGSatSolver};
    pub use ecfd_obs::{Histogram, Registry};
    pub use ecfd_plan::{Capability, ColumnarDriver, Driver, Plan, PlanBackend, SqlDriver};
    pub use ecfd_relation::{
        Catalog, Code, CodeVec, ColumnarView, DataType, Delta, Dictionary, Domain, Relation, RowId,
        Schema, Tuple, Value,
    };
    pub use ecfd_repair::{
        repair_verified, ConflictGraph, ConstantCost, CostModel, DeletionSolver, EditDistanceCost,
        PerAttributeCost, Repair, RepairEngine, RepairMode, RepairOptions, VerifiedRepair,
    };
    pub use ecfd_serve::{Hub, ServeConfig, Server, SnapshotStore, Writer};
    pub use ecfd_session::{RoutingPolicy, Session, SessionError, Snapshot, Stage};
    pub use ecfd_wal::{Wal, WalRecord};
}
