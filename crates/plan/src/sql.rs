//! The SQL pushdown driver: executes a plan by handing the whole constraint
//! set to the relational engine's `BATCHDETECT` path
//! ([`Capability::PushdownSql`]).
//!
//! Pushdown trades operator-level control for engine-side execution: the
//! plan's scan/flag structure is not interpreted node by node — the engine's
//! SQL rewriting (the paper's detection technique) evaluates the same
//! constraints wholesale. The driver contract still holds: reports and
//! normalized evidence are byte-identical to the columnar interpretation,
//! which the differential suite asserts.

use crate::driver::{Capability, Driver, ExecOutcome};
use crate::mir::Plan;
use crate::Result;
use ecfd_detect::BatchDetector;
use ecfd_relation::Catalog;

/// Pushes plan execution down through the SQL batch-detection path.
///
/// Construction fails when the constraint set is outside the SQL encoding's
/// envelope (non-string constrained attributes) — the columnar driver has no
/// such restriction, which is exactly what the [`Capability`] descriptor
/// exists to surface.
#[derive(Debug, Clone)]
pub struct SqlDriver {
    detector: BatchDetector,
}

impl SqlDriver {
    /// Builds the driver by lowering the plan's constraint set through the
    /// SQL rewriter.
    pub fn new(plan: &Plan) -> Result<Self> {
        Ok(SqlDriver {
            detector: BatchDetector::from_set(plan.set())?,
        })
    }
}

impl Driver for SqlDriver {
    fn capability(&self) -> Capability {
        Capability::PushdownSql
    }

    fn name(&self) -> &'static str {
        "sql"
    }

    fn execute(&mut self, catalog: &mut Catalog) -> Result<ExecOutcome> {
        let (report, evidence) = self.detector.detect_with_evidence(catalog)?;
        let groups = evidence.num_groups() as u64;
        let rows_scanned = report.total_rows as u64;
        Ok(ExecOutcome {
            report,
            evidence,
            groups,
            rows_scanned,
        })
    }
}
