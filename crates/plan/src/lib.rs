//! # ecfd-plan
//!
//! Detection-plan compilation: the verify → lower → plan → execute pipeline
//! that turns a compiled [`ConstraintSet`](ecfd_core::ConstraintSet) into an
//! explicit, inspectable detection plan executed against pluggable storage
//! drivers.
//!
//! The three existing detector backends each hand-interpret the constraint
//! set their own way — the SQL rewriter, the native columnar scan and the
//! incremental maintainer all re-derive *how* to scan, group and flag for
//! every registered eCFD. This crate factors that decision out into data:
//!
//! 1. **Lower** ([`lower`]): every split single-pattern constraint becomes
//!    one [`HirNode`] — a logical scan / group / flag tree over
//!    dictionary-coded columns, with the constraint's attribute lists
//!    resolved to column positions once.
//! 2. **Plan** ([`Hir::optimize`]): the HIR is optimized into a [`Plan`]
//!    (the MIR). The headline rewrite is *shared scans*: constraints whose
//!    `X` attribute lists are identical fuse into one grouped [`ScanNode`]
//!    feeding multiple [`FlagNode`] operators, so the per-row `X` projection
//!    is computed once per scan instead of once per constraint.
//!    [`Hir::sequential`] produces the unfused baseline plan (one scan per
//!    constraint) the benchmarks compare against.
//! 3. **Execute** ([`Driver`]): a plan runs against any driver advertising a
//!    [`Capability`] — [`ColumnarDriver`] executes the operators over the
//!    dictionary-coded columnar core with the same two-phase sharded
//!    parallel scan as the semantic detector, [`SqlDriver`] pushes the whole
//!    plan down through the `BATCHDETECT` SQL path ([`Capability::PushdownSql`]).
//!
//! [`PlanBackend`] packages a plan plus a driver behind the ordinary
//! [`DetectorBackend`](ecfd_detect::DetectorBackend) trait, so sessions and
//! the serving layer route to it like any other backend
//! (`BackendKind::Plan`), and every pass is recorded as
//! `detect.pass.ns{backend="plan"}` in the process-wide metrics registry.
//! [`Plan::render`] produces the deterministic text form the serving
//! layer's `EXPLAIN PLAN` verb exposes.
//!
//! ## Example
//!
//! ```
//! use ecfd_core::ConstraintSet;
//! use ecfd_detect::DetectorBackend;
//! use ecfd_plan::{Plan, PlanBackend};
//! use ecfd_relation::{Catalog, DataType, Relation, Schema, Tuple};
//!
//! let schema = Schema::builder("cust")
//!     .attr("CT", DataType::Str)
//!     .attr("AC", DataType::Str)
//!     .build();
//! let set = ConstraintSet::parse(
//!     &schema,
//!     "cust: [CT] -> [AC] | [], { {Albany} || {518} ; {Troy} || {518} }",
//! ).unwrap();
//!
//! // Both pattern tuples share X = [CT]: the optimized plan is one scan.
//! let plan = Plan::compile(&set).unwrap();
//! assert_eq!(plan.num_scans(), 1);
//! assert_eq!(plan.num_flags(), 2);
//!
//! let mut catalog = Catalog::new();
//! catalog.create(Relation::with_tuples(schema, [
//!     Tuple::from_iter(["Albany", "718"]), // wrong area code
//!     Tuple::from_iter(["NYC", "212"]),
//! ]).unwrap()).unwrap();
//! let mut backend = PlanBackend::from_set(&set).unwrap();
//! let (report, _) = backend.detect(&mut catalog).unwrap();
//! assert_eq!(report.num_sv(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod backend;
mod columnar;
mod driver;
mod hir;
mod mir;
mod sql;

pub use backend::PlanBackend;
pub use columnar::ColumnarDriver;
pub use driver::{Capability, Driver, ExecOutcome};
pub use hir::{lower, Hir, HirNode};
pub use mir::{FlagNode, Plan, ScanNode};
pub use sql::SqlDriver;

/// Result alias for plan operations — plan compilation and execution report
/// through the detection layer's error type, since every driver ultimately
/// answers the same detect/apply contract.
pub type Result<T> = ecfd_detect::Result<T>;

/// Re-export of the detection layer's error type for callers matching on
/// failures of plan compilation or execution.
pub use ecfd_detect::DetectError;
