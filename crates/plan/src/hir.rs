//! The detection HIR: one logical scan / group / flag tree per split
//! single-pattern constraint, with attribute lists resolved to column
//! positions.
//!
//! Lowering is the "verify + resolve" stage of the pipeline: it re-binds
//! every constraint of a compiled [`ConstraintSet`] against the set's schema
//! (so a malformed set fails here, not mid-scan) and records, per
//! constraint, exactly which columns the executor must project:
//!
//! * the `X` attributes — the scan's match-and-group key;
//! * the `Y ∪ Yp` attributes in tableau cell order — the single-tuple
//!   violation check;
//! * the `Y` attributes — the embedded-FD projection whose distinct values
//!   within one `X` group constitute a multi-tuple violation.
//!
//! The HIR is deliberately per-constraint and unoptimized; sharing decisions
//! belong to the MIR ([`Hir::optimize`] / [`Hir::sequential`] in
//! [`crate::mir`]).

use crate::mir::{FlagNode, Plan, ScanNode};
use crate::Result;
use ecfd_core::matching::BoundECfd;
use ecfd_core::ConstraintSet;
use ecfd_relation::AttrId;

/// The lowered form of one split single-pattern constraint: a logical
/// scan (match `X`), group (project `Y` within the `X` group) and flag
/// (check `Y ∪ Yp`) tree, with every attribute list resolved to positions.
#[derive(Debug, Clone)]
pub struct HirNode {
    /// Index into the set's split single-pattern constraint list — also the
    /// index of the coded pattern cells a driver matches for this node.
    pub ci: usize,
    /// `(constraint, pattern)` provenance in the user's original set, for
    /// evidence attribution.
    pub source: (usize, usize),
    /// Positions of the `X` attributes (the scan key).
    pub x: Vec<AttrId>,
    /// Names of the `X` attributes, parallel to [`HirNode::x`].
    pub x_names: Vec<String>,
    /// Positions of the `Y ∪ Yp` attributes in tableau cell order (the
    /// single-tuple violation check).
    pub check: Vec<AttrId>,
    /// Names of the checked attributes, parallel to [`HirNode::check`].
    pub check_names: Vec<String>,
    /// Positions of the `Y` attributes (the embedded-FD projection); empty
    /// for pure pattern constraints, which need no grouping at all.
    pub group: Vec<AttrId>,
    /// Names of the grouped attributes, parallel to [`HirNode::group`].
    pub group_names: Vec<String>,
}

impl HirNode {
    /// Whether this node needs group bookkeeping (the embedded FD has a
    /// right-hand side).
    pub fn grouped(&self) -> bool {
        !self.group.is_empty()
    }

    /// The MIR flag operator this node lowers to.
    pub(crate) fn flag(&self) -> FlagNode {
        FlagNode {
            ci: self.ci,
            source: self.source,
            check: self.check.clone(),
            check_names: self.check_names.clone(),
            group: self.group.clone(),
            group_names: self.group_names.clone(),
        }
    }
}

/// The detection HIR for one compiled constraint set: one [`HirNode`] per
/// split single-pattern constraint, in split order.
#[derive(Debug, Clone)]
pub struct Hir {
    set: ConstraintSet,
    nodes: Vec<HirNode>,
}

impl Hir {
    /// The compiled set this HIR was lowered from.
    pub fn set(&self) -> &ConstraintSet {
        &self.set
    }

    /// The lowered per-constraint nodes, in split-constraint order.
    pub fn nodes(&self) -> &[HirNode] {
        &self.nodes
    }

    /// Optimizes the HIR into a MIR [`Plan`] with *shared scans*: nodes
    /// whose `X` attribute lists are identical fuse into one [`ScanNode`]
    /// feeding their flag operators, in first-seen order. Within a scan the
    /// per-row `X` projection is computed once and every member matches
    /// against it.
    pub fn optimize(self) -> Plan {
        let mut scans: Vec<ScanNode> = Vec::new();
        for node in &self.nodes {
            match scans.iter_mut().find(|s| s.x == node.x) {
                Some(scan) => scan.members.push(node.flag()),
                None => scans.push(ScanNode {
                    x: node.x.clone(),
                    x_names: node.x_names.clone(),
                    members: vec![node.flag()],
                }),
            }
        }
        Plan::assemble(self.set, scans, true)
    }

    /// Lowers the HIR into the *unfused* baseline [`Plan`]: one scan per
    /// constraint, no sharing — the plan a naive per-constraint interpreter
    /// corresponds to, kept selectable so the shared-scan win stays
    /// measurable (`bench_detect --backend plan`).
    pub fn sequential(self) -> Plan {
        let scans = self
            .nodes
            .iter()
            .map(|node| ScanNode {
                x: node.x.clone(),
                x_names: node.x_names.clone(),
                members: vec![node.flag()],
            })
            .collect();
        Plan::assemble(self.set, scans, false)
    }
}

/// Lowers a compiled constraint set into the detection HIR, re-validating
/// every split constraint against the set's schema.
pub fn lower(set: &ConstraintSet) -> Result<Hir> {
    let schema = set.schema();
    let mut nodes = Vec::with_capacity(set.singles().len());
    for (ci, single) in set.singles().iter().enumerate() {
        let bound = BoundECfd::bind(&single.ecfd, schema)?;
        let ecfd = &single.ecfd;
        let mut check_names: Vec<String> = ecfd.fd_rhs().to_vec();
        check_names.extend(ecfd.pattern_rhs().iter().cloned());
        nodes.push(HirNode {
            ci,
            source: (single.source_constraint, single.source_pattern),
            x: bound.lhs_ids().to_vec(),
            x_names: ecfd.lhs().to_vec(),
            check: bound.rhs_ids().to_vec(),
            check_names,
            group: bound.fd_rhs_ids().to_vec(),
            group_names: ecfd.fd_rhs().to_vec(),
        });
    }
    Ok(Hir {
        set: set.clone(),
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{DataType, Schema};

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    #[test]
    fn lowering_resolves_positions_and_provenance() {
        let set = ConstraintSet::parse(
            &schema(),
            "cust: [CT] -> [AC] | [ZIP], { {Albany} || {518}, _ ; {Troy} || {518}, _ }\n\
             cust: [AC] -> [] | [CT], { {212} || {NYC} }",
        )
        .unwrap();
        let hir = lower(&set).unwrap();
        assert_eq!(hir.nodes().len(), 3);
        let first = &hir.nodes()[0];
        assert_eq!(first.ci, 0);
        assert_eq!(first.source, (0, 0));
        assert_eq!(first.x_names, ["CT"]);
        assert_eq!(first.check_names, ["AC", "ZIP"]);
        assert_eq!(first.group_names, ["AC"]);
        assert!(first.grouped());
        // The pure pattern constraint groups nothing.
        let last = &hir.nodes()[2];
        assert_eq!(last.source, (1, 0));
        assert_eq!(last.x_names, ["AC"]);
        assert!(!last.grouped());
    }

    #[test]
    fn optimize_fuses_identical_x_lists_in_first_seen_order() {
        let set = ConstraintSet::parse(
            &schema(),
            "cust: [CT] -> [AC] | [], { {Albany} || {518} ; {Troy} || {518} }\n\
             cust: [AC] -> [] | [CT], { {212} || {NYC} }\n\
             cust: [CT] -> [ZIP] | [], { {NYC} || _ }",
        )
        .unwrap();
        let plan = lower(&set).unwrap().optimize();
        assert!(plan.is_fused());
        assert_eq!(plan.num_scans(), 2, "three X=[CT] nodes share one scan");
        assert_eq!(plan.num_flags(), 4);
        assert_eq!(plan.scans()[0].x_names, ["CT"]);
        assert_eq!(plan.scans()[0].members.len(), 3);
        assert_eq!(plan.scans()[1].x_names, ["AC"]);

        let unfused = lower(&set).unwrap().sequential();
        assert!(!unfused.is_fused());
        assert_eq!(unfused.num_scans(), 4);
        assert_eq!(unfused.num_flags(), 4);
    }
}
