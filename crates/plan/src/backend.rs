//! [`PlanBackend`]: a compiled plan plus a storage driver behind the
//! ordinary [`DetectorBackend`] trait, routable by sessions and the serving
//! layer like any other backend (`BackendKind::Plan`).

use crate::columnar::ColumnarDriver;
use crate::driver::Driver;
use crate::mir::Plan;
use crate::sql::SqlDriver;
use crate::Result;
use ecfd_core::ConstraintSet;
use ecfd_detect::backend::apply_base_delta;
use ecfd_detect::{BackendKind, DetectionReport, DetectorBackend, EvidenceReport, Parallelism};
use ecfd_relation::{Catalog, Delta};
use std::fmt;
use std::sync::Arc;

/// The plan-executing detector backend: compiles a constraint set once into
/// a [`Plan`] and answers every detect/apply call by running the plan
/// through its [`Driver`].
///
/// Stateless between calls (like the semantic and SQL backends): every
/// `detect` is a fresh plan execution, every `apply` mutates the table and
/// re-executes. Each pass is recorded as `detect.pass.ns{backend="plan"}`.
pub struct PlanBackend {
    plan: Arc<Plan>,
    driver: Box<dyn Driver>,
    table: String,
    base_arity: usize,
}

impl PlanBackend {
    /// Builds the default backend: the optimized (shared-scan) plan executed
    /// by the columnar driver.
    pub fn from_set(set: &ConstraintSet) -> Result<Self> {
        Ok(Self::from_plan(Plan::compile(set)?))
    }

    /// Builds the backend on the *unfused* baseline plan (one scan per
    /// constraint), columnar driver — the contrast arm of the shared-scan
    /// benchmark.
    pub fn from_set_unfused(set: &ConstraintSet) -> Result<Self> {
        Ok(Self::from_plan(Plan::compile_unfused(set)?))
    }

    /// Builds the backend on the optimized plan with the SQL pushdown
    /// driver. Fails when the set is outside the SQL encoding's envelope.
    pub fn from_set_sql(set: &ConstraintSet) -> Result<Self> {
        let plan = Arc::new(Plan::compile(set)?);
        let driver = Box::new(SqlDriver::new(&plan)?);
        Ok(Self::assemble(plan, driver))
    }

    /// Wraps an already-compiled plan with the columnar driver.
    pub fn from_plan(plan: Plan) -> Self {
        let plan = Arc::new(plan);
        let driver = Box::new(ColumnarDriver::new(Arc::clone(&plan)));
        Self::assemble(plan, driver)
    }

    /// Wraps an already-compiled plan with an explicit driver — the
    /// extension point for out-of-tree storage.
    pub fn with_driver(plan: Plan, driver: Box<dyn Driver>) -> Self {
        Self::assemble(Arc::new(plan), driver)
    }

    fn assemble(plan: Arc<Plan>, driver: Box<dyn Driver>) -> Self {
        let table = plan.set().schema().name().to_string();
        let base_arity = plan.set().schema().arity();
        PlanBackend {
            plan,
            driver,
            table,
            base_arity,
        }
    }

    /// The compiled plan this backend executes (render with
    /// [`Plan::render`] for `EXPLAIN PLAN`).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The driver executing the plan.
    pub fn driver(&self) -> &dyn Driver {
        self.driver.as_ref()
    }

    /// Sets the worker fan-out of subsequent executions (forwarded to the
    /// driver; pushdown drivers ignore it).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.driver.set_parallelism(parallelism);
    }
}

impl fmt::Debug for PlanBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanBackend")
            .field("table", &self.table)
            .field("driver", &self.driver.name())
            .field("capability", &self.driver.capability())
            .field("fused", &self.plan.is_fused())
            .field("scans", &self.plan.num_scans())
            .finish()
    }
}

impl DetectorBackend for PlanBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Plan
    }

    fn table(&self) -> &str {
        &self.table
    }

    fn detect(&mut self, catalog: &mut Catalog) -> Result<(DetectionReport, EvidenceReport)> {
        let started = std::time::Instant::now();
        let out = self.driver.execute(catalog)?;
        let registry = ecfd_obs::registry();
        registry
            .histogram_with("detect.pass.ns", &[("backend", "plan")])
            .record_duration(started.elapsed());
        registry
            .counter("detect.rows.scanned")
            .add(out.rows_scanned);
        registry.counter("detect.groups.merged").add(out.groups);
        registry
            .counter("detect.violations")
            .add(out.report.num_violations() as u64);
        Ok((out.report, out.evidence))
    }

    fn apply(
        &mut self,
        catalog: &mut Catalog,
        delta: &Delta,
    ) -> Result<(DetectionReport, EvidenceReport)> {
        apply_base_delta(catalog, &self.table, self.base_arity, delta)?;
        self.detect(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{DataType, Relation, Schema, Tuple};

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build()
    }

    fn set() -> ConstraintSet {
        ConstraintSet::parse(
            &schema(),
            "cust: [CT] -> [AC] | [], { {Albany} || {518} ; {Troy} || {518} }\n\
             cust: [AC] -> [] | [CT], { {212} || {NYC} }",
        )
        .unwrap()
    }

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog
            .create(
                Relation::with_tuples(
                    schema(),
                    [
                        Tuple::from_iter(["Albany", "718"]), // SV of c0.p0
                        Tuple::from_iter(["Troy", "518"]),
                        Tuple::from_iter(["NYC", "212"]),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
    }

    #[test]
    fn every_driver_agrees_with_the_semantic_backend() {
        let set = set();
        let mut reference = ecfd_detect::SemanticBackend::from_set(&set);
        let mut reference_catalog = catalog();
        let (want_report, want_evidence) = reference.detect(&mut reference_catalog).unwrap();

        let backends: Vec<PlanBackend> = vec![
            PlanBackend::from_set(&set).unwrap(),
            PlanBackend::from_set_unfused(&set).unwrap(),
            PlanBackend::from_set_sql(&set).unwrap(),
        ];
        for mut backend in backends {
            assert_eq!(backend.kind(), BackendKind::Plan);
            assert_eq!(backend.table(), "cust");
            let mut cat = catalog();
            let (report, evidence) = backend.detect(&mut cat).unwrap();
            assert_eq!(report, want_report, "driver {}", backend.driver().name());
            assert_eq!(
                evidence,
                want_evidence,
                "driver {}",
                backend.driver().name()
            );
            // Flags land in the table exactly like the reference's.
            assert_eq!(
                DetectionReport::from_catalog(&cat, "cust").unwrap(),
                DetectionReport::from_catalog(&reference_catalog, "cust").unwrap(),
            );
        }
    }

    #[test]
    fn apply_routes_base_deltas_and_redetects() {
        let set = set();
        let mut backend = PlanBackend::from_set(&set).unwrap();
        let mut cat = catalog();
        backend.detect(&mut cat).unwrap();
        let delta = Delta {
            insertions: vec![Tuple::from_iter(["Albany", "999"])],
            deletions: vec![Tuple::from_iter(["NYC", "212"])],
        };
        let (report, _) = backend.apply(&mut cat, &delta).unwrap();
        // Two Albany rows now disagree on AC: a multi-tuple violation, on
        // top of the original single-tuple one.
        assert_eq!(report.num_mv(), 2);
        assert_eq!(cat.get("cust").unwrap().len(), 3);

        let mut reference = ecfd_detect::SemanticBackend::from_set(&set);
        let mut reference_catalog = catalog();
        reference.detect(&mut reference_catalog).unwrap();
        let (want, _) = reference.apply(&mut reference_catalog, &delta).unwrap();
        assert_eq!(report, want);
    }

    #[test]
    fn parallelism_does_not_change_the_answer() {
        let set = set();
        let mut one = PlanBackend::from_set(&set).unwrap();
        one.set_parallelism(Parallelism::Fixed(1));
        let mut four = PlanBackend::from_set(&set).unwrap();
        four.set_parallelism(Parallelism::Fixed(4));
        let mut cat1 = catalog();
        let mut cat4 = catalog();
        assert_eq!(
            one.detect(&mut cat1).unwrap(),
            four.detect(&mut cat4).unwrap()
        );
    }
}
