//! The pluggable storage-driver trait a compiled [`Plan`](crate::Plan)
//! executes against.
//!
//! A driver owns *how* the plan's operators touch storage; the plan owns
//! *what* to compute. Each driver advertises a [`Capability`] describing the
//! execution strategy it implements, so callers (and `EXPLAIN PLAN` readers)
//! can see which physical path a plan will take.

use ecfd_detect::{DetectionReport, EvidenceReport, Parallelism};
use ecfd_relation::Catalog;

/// The execution strategy a [`Driver`] implements for plan operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Operators are interpreted natively over the dictionary-coded columnar
    /// core, with the two-phase sharded parallel scan
    /// ([`crate::ColumnarDriver`]).
    ColumnarScan,
    /// The whole plan is pushed down through the SQL rewriting path and
    /// executed by the relational engine ([`crate::SqlDriver`]).
    PushdownSql,
}

impl Capability {
    /// Stable lowercase label, used in plan renderings and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            Capability::ColumnarScan => "columnar-scan",
            Capability::PushdownSql => "pushdown-sql",
        }
    }
}

/// What one plan execution produced: the standard detection reports plus
/// the driver-side effort counters the observability layer records.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// The violation report, identical in content to what the semantic
    /// detector would produce for the same set and data.
    pub report: DetectionReport,
    /// Per-violation evidence, normalized.
    pub evidence: EvidenceReport,
    /// Number of `X` groups the execution materialized (merged across
    /// shards), for `detect.groups.merged`.
    pub groups: u64,
    /// Number of row visits the execution performed, for
    /// `detect.rows.scanned`.
    pub rows_scanned: u64,
}

/// A storage driver: executes a compiled plan's operators against a
/// catalog, leaving the table's `SV`/`MV` flag columns populated.
///
/// Contract: [`Driver::execute`] must produce reports byte-identical to the
/// semantic reference detector for the same constraint set and data — the
/// plan layer changes *how* detection runs, never *what* it reports. The
/// differential suite (`tests/plan_differential.rs`) holds every driver to
/// this.
pub trait Driver: Send + Sync {
    /// The execution strategy this driver implements.
    fn capability(&self) -> Capability;

    /// Short stable name for diagnostics and metrics labels.
    fn name(&self) -> &'static str;

    /// Sets the worker budget for subsequent executions. Drivers whose
    /// strategy is inherently single-threaded (e.g. SQL pushdown) ignore
    /// this.
    fn set_parallelism(&mut self, _parallelism: Parallelism) {}

    /// Executes the plan against the catalog: flags every violating tuple
    /// in the target table's `SV`/`MV` columns and returns the reports plus
    /// effort counters.
    fn execute(&mut self, catalog: &mut Catalog) -> crate::Result<ExecOutcome>;
}
