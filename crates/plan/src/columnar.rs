//! The columnar driver: interprets a [`Plan`]'s scan/flag operators over the
//! dictionary-coded columnar core, with the same two-phase sharded parallel
//! scan as the semantic reference detector.
//!
//! The operational difference between this interpreter and the semantic
//! detector is what the plan layer exists for: a *fused* plan computes each
//! shared scan's coded `X` projection **once per row** and lets every member
//! flag operator match against the same projection, where the per-constraint
//! detectors (and the unfused baseline plan) re-project `X` once per
//! constraint. The observable outputs are identical by contract — reports
//! and normalized evidence match the semantic detector byte-for-byte at any
//! worker count — only the work to produce them changes.

use crate::driver::{Capability, Driver, ExecOutcome};
use crate::mir::{Plan, ScanNode};
use crate::Result;
use ecfd_core::coded::{intern_singles, CodedSingle};
use ecfd_detect::semantic::{ensure_flag_columns, write_flags, GroupKey, GroupMap, GroupState};
use ecfd_detect::{
    ConstraintRef, DetectionReport, EvidenceReport, MvEvidence, Parallelism, SvEvidence,
};
use ecfd_relation::columnar::shard_of;
use ecfd_relation::{Catalog, CodeMap, ColumnarView, Dictionary, RowId};
use std::sync::Arc;

/// Minimum per-worker `(row, flag-operator)` visits below which spinning up
/// a thread costs more than it saves. Matches the semantic detector's
/// cutoff, so plan and semantic passes choose the same fan-out for the same
/// workload.
const MIN_WORK_PER_WORKER: usize = 4096;

/// Clamps the requested worker count to what the scan size justifies.
fn effective_threads(parallelism: Parallelism, rows: usize, flags: usize) -> usize {
    let requested = parallelism.threads();
    if requested <= 1 {
        return 1;
    }
    let work = rows.saturating_mul(flags.max(1));
    requested
        .min((work / MIN_WORK_PER_WORKER).max(1))
        .min(rows.max(1))
}

/// Splits `0..n` into `parts` contiguous, near-equal ranges.
fn split_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push((lo, lo + len));
        lo += len;
    }
    ranges
}

/// Executes plan operators natively over [`ColumnarView`]s
/// ([`Capability::ColumnarScan`]).
///
/// The driver owns its issuing [`Dictionary`]: pattern constants are
/// interned once at construction (so cell matching is pure code comparison),
/// and each execution encodes the current table contents through the same
/// grow-only dictionary — exactly the semantic detector's codec discipline.
#[derive(Debug)]
pub struct ColumnarDriver {
    plan: Arc<Plan>,
    /// Coded pattern cells, parallel to the set's split constraints.
    cells: Vec<CodedSingle>,
    /// `(constraint, pattern)` provenance per split constraint.
    provenance: Vec<(usize, usize)>,
    dict: Dictionary,
    table: String,
    parallelism: Parallelism,
}

impl ColumnarDriver {
    /// Builds the driver for a compiled plan, interning the plan's pattern
    /// constants into a fresh dictionary.
    pub fn new(plan: Arc<Plan>) -> Self {
        let singles: Vec<_> = plan
            .set()
            .singles()
            .iter()
            .map(|s| s.ecfd.clone())
            .collect();
        let mut dict = Dictionary::new();
        let cells = intern_singles(&singles, &mut dict);
        let provenance = plan.set().provenance();
        let table = plan.set().schema().name().to_string();
        ColumnarDriver {
            plan,
            cells,
            provenance,
            dict,
            table,
            parallelism: Parallelism::default(),
        }
    }

    /// The plan this driver executes.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }
}

impl Driver for ColumnarDriver {
    fn capability(&self) -> Capability {
        Capability::ColumnarScan
    }

    fn name(&self) -> &'static str {
        "columnar"
    }

    fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    fn execute(&mut self, catalog: &mut Catalog) -> Result<ExecOutcome> {
        ensure_flag_columns(catalog, &self.table)?;
        let (report, evidence, groups, rows_scanned) = {
            let relation = catalog.get(&self.table)?;
            let total_rows = relation.len();
            let view = ColumnarView::build(relation, &mut self.dict);
            let n_rows = view.num_rows();
            let scans = self.plan.scans();
            let threads = effective_threads(self.parallelism, n_rows, self.plan.num_flags());
            let n_shards = threads;

            // Phase 1: chunked row scan over the plan's scan operators.
            let cells: &[CodedSingle] = &self.cells;
            let chunks: Vec<ChunkOut> = if threads <= 1 {
                vec![scan_chunk(&view, scans, cells, 0, n_rows, 1)]
            } else {
                let ranges = split_ranges(n_rows, threads);
                let view = &view;
                std::thread::scope(|s| {
                    let handles: Vec<_> = ranges
                        .iter()
                        .map(|&(lo, hi)| {
                            s.spawn(move || scan_chunk(view, scans, cells, lo, hi, n_shards))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("plan scan worker panicked"))
                        .collect()
                })
            };

            // Transpose per-chunk, per-shard partials into per-shard inputs
            // (chunk order preserved so member lists merge in row order).
            let mut sv_pairs: Vec<(RowId, usize)> = Vec::new();
            let mut shard_inputs: Vec<Vec<CodeMap<GroupKey, GroupState>>> = (0..n_shards)
                .map(|_| Vec::with_capacity(chunks.len()))
                .collect();
            for chunk in chunks {
                sv_pairs.extend(chunk.sv);
                for (shard, part) in chunk.parts.into_iter().enumerate() {
                    shard_inputs[shard].push(part);
                }
            }

            // Phase 2: per-shard merge; every member of a group is in exactly
            // one shard, so merges are independent.
            let dict = &self.dict;
            let provenance = &self.provenance;
            let shard_outs: Vec<ShardOut> = if threads <= 1 {
                shard_inputs
                    .into_iter()
                    .map(|parts| merge_shard(parts, provenance, dict))
                    .collect()
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = shard_inputs
                        .into_iter()
                        .map(|parts| s.spawn(move || merge_shard(parts, provenance, dict)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("plan merge worker panicked"))
                        .collect()
                })
            };

            // Deterministic assembly, identical to the semantic detector's.
            let mut report = DetectionReport {
                total_rows,
                ..Default::default()
            };
            let mut evidence = EvidenceReport {
                total_rows,
                ..Default::default()
            };
            for (row, ci) in sv_pairs {
                report.sv_rows.insert(row);
                let (constraint, pattern) = self.provenance[ci];
                evidence.sv.push(SvEvidence {
                    row,
                    source: ConstraintRef::new(constraint, pattern),
                });
            }
            let mut groups = GroupMap::default();
            for shard in shard_outs {
                report.mv_rows.extend(shard.mv_rows);
                evidence.mv_groups.extend(shard.mv_groups);
                if groups.is_empty() {
                    groups = shard.groups;
                } else {
                    groups.extend(shard.groups);
                }
            }
            evidence.normalize();
            (report, evidence, groups.len() as u64, n_rows as u64)
        };
        write_flags(catalog, &self.table, &report)?;
        Ok(ExecOutcome {
            report,
            evidence,
            groups,
            rows_scanned,
        })
    }
}

/// What one phase-1 worker produces for its row chunk.
struct ChunkOut {
    /// `(row, split-constraint)` single-tuple violations, in visit order.
    sv: Vec<(RowId, usize)>,
    /// Partial group states, partitioned by `shard_of(ci, X-codes)`.
    parts: Vec<CodeMap<GroupKey, GroupState>>,
}

/// Phase 1: scans rows `lo..hi` of the view, executing every scan operator.
/// The fused payoff lives here: `view.key(pos, scan.x)` runs once per
/// `(row, scan)` and every member flag operator matches the shared
/// projection.
fn scan_chunk(
    view: &ColumnarView,
    scans: &[ScanNode],
    cells: &[CodedSingle],
    lo: usize,
    hi: usize,
    n_shards: usize,
) -> ChunkOut {
    let mut out = ChunkOut {
        sv: Vec::new(),
        parts: vec![CodeMap::default(); n_shards],
    };
    for pos in lo..hi {
        let row_id = view.row_id(pos);
        for scan in scans {
            let key = view.key(pos, &scan.x);
            for member in &scan.members {
                let cell = &cells[member.ci];
                if !cell.lhs_matches(key.as_slice().iter().copied()) {
                    continue;
                }
                if !cell.rhs_matches(member.check.iter().map(|a| view.code(pos, *a))) {
                    out.sv.push((row_id, member.ci));
                }
                if member.grouped() {
                    let shard = if n_shards == 1 {
                        0
                    } else {
                        shard_of(member.ci, &key, n_shards)
                    };
                    let y = view.key(pos, &member.group);
                    let state = out.parts[shard]
                        .entry((member.ci, key.clone()))
                        .or_default();
                    *state.y_counts.entry(y).or_insert(0) += 1;
                    state.rows.push(row_id);
                }
            }
        }
    }
    out
}

/// What one phase-2 worker produces for its shard.
struct ShardOut {
    groups: CodeMap<GroupKey, GroupState>,
    mv_rows: Vec<RowId>,
    mv_groups: Vec<MvEvidence>,
}

/// Phase 2: merges one shard's partial group states (in chunk order, so
/// member lists end up in global row order) and derives the multi-tuple
/// violations.
fn merge_shard(
    parts: Vec<CodeMap<GroupKey, GroupState>>,
    provenance: &[(usize, usize)],
    dict: &Dictionary,
) -> ShardOut {
    let mut iter = parts.into_iter();
    let mut groups = iter.next().unwrap_or_default();
    for part in iter {
        for (key, state) in part {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let merged = e.get_mut();
                    for (y, count) in state.y_counts {
                        *merged.y_counts.entry(y).or_insert(0) += count;
                    }
                    merged.rows.extend(state.rows);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(state);
                }
            }
        }
    }
    let mut mv_rows = Vec::new();
    let mut mv_groups = Vec::new();
    for ((ci, key), state) in &groups {
        if state.violates() {
            mv_rows.extend(state.rows.iter().copied());
            let (constraint, pattern) = provenance[*ci];
            mv_groups.push(MvEvidence {
                source: ConstraintRef::new(constraint, pattern),
                group_key: dict.decode_all(key.as_slice()),
                rows: state.rows.iter().copied().collect(),
            });
        }
    }
    ShardOut {
        groups,
        mv_rows,
        mv_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_clamp_matches_the_semantic_detectors() {
        assert_eq!(effective_threads(Parallelism::Fixed(8), 10, 4), 1);
        assert_eq!(effective_threads(Parallelism::Fixed(1), 1_000_000, 100), 1);
        assert_eq!(effective_threads(Parallelism::Fixed(4), 100_000, 100), 4);
        assert_eq!(effective_threads(Parallelism::Fixed(8), 1_000, 10), 2);
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for (n, parts) in [(0usize, 3usize), (7, 3), (9, 3), (2, 5), (100, 1)] {
            let ranges = split_ranges(n, parts);
            assert_eq!(ranges.len(), parts);
            let mut expect = 0;
            for (lo, hi) in &ranges {
                assert_eq!(*lo, expect);
                expect = *hi;
            }
            assert_eq!(expect, n);
        }
    }
}
