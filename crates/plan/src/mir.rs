//! The detection MIR: an explicit, driver-independent [`Plan`] of scan and
//! flag operators, produced by optimizing (or sequentially lowering) the
//! HIR of [`crate::hir`].
//!
//! A plan is *data*, not code: a list of [`ScanNode`]s, each projecting one
//! `X` attribute list per row and feeding one or more [`FlagNode`] operators
//! that match pattern cells, check `Y ∪ Yp` and maintain per-group `Y`
//! projections. Drivers ([`crate::Driver`]) interpret the same plan against
//! different storage — the plan itself never touches tuples.
//!
//! [`Plan::render`] is the deterministic text form exposed over the wire by
//! the serving layer's `EXPLAIN PLAN` verb; its output depends only on the
//! constraint set, so it is snapshot-stable across runs and platforms.

use crate::hir;
use crate::Result;
use ecfd_core::ConstraintSet;
use ecfd_relation::AttrId;
use std::fmt::Write as _;

/// One flag operator: the per-row work a driver performs for a single split
/// single-pattern constraint once the enclosing scan's `X` projection is in
/// hand.
#[derive(Debug, Clone)]
pub struct FlagNode {
    /// Index into the set's split single-pattern constraint list — also the
    /// index of the coded pattern cells a driver matches for this operator.
    pub ci: usize,
    /// `(constraint, pattern)` provenance in the user's original set, for
    /// evidence attribution.
    pub source: (usize, usize),
    /// Positions of the `Y ∪ Yp` attributes in tableau cell order (the
    /// single-tuple violation check).
    pub check: Vec<AttrId>,
    /// Names of the checked attributes, parallel to [`FlagNode::check`].
    pub check_names: Vec<String>,
    /// Positions of the `Y` attributes (the embedded-FD projection); empty
    /// for pure pattern constraints, which skip group bookkeeping entirely.
    pub group: Vec<AttrId>,
    /// Names of the grouped attributes, parallel to [`FlagNode::group`].
    pub group_names: Vec<String>,
}

impl FlagNode {
    /// Whether this operator maintains per-group state (the embedded FD has
    /// a right-hand side).
    pub fn grouped(&self) -> bool {
        !self.group.is_empty()
    }
}

/// One scan operator: a single pass over the table projecting the `X`
/// attribute list once per row, feeding every member flag operator.
///
/// In a *fused* plan ([`Plan::compile`]) all constraints with an identical
/// `X` list share one scan; in the *unfused* baseline
/// ([`Plan::compile_unfused`]) every constraint gets its own.
#[derive(Debug, Clone)]
pub struct ScanNode {
    /// Positions of the shared `X` attributes this scan projects per row.
    pub x: Vec<AttrId>,
    /// Names of the `X` attributes, parallel to [`ScanNode::x`].
    pub x_names: Vec<String>,
    /// The flag operators fed by this scan, in first-seen constraint order.
    pub members: Vec<FlagNode>,
}

/// An executable detection plan: the MIR produced from a compiled
/// [`ConstraintSet`], interpreted by any [`crate::Driver`].
#[derive(Debug, Clone)]
pub struct Plan {
    set: ConstraintSet,
    scans: Vec<ScanNode>,
    fused: bool,
}

impl Plan {
    /// Assembles a plan from already-lowered scan operators. Crate-internal:
    /// the only producers are [`crate::Hir::optimize`] and
    /// [`crate::Hir::sequential`].
    pub(crate) fn assemble(set: ConstraintSet, scans: Vec<ScanNode>, fused: bool) -> Self {
        Plan { set, scans, fused }
    }

    /// Compiles a constraint set into the optimized (shared-scan) plan:
    /// lower to HIR, then fuse constraints with identical `X` lists into
    /// shared scans.
    pub fn compile(set: &ConstraintSet) -> Result<Self> {
        Ok(hir::lower(set)?.optimize())
    }

    /// Compiles a constraint set into the unfused baseline plan (one scan
    /// per split constraint), kept selectable so the shared-scan win stays
    /// measurable rather than assumed.
    pub fn compile_unfused(set: &ConstraintSet) -> Result<Self> {
        Ok(hir::lower(set)?.sequential())
    }

    /// The compiled set this plan detects for.
    pub fn set(&self) -> &ConstraintSet {
        &self.set
    }

    /// The scan operators, in first-seen constraint order.
    pub fn scans(&self) -> &[ScanNode] {
        &self.scans
    }

    /// Whether identical-`X` constraints were fused into shared scans.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// Number of scan operators (passes a naive interpreter would make;
    /// the fused executor still makes exactly one physical pass).
    pub fn num_scans(&self) -> usize {
        self.scans.len()
    }

    /// Total number of flag operators across all scans — always equal to
    /// the set's split single-pattern constraint count.
    pub fn num_flags(&self) -> usize {
        self.scans.iter().map(|s| s.members.len()).sum()
    }

    /// Renders the plan as deterministic, line-oriented text — the payload
    /// of the serving layer's `EXPLAIN PLAN` verb. The output is a pure
    /// function of the constraint set and plan mode: suitable for snapshot
    /// tests and CI artifacts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan table={} mode={} singles={} scans={}",
            self.set.schema().name(),
            if self.fused { "fused" } else { "unfused" },
            self.set.singles().len(),
            self.scans.len(),
        );
        for (si, scan) in self.scans.iter().enumerate() {
            let _ = writeln!(out, "scan[{si}] x=[{}]", scan.x_names.join(","));
            for member in &scan.members {
                let group = if member.grouped() {
                    format!("[{}]", member.group_names.join(","))
                } else {
                    "-".to_string()
                };
                let _ = writeln!(
                    out,
                    "  flag c{}.p{} check=[{}] group={}",
                    member.source.0,
                    member.source.1,
                    member.check_names.join(","),
                    group,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{DataType, Schema};

    fn set() -> ConstraintSet {
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build();
        ConstraintSet::parse(
            &schema,
            "cust: [CT] -> [AC] | [], { {Albany} || {518} ; {Troy} || {518} }\n\
             cust: [AC] -> [] | [CT], { {212} || {NYC} }",
        )
        .unwrap()
    }

    #[test]
    fn render_is_deterministic_and_mode_labelled() {
        let plan = Plan::compile(&set()).unwrap();
        let text = plan.render();
        assert_eq!(
            text,
            "plan table=cust mode=fused singles=3 scans=2\n\
             scan[0] x=[CT]\n\
             \x20 flag c0.p0 check=[AC] group=[AC]\n\
             \x20 flag c0.p1 check=[AC] group=[AC]\n\
             scan[1] x=[AC]\n\
             \x20 flag c1.p0 check=[CT] group=-\n"
        );
        // Re-compiling yields byte-identical text.
        assert_eq!(Plan::compile(&set()).unwrap().render(), text);
    }

    #[test]
    fn unfused_plan_renders_one_scan_per_constraint() {
        let plan = Plan::compile_unfused(&set()).unwrap();
        assert!(!plan.is_fused());
        assert_eq!(plan.num_scans(), 3);
        let text = plan.render();
        assert!(text.starts_with("plan table=cust mode=unfused singles=3 scans=3\n"));
        assert_eq!(text.matches("scan[").count(), 3);
    }
}
