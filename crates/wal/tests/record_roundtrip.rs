//! Property tests for the WAL: record encode/decode must round-trip for
//! arbitrary deltas (unicode values, empty tuples, nulls), and a log whose
//! tail was torn or corrupted at *any* byte must recover exactly the prefix
//! of fully written records — never garbage, never a panic.

use ecfd_relation::{Delta, Tuple, Value};
use ecfd_wal::{Wal, WalRecord};
use proptest::prelude::*;
use std::path::PathBuf;

/// String pool for generated values: empty, unicode, and bytes that are
/// reserved in the line protocol (the WAL must be agnostic to all of them).
const STRINGS: [&str; 6] = [
    "",
    "Albany",
    "Zürich 東京 💾",
    "a,b;c|d@e%f\ng",
    " leading and trailing ",
    "NULL",
];

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        // Deliberately includes "", unicode, and protocol-reserved bytes.
        (0usize..STRINGS.len()).prop_map(|i| Value::Str(STRINGS[i].to_string())),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_value(), 0..6).prop_map(Tuple::new)
}

fn arb_delta() -> impl Strategy<Value = Delta> {
    (
        proptest::collection::vec(arb_tuple(), 0..4),
        proptest::collection::vec(arb_tuple(), 0..4),
    )
        .prop_map(|(insertions, deletions)| Delta {
            insertions,
            deletions,
        })
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (any::<u64>(), arb_delta()).prop_map(|(ticket, delta)| WalRecord::Delta { ticket, delta }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(epoch, last_ticket, report_hash)| {
            WalRecord::Checkpoint {
                epoch,
                last_ticket,
                report_hash,
            }
        }),
    ]
}

fn temp_dir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ecfd-wal-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Payload encoding is lossless for every record shape.
    #[test]
    fn record_payload_round_trips(record in arb_record()) {
        let payload = record.encode();
        prop_assert_eq!(WalRecord::decode(&payload).unwrap(), record);
    }

    /// Arbitrary garbage never decodes to a panic — only Ok or Err.
    #[test]
    fn arbitrary_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = WalRecord::decode(&bytes);
    }

    /// Write records through the full file layer, then chop the file at an
    /// arbitrary byte (a simulated crash mid-append): reopening must recover
    /// exactly the records whose frames survived intact, and the reopened log
    /// must accept further appends.
    #[test]
    fn torn_tail_recovers_record_prefix(
        records in proptest::collection::vec(arb_record(), 1..6),
        cut_back in 0usize..200,
        seed in any::<u64>(),
    ) {
        let dir = temp_dir(seed);
        let mut wal = Wal::open(&dir).unwrap().wal;
        // Track where each record's frame ends so we know the expected prefix.
        let mut frame_ends = Vec::with_capacity(records.len());
        let mut offset = 8u64; // magic
        for record in &records {
            offset += 8 + record.encode().len() as u64;
            frame_ends.push(offset);
        }
        for record in &records {
            wal.append(record).unwrap();
        }
        wal.sync().unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);

        let full_len = std::fs::metadata(&path).unwrap().len();
        let cut = full_len.saturating_sub(cut_back as u64).max(8);
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let survivors = frame_ends.iter().filter(|&&end| end <= cut).count();
        let reopened = Wal::open(&dir).unwrap();
        prop_assert_eq!(&reopened.records, &records[..survivors]);
        prop_assert_eq!(reopened.truncated_bytes, cut - frame_ends[..survivors].last().copied().unwrap_or(8));

        // Still append-ready after truncation.
        let mut wal = reopened.wal;
        let extra = WalRecord::Checkpoint { epoch: 1, last_ticket: 0, report_hash: 7 };
        wal.append(&extra).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut expected: Vec<WalRecord> = records[..survivors].to_vec();
        expected.push(extra);
        prop_assert_eq!(Wal::open(&dir).unwrap().records, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flip one byte inside the frame stream: the log never reports records
    /// beyond the first damaged frame, and never panics.
    #[test]
    fn corrupted_byte_truncates_from_damage(
        records in proptest::collection::vec(arb_record(), 1..5),
        victim in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let dir = temp_dir(seed.wrapping_add(1)); // avoid colliding with the torn-tail dirs
        let mut wal = Wal::open(&dir).unwrap().wal;
        for record in &records {
            wal.append(record).unwrap();
        }
        wal.sync().unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);

        let mut bytes = std::fs::read(&path).unwrap();
        let pos = 8 + (victim as usize % (bytes.len() - 8));
        bytes[pos] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let reopened = Wal::open(&dir).unwrap();
        // Whatever survives must be a prefix of what was written. (The flip
        // can land in a length word and, rarely, still frame-validate — the
        // CRC then rejects it; either way no fabricated records appear.)
        prop_assert!(reopened.records.len() <= records.len());
        prop_assert_eq!(&reopened.records, &records[..reopened.records.len()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
