//! # ecfd-wal
//!
//! An append-only write-ahead log for the eCFD serving layer.
//!
//! The serving layer's [`Ticket`] order — the order the
//! ingest queue hands deltas to the single writer — *is* the serialization
//! order of the served table. Logging each accepted delta in that order,
//! before its push is acknowledged, therefore captures everything needed to
//! reconstruct the table after a crash: replaying the log over the same base
//! data through the same apply path lands on the same state, epoch for epoch.
//! The same log doubles as a replication stream — a follower that replays the
//! leader's records reaches the same state, and the interleaved checkpoint
//! records let it verify that claim per published epoch.
//!
//! ## Records
//!
//! Two record kinds ([`WalRecord`]):
//!
//! * **Delta** — one accepted update batch, stamped with its ticket.
//! * **Checkpoint** — an epoch boundary: the writer published a snapshot
//!   covering everything up to `last_ticket`, whose detection report hashes
//!   to `report_hash`. Checkpoints carry no data; they are verification
//!   points (recovery and followers recompute the hash and compare) and
//!   replication cut marks.
//!
//! ## Framing
//!
//! The log file starts with an 8-byte magic (`ECFDWAL1`) followed by frames:
//!
//! ```text
//! ┌───────────────┬────────────────┬──────────────────┐
//! │ len: u32 LE   │ crc32: u32 LE  │ payload (len B)  │
//! └───────────────┴────────────────┴──────────────────┘
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. A crash can tear the tail of
//! the file mid-frame; [`Wal::open`] scans the frames, keeps the longest
//! valid prefix and truncates the rest (reporting how many bytes were
//! dropped), so the log is always append-ready after open. A checksum
//! mismatch or short frame *before* the tail would mean silent corruption
//! mid-file — that also just truncates from the first bad frame, which is
//! the only safe interpretation of an append-only file: nothing after a torn
//! record can be trusted to be in order.
//!
//! Durability is the caller's contract: [`Wal::append`] buffers in the OS,
//! [`Wal::sync`] makes everything appended so far crash-durable
//! (`fsync`-before-ACK is the serving layer's discipline).
//!
//! ## Example
//!
//! ```
//! use ecfd_relation::{Delta, Tuple};
//! use ecfd_wal::{Wal, WalRecord};
//!
//! let dir = std::env::temp_dir().join(format!("ecfd-wal-doc-{}", std::process::id()));
//! let opened = Wal::open(&dir).unwrap();
//! assert!(opened.records.is_empty());
//! let mut wal = opened.wal;
//! wal.append(&WalRecord::Delta {
//!     ticket: 1,
//!     delta: Delta::insert_only(vec![Tuple::from_iter(["Albany", "518"])]),
//! }).unwrap();
//! wal.append(&WalRecord::Checkpoint { epoch: 3, last_ticket: 1, report_hash: 42 }).unwrap();
//! wal.sync().unwrap();
//! drop(wal);
//!
//! // Reopening replays the full record sequence.
//! let reopened = Wal::open(&dir).unwrap();
//! assert_eq!(reopened.records.len(), 2);
//! assert_eq!(reopened.truncated_bytes, 0);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod log;
mod record;

pub use log::{read_records, OpenedWal, Wal, WAL_FILE_NAME};
pub use record::{Ticket, WalRecord};

use std::fmt;
use std::path::PathBuf;

/// Result alias for WAL operations.
pub type Result<T> = std::result::Result<T, WalError>;

/// Errors produced by the write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem error (open, append, fsync, truncate).
    Io(std::io::Error),
    /// The file at the log path exists but does not start with the WAL magic
    /// — refusing to truncate something that was never a log.
    NotAWal(PathBuf),
    /// A frame's checksum matched but its payload did not decode — a version
    /// mismatch or a bug, never a torn write (those fail the checksum).
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What failed to decode.
        reason: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::NotAWal(path) => {
                write!(f, "{} exists but is not an ecfd WAL file", path.display())
            }
            WalError::Corrupt { offset, reason } => {
                write!(f, "corrupt wal record at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}
