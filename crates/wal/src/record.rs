//! The two record kinds and their binary payload encoding.
//!
//! The payload format is deliberately self-contained (no serde, no schema):
//! a one-byte kind tag followed by fixed-width little-endian integers and
//! length-prefixed UTF-8. Values carry their own type tag, so a log written
//! against one schema decodes bit-exactly regardless of what the reader has
//! loaded — type checking happens when the delta is applied, not here.

use ecfd_relation::{Delta, Tuple, Value};

/// Sequence number of a delta in the serving layer's ingest order (issued by
/// the ingest queue, starting at 1). Mirrors `ecfd_serve::Ticket` without
/// depending on it — the WAL sits below the serving crate.
pub type Ticket = u64;

const KIND_DELTA: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;
const KIND_SCHEDULED_DELTA: u8 = 3;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_STR: u8 = 3;

/// One logged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// An accepted update batch, logged before its push is acknowledged.
    Delta {
        /// The ingest ticket — the batch's position in serialization order.
        ticket: Ticket,
        /// The insertions and deletions, exactly as submitted.
        delta: Delta,
    },
    /// An accepted update batch in a *sharded* deployment: like
    /// [`WalRecord::Delta`], plus the globally pre-assigned row ids of its
    /// insertions (`insert_ids[k]` is the id of `delta.insertions[k]`), so
    /// recovery replay hands out exactly the ids the original run did.
    ScheduledDelta {
        /// The shard-local ingest ticket.
        ticket: Ticket,
        /// The insertions and deletions, exactly as routed to this shard.
        delta: Delta,
        /// Globally allocated row ids, parallel to `delta.insertions`.
        insert_ids: Vec<u64>,
    },
    /// An epoch boundary: the writer published the snapshot covering every
    /// ticket up to and including `last_ticket`.
    Checkpoint {
        /// Epoch of the published snapshot.
        epoch: u64,
        /// Highest ticket the snapshot covers (0 for the bootstrap epoch).
        last_ticket: Ticket,
        /// Canonical hash of the published detection report (see
        /// `ecfd_serve`'s `report_hash`), the divergence-detection anchor.
        report_hash: u64,
    },
}

impl WalRecord {
    /// Encodes the record as a frame payload (no length/checksum framing —
    /// that is the log layer's job).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::Delta { ticket, delta } => {
                out.push(KIND_DELTA);
                out.extend_from_slice(&ticket.to_le_bytes());
                put_u32(&mut out, delta.insertions.len());
                put_u32(&mut out, delta.deletions.len());
                for tuple in delta.insertions.iter().chain(&delta.deletions) {
                    encode_tuple(&mut out, tuple);
                }
            }
            WalRecord::ScheduledDelta {
                ticket,
                delta,
                insert_ids,
            } => {
                out.push(KIND_SCHEDULED_DELTA);
                out.extend_from_slice(&ticket.to_le_bytes());
                put_u32(&mut out, delta.insertions.len());
                put_u32(&mut out, delta.deletions.len());
                debug_assert_eq!(insert_ids.len(), delta.insertions.len());
                for id in insert_ids {
                    out.extend_from_slice(&id.to_le_bytes());
                }
                for tuple in delta.insertions.iter().chain(&delta.deletions) {
                    encode_tuple(&mut out, tuple);
                }
            }
            WalRecord::Checkpoint {
                epoch,
                last_ticket,
                report_hash,
            } => {
                out.push(KIND_CHECKPOINT);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&last_ticket.to_le_bytes());
                out.extend_from_slice(&report_hash.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a frame payload. Fails (with a human-readable reason) on any
    /// malformed byte — the log layer turns that into [`WalError::Corrupt`]
    /// since the payload already passed its checksum.
    ///
    /// [`WalError::Corrupt`]: crate::WalError::Corrupt
    pub fn decode(payload: &[u8]) -> Result<WalRecord, String> {
        let mut cursor = Cursor::new(payload);
        let record = match cursor.u8()? {
            KIND_DELTA => {
                let ticket = cursor.u64()?;
                let num_insertions = cursor.u32()? as usize;
                let num_deletions = cursor.u32()? as usize;
                let mut tuples = Vec::with_capacity(num_insertions + num_deletions);
                for _ in 0..num_insertions + num_deletions {
                    tuples.push(decode_tuple(&mut cursor)?);
                }
                let deletions = tuples.split_off(num_insertions);
                WalRecord::Delta {
                    ticket,
                    delta: Delta {
                        insertions: tuples,
                        deletions,
                    },
                }
            }
            KIND_SCHEDULED_DELTA => {
                let ticket = cursor.u64()?;
                let num_insertions = cursor.u32()? as usize;
                let num_deletions = cursor.u32()? as usize;
                let mut insert_ids = Vec::with_capacity(num_insertions.min(1024));
                for _ in 0..num_insertions {
                    insert_ids.push(cursor.u64()?);
                }
                let mut tuples = Vec::with_capacity((num_insertions + num_deletions).min(1024));
                for _ in 0..num_insertions + num_deletions {
                    tuples.push(decode_tuple(&mut cursor)?);
                }
                let deletions = tuples.split_off(num_insertions);
                WalRecord::ScheduledDelta {
                    ticket,
                    delta: Delta {
                        insertions: tuples,
                        deletions,
                    },
                    insert_ids,
                }
            }
            KIND_CHECKPOINT => WalRecord::Checkpoint {
                epoch: cursor.u64()?,
                last_ticket: cursor.u64()?,
                report_hash: cursor.u64()?,
            },
            other => return Err(format!("unknown record kind {other}")),
        };
        if !cursor.is_empty() {
            return Err(format!(
                "{} trailing bytes after record",
                cursor.remaining()
            ));
        }
        Ok(record)
    }
}

fn put_u32(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&u32::try_from(n).expect("batch sizes fit u32").to_le_bytes());
}

fn encode_tuple(out: &mut Vec<u8>, tuple: &Tuple) {
    put_u32(out, tuple.arity());
    for value in tuple.values() {
        match value {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                put_u32(out, s.len());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

fn decode_tuple(cursor: &mut Cursor<'_>) -> Result<Tuple, String> {
    let arity = cursor.u32()? as usize;
    let mut values = Vec::with_capacity(arity.min(64));
    for _ in 0..arity {
        values.push(match cursor.u8()? {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(i64::from_le_bytes(cursor.array()?)),
            TAG_BOOL => Value::Bool(cursor.u8()? != 0),
            TAG_STR => {
                let len = cursor.u32()? as usize;
                let bytes = cursor.bytes(len)?;
                Value::Str(
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| "string value is not UTF-8".to_string())?,
                )
            }
            other => return Err(format!("unknown value tag {other}")),
        });
    }
    Ok(Tuple::new(values))
}

/// A bounds-checked reader over a payload slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos == self.data.len()
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!("needed {n} bytes, {} left", self.remaining()));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], String> {
        Ok(self.bytes(N)?.try_into().expect("exact length"))
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.array()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(record: WalRecord) {
        let payload = record.encode();
        assert_eq!(WalRecord::decode(&payload).unwrap(), record);
    }

    #[test]
    fn delta_and_checkpoint_round_trip() {
        round_trip(WalRecord::Delta {
            ticket: 7,
            delta: Delta {
                insertions: vec![
                    Tuple::new(vec![
                        Value::str("Zürich 東京"),
                        Value::Null,
                        Value::Int(-42),
                        Value::Bool(true),
                    ]),
                    Tuple::new(vec![]),
                ],
                deletions: vec![Tuple::new(vec![Value::str("")])],
            },
        });
        round_trip(WalRecord::Delta {
            ticket: u64::MAX,
            delta: Delta::new(),
        });
        round_trip(WalRecord::Checkpoint {
            epoch: 12,
            last_ticket: 0,
            report_hash: u64::MAX,
        });
        round_trip(WalRecord::ScheduledDelta {
            ticket: 9,
            delta: Delta {
                insertions: vec![
                    Tuple::new(vec![Value::str("a"), Value::Int(1)]),
                    Tuple::new(vec![Value::str("b"), Value::Null]),
                ],
                deletions: vec![Tuple::new(vec![Value::str("c"), Value::Bool(false)])],
            },
            insert_ids: vec![17, 4],
        });
        round_trip(WalRecord::ScheduledDelta {
            ticket: 1,
            delta: Delta::delete_only(vec![Tuple::new(vec![Value::Int(3)])]),
            insert_ids: vec![],
        });
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicking() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[9]).is_err(), "unknown kind");
        let mut good = WalRecord::Checkpoint {
            epoch: 1,
            last_ticket: 2,
            report_hash: 3,
        }
        .encode();
        good.push(0);
        assert!(WalRecord::decode(&good).is_err(), "trailing bytes");
        let truncated = &good[..good.len() - 4];
        assert!(WalRecord::decode(truncated).is_err(), "short payload");
    }
}
