//! The on-disk log: framing, torn-tail recovery, append and fsync.

use crate::record::WalRecord;
use crate::{Result, WalError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the log inside a WAL directory.
pub const WAL_FILE_NAME: &str = "ecfd.wal";

/// 8-byte file magic: identifies (and versions) the framing.
const MAGIC: &[u8; 8] = b"ECFDWAL1";

/// Upper bound on a single frame payload — anything larger is treated as a
/// torn/garbage length word rather than a real record.
const MAX_PAYLOAD: u32 = 1 << 30;

/// What [`Wal::open`] found: the append-ready log handle, every valid record
/// in order, and how many torn-tail bytes were dropped.
#[derive(Debug)]
pub struct OpenedWal {
    /// The log, positioned to append after the last valid record.
    pub wal: Wal,
    /// Every record of the valid prefix, in file (= ticket) order.
    pub records: Vec<WalRecord>,
    /// Bytes truncated from the tail (0 after a clean shutdown).
    pub truncated_bytes: u64,
}

/// An open, append-only log file. See the crate docs for the framing and the
/// durability contract ([`Wal::append`] buffers, [`Wal::sync`] makes it
/// crash-durable).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`, validating the magic and
    /// scanning all frames. The longest valid prefix is kept; a torn or
    /// checksum-failing tail is truncated away so the log is append-ready.
    pub fn open(dir: &Path) -> Result<OpenedWal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE_NAME);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < MAGIC.len() {
            if !bytes.is_empty() {
                return Err(WalError::NotAWal(path));
            }
            file.write_all(MAGIC)?;
            file.sync_data()?;
            return Ok(OpenedWal {
                wal: Wal { file, path },
                records: Vec::new(),
                truncated_bytes: 0,
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(WalError::NotAWal(path));
        }

        let (records, valid_end) = scan_frames(&bytes, true)?;
        let truncated_bytes = bytes.len() as u64 - valid_end;
        if truncated_bytes > 0 {
            file.set_len(valid_end)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_end))?;
        Ok(OpenedWal {
            wal: Wal { file, path },
            records,
            truncated_bytes,
        })
    }

    /// Path of the underlying log file (readable concurrently via
    /// [`read_records`], e.g. by the replication stream).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (length-prefixed, checksummed) and returns the
    /// number of bytes written (frame header + payload). The bytes are
    /// buffered by the OS until [`Wal::sync`] — callers must sync before
    /// acknowledging anything that depends on this record.
    pub fn append(&mut self, record: &WalRecord) -> Result<usize> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        Ok(frame.len())
    }

    /// Makes every appended record crash-durable (`fdatasync`).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// Reads every valid record of the log at `path` without touching the file —
/// the read-only side used by the `REPLAY` streaming verb while a writer may
/// be appending. A torn tail (an append racing this read, or a crash) simply
/// ends the scan: records are only acknowledged after an fsync, so everything
/// a consumer is entitled to see sits in the valid prefix.
pub fn read_records(path: &Path) -> Result<Vec<WalRecord>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(WalError::NotAWal(path.to_path_buf()));
    }
    let (records, _valid_end) = scan_frames(&bytes, false)?;
    Ok(records)
}

/// Walks the frames after the magic, returning the decoded records of the
/// longest valid prefix and the byte offset where that prefix ends. With
/// `strict`, a checksum-valid payload that fails to decode is a hard
/// [`WalError::Corrupt`] (version mismatch / bug — truncating would silently
/// drop acknowledged data); torn frames and checksum mismatches always just
/// end the prefix.
fn scan_frames(bytes: &[u8], strict: bool) -> Result<(Vec<WalRecord>, u64)> {
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    // A torn frame header ends the loop via `get` returning None.
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            break; // garbage length word — treat as torn tail
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // torn or bit-flipped payload
        }
        match WalRecord::decode(payload) {
            Ok(record) => records.push(record),
            Err(reason) if strict => {
                return Err(WalError::Corrupt {
                    offset: pos as u64,
                    reason,
                })
            }
            Err(_) => break,
        }
        pos += 8 + len as usize;
    }
    Ok((records, pos as u64))
}

/// IEEE CRC-32 (the zlib/ethernet polynomial), table-driven.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = u32::MAX;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{Delta, Tuple};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ecfd-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn delta_record(ticket: u64) -> WalRecord {
        WalRecord::Delta {
            ticket,
            delta: Delta::insert_only(vec![Tuple::from_iter([
                format!("city-{ticket}").as_str(),
                "518",
            ])]),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_sync_reopen_replays_everything() {
        let dir = temp_dir("reopen");
        let mut wal = Wal::open(&dir).unwrap().wal;
        let records = vec![
            WalRecord::Checkpoint {
                epoch: 2,
                last_ticket: 0,
                report_hash: 9,
            },
            delta_record(1),
            delta_record(2),
            WalRecord::Checkpoint {
                epoch: 4,
                last_ticket: 2,
                report_hash: 11,
            },
        ];
        for record in &records {
            wal.append(record).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let reopened = Wal::open(&dir).unwrap();
        assert_eq!(reopened.records, records);
        assert_eq!(reopened.truncated_bytes, 0);
        // The read-only scan sees the same prefix.
        assert_eq!(read_records(reopened.wal.path()).unwrap(), records);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = temp_dir("torn");
        let mut wal = Wal::open(&dir).unwrap().wal;
        wal.append(&delta_record(1)).unwrap();
        wal.append(&delta_record(2)).unwrap();
        wal.sync().unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);

        // Simulate a crash mid-append: half a frame of garbage at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&path, &bytes).unwrap();

        let reopened = Wal::open(&dir).unwrap();
        assert_eq!(reopened.records, vec![delta_record(1), delta_record(2)]);
        assert_eq!(reopened.truncated_bytes, 5);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            clean_len as u64,
            "the torn bytes are gone from disk"
        );

        // The log stays appendable after truncation.
        let mut wal = reopened.wal;
        wal.append(&delta_record(3)).unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(
            Wal::open(&dir).unwrap().records,
            vec![delta_record(1), delta_record(2), delta_record(3)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_in_last_record_drops_only_that_record() {
        let dir = temp_dir("bitflip");
        let mut wal = Wal::open(&dir).unwrap().wal;
        wal.append(&delta_record(1)).unwrap();
        let before_second = std::fs::metadata(wal.path()).unwrap().len();
        wal.append(&delta_record(2)).unwrap();
        wal.sync().unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);

        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let reopened = Wal::open(&dir).unwrap();
        assert_eq!(reopened.records, vec![delta_record(1)]);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            before_second,
            "everything from the flipped record on is truncated"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_wal_files_are_refused() {
        let dir = temp_dir("notawal");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE_NAME), b"definitely not a wal").unwrap();
        assert!(matches!(Wal::open(&dir), Err(WalError::NotAWal(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
