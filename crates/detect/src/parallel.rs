//! Detection parallelism: how many `std::thread::scope` workers a detection
//! pass fans out across.
//!
//! The semantic detector hash-partitions enforcement groups on their coded
//! `X`-projection (see [`ecfd_relation::columnar::shard_of`]) so that every
//! member of a group lands on the same shard no matter which row-chunk
//! worker scanned it; the per-shard merges and the final report assembly are
//! deterministic, so the same data produces byte-identical
//! [`DetectionReport`](crate::DetectionReport)s and (normalized)
//! [`EvidenceReport`](crate::EvidenceReport)s at 1 and N threads — a
//! property the differential test suite asserts.

/// How many worker threads detection fans out across.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use every available core ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
    /// Use exactly this many workers (clamped to at least 1). `Fixed(1)`
    /// forces the sequential path.
    Fixed(usize),
}

impl Parallelism {
    /// The resolved worker count.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

/// Minimum number of per-worker `(row, constraint)` match tests below which
/// spinning up a thread costs more than it saves.
const MIN_WORK_PER_WORKER: usize = 4096;

/// Clamps the requested worker count to what the scan size justifies: small
/// relations (or tiny constraint sets) run sequentially regardless of the
/// configured parallelism.
pub(crate) fn effective_threads(
    parallelism: Parallelism,
    rows: usize,
    constraints: usize,
) -> usize {
    let requested = parallelism.threads();
    if requested <= 1 {
        return 1;
    }
    let work = rows.saturating_mul(constraints.max(1));
    requested
        .min((work / MIN_WORK_PER_WORKER).max(1))
        .min(rows.max(1))
}

/// Splits `0..n` into `parts` contiguous, near-equal ranges (the row chunks
/// of the phase-1 scan workers).
pub(crate) fn split_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push((lo, lo + len));
        lo += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_parallelism_clamps_to_one() {
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert_eq!(Parallelism::Fixed(3).threads(), 3);
        assert!(Parallelism::Auto.threads() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn small_scans_stay_sequential() {
        assert_eq!(effective_threads(Parallelism::Fixed(8), 10, 4), 1);
        assert_eq!(effective_threads(Parallelism::Fixed(1), 1_000_000, 100), 1);
        let t = effective_threads(Parallelism::Fixed(4), 100_000, 100);
        assert_eq!(t, 4);
        // Work justifies only two workers.
        assert_eq!(effective_threads(Parallelism::Fixed(8), 1_000, 10), 2);
    }

    #[test]
    fn ranges_cover_exactly_once() {
        for (n, parts) in [(0usize, 3usize), (7, 3), (9, 3), (2, 5), (100, 1)] {
            let ranges = split_ranges(n, parts);
            assert_eq!(ranges.len(), parts);
            let mut expect = 0;
            for (lo, hi) in &ranges {
                assert_eq!(*lo, expect);
                assert!(hi >= lo);
                expect = *hi;
            }
            assert_eq!(expect, n);
        }
    }
}
