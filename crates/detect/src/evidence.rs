//! Violation *evidence*: not just which rows are flagged, but which eCFD and
//! which tableau pattern tuple each flagged row violates — and, for
//! multi-tuple violations, which enforcement group it belongs to.
//!
//! The paper's detectors (Section V) stop at the `SV` / `MV` flags. A repair
//! subsystem needs more: to delete the *right* tuples it must know which rows
//! conflict with which, and to modify values it must know which pattern cell a
//! row fails. [`EvidenceReport`] carries that provenance alongside the
//! byte-compatible [`DetectionReport`]; every detector in this crate can
//! produce one, and the three must agree (a property the differential tests
//! assert).

use crate::report::DetectionReport;
use ecfd_core::matching::BoundECfd;
use ecfd_relation::{RowId, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifies one pattern tuple of one constraint in the checked set: the
/// index of the constraint as the user supplied it, plus the index of the
/// pattern tuple within that constraint's tableau.
///
/// This is the user-facing analogue of the encoding's `CID` (which numbers
/// *split* single-pattern constraints).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ConstraintRef {
    /// Index of the constraint in the checked set.
    pub constraint: usize,
    /// Index of the pattern tuple within that constraint's tableau.
    pub pattern: usize,
}

impl ConstraintRef {
    /// Creates a reference from constraint and pattern indices.
    pub fn new(constraint: usize, pattern: usize) -> Self {
        ConstraintRef {
            constraint,
            pattern,
        }
    }
}

/// Evidence for one single-tuple violation: `row` matches the LHS of the
/// referenced pattern tuple but fails its RHS pattern on its own.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SvEvidence {
    /// The offending row.
    pub row: RowId,
    /// The violated constraint / pattern tuple.
    pub source: ConstraintRef,
}

/// Evidence for one violating enforcement group: the rows matching the
/// referenced pattern tuple that share the `X` projection `group_key` but
/// carry at least two distinct `Y` projections.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MvEvidence {
    /// The violated constraint / pattern tuple.
    pub source: ConstraintRef,
    /// The shared `t[X]` projection of the group (the offending group key).
    pub group_key: Vec<Value>,
    /// Every member row of the group (all of them carry `MV = 1`).
    pub rows: BTreeSet<RowId>,
}

/// The explained counterpart of a [`DetectionReport`]: per-constraint evidence
/// for every `SV` flag and every violating enforcement group.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvidenceReport {
    /// Single-tuple violation evidence (possibly several records per row when
    /// a row violates several pattern tuples).
    pub sv: Vec<SvEvidence>,
    /// One record per violating enforcement group.
    pub mv_groups: Vec<MvEvidence>,
    /// Total number of rows inspected.
    pub total_rows: usize,
}

impl EvidenceReport {
    /// Collapses the evidence into the flag-level [`DetectionReport`] shape.
    pub fn detection_report(&self) -> DetectionReport {
        DetectionReport {
            sv_rows: self.sv.iter().map(|e| e.row).collect(),
            mv_rows: self
                .mv_groups
                .iter()
                .flat_map(|g| g.rows.iter().copied())
                .collect(),
            total_rows: self.total_rows,
        }
    }

    /// The `(row, constraint-ref)` pairs of the single-tuple evidence — the
    /// canonical shape for differential comparison between detectors.
    pub fn sv_pairs(&self) -> BTreeSet<(RowId, ConstraintRef)> {
        self.sv.iter().map(|e| (e.row, e.source)).collect()
    }

    /// The `(row, constraint-ref)` pairs of the multi-tuple evidence.
    pub fn mv_pairs(&self) -> BTreeSet<(RowId, ConstraintRef)> {
        self.mv_groups
            .iter()
            .flat_map(|g| g.rows.iter().map(|r| (*r, g.source)))
            .collect()
    }

    /// True when no violation evidence was recorded.
    pub fn is_clean(&self) -> bool {
        self.sv.is_empty() && self.mv_groups.is_empty()
    }

    /// Number of single-tuple evidence records (≥ the number of SV rows).
    pub fn num_sv_records(&self) -> usize {
        self.sv.len()
    }

    /// Number of violating enforcement groups.
    pub fn num_groups(&self) -> usize {
        self.mv_groups.len()
    }

    /// All evidence records touching `row`, as `(source, is_multi_tuple)`.
    pub fn for_row(&self, row: RowId) -> Vec<(ConstraintRef, bool)> {
        let mut out: Vec<(ConstraintRef, bool)> = self
            .sv
            .iter()
            .filter(|e| e.row == row)
            .map(|e| (e.source, false))
            .collect();
        out.extend(
            self.mv_groups
                .iter()
                .filter(|g| g.rows.contains(&row))
                .map(|g| (g.source, true)),
        );
        out
    }

    /// Sorts the evidence into a canonical order so that reports produced by
    /// different detectors compare equal with `==`.
    pub fn normalize(&mut self) {
        self.sv.sort();
        self.sv.dedup();
        self.mv_groups.sort();
        self.mv_groups.dedup();
    }

    /// A normalized copy (see [`EvidenceReport::normalize`]).
    pub fn normalized(&self) -> Self {
        let mut copy = self.clone();
        copy.normalize();
        copy
    }
}

/// Attributes `SV`-flagged rows to the single-pattern constraints they
/// violate: for every row in `sv_rows`, every bound constraint whose LHS
/// matches but whose RHS fails contributes one evidence record.
///
/// `bounds` and `provenance` run parallel over the *split* single-pattern
/// constraints (see [`ecfd_core::normalize::split_patterns`]); the tuples may
/// carry extra trailing columns (e.g. the `SV` / `MV` flags) as long as the
/// bindings were resolved against that extended schema.
pub(crate) fn attribute_sv_rows<'a>(
    bounds: &[BoundECfd<'_>],
    provenance: &[(usize, usize)],
    rows: impl Iterator<Item = (RowId, &'a Tuple)>,
    sv_rows: &BTreeSet<RowId>,
) -> Vec<SvEvidence> {
    let mut out = Vec::new();
    for (row_id, tuple) in rows {
        if !sv_rows.contains(&row_id) {
            continue;
        }
        for (ci, bound) in bounds.iter().enumerate() {
            if bound.lhs_matches(tuple, 0) && !bound.rhs_matches(tuple, 0) {
                let (constraint, pattern) = provenance[ci];
                out.push(SvEvidence {
                    row: row_id,
                    source: ConstraintRef::new(constraint, pattern),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EvidenceReport {
        EvidenceReport {
            sv: vec![
                SvEvidence {
                    row: RowId(3),
                    source: ConstraintRef::new(1, 0),
                },
                SvEvidence {
                    row: RowId(0),
                    source: ConstraintRef::new(0, 1),
                },
            ],
            mv_groups: vec![MvEvidence {
                source: ConstraintRef::new(0, 0),
                group_key: vec![Value::str("Albany")],
                rows: [RowId(0), RowId(6)].into_iter().collect(),
            }],
            total_rows: 7,
        }
    }

    #[test]
    fn detection_report_collapses_evidence() {
        let report = sample().detection_report();
        assert_eq!(report.num_sv(), 2);
        assert_eq!(report.num_mv(), 2);
        assert_eq!(report.total_rows, 7);
        assert_eq!(report.num_violations(), 3, "row 0 is both SV and MV");
    }

    #[test]
    fn pairs_are_canonical() {
        let pairs = sample().sv_pairs();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(RowId(0), ConstraintRef::new(0, 1))));
        let mv = sample().mv_pairs();
        assert_eq!(mv.len(), 2);
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut a = sample();
        let mut b = sample();
        b.sv.reverse();
        b.sv.extend(a.sv.iter().cloned());
        assert_ne!(a, b);
        a.normalize();
        b.normalize();
        assert_eq!(a, b);
    }

    #[test]
    fn for_row_reports_both_kinds() {
        let report = sample();
        let zero = report.for_row(RowId(0));
        assert_eq!(zero.len(), 2);
        assert!(zero.contains(&(ConstraintRef::new(0, 1), false)));
        assert!(zero.contains(&(ConstraintRef::new(0, 0), true)));
        assert!(report.for_row(RowId(5)).is_empty());
    }

    #[test]
    fn empty_report_is_clean() {
        assert!(EvidenceReport::default().is_clean());
        assert_eq!(EvidenceReport::default().num_groups(), 0);
    }
}
