//! Detection reports: which rows carry the SV / MV flags.

use ecfd_core::ViolationSet;
use ecfd_relation::{Catalog, Relation, RowId, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::Result;

/// The outcome of running a detector over a relation: the rows flagged as
/// single-tuple violations (`SV = 1`) and multi-tuple violations (`MV = 1`).
///
/// This mirrors the paper's representation of `vio(D)` via the two added
/// Boolean attributes; every detector in this crate produces the same shape so
/// that the SQL-based, incremental and semantic detectors can be compared
/// field by field.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Rows with `SV = 1`.
    pub sv_rows: BTreeSet<RowId>,
    /// Rows with `MV = 1`.
    pub mv_rows: BTreeSet<RowId>,
    /// Total number of rows inspected.
    pub total_rows: usize,
}

impl DetectionReport {
    /// Number of single-tuple violations (the paper's `DSV`).
    pub fn num_sv(&self) -> usize {
        self.sv_rows.len()
    }

    /// Number of multi-tuple violations (the paper's `DMV`).
    pub fn num_mv(&self) -> usize {
        self.mv_rows.len()
    }

    /// The violation set `vio(D)`: rows flagged either way.
    pub fn violating_rows(&self) -> BTreeSet<RowId> {
        self.sv_rows.union(&self.mv_rows).copied().collect()
    }

    /// Number of distinct violating rows.
    pub fn num_violations(&self) -> usize {
        self.violating_rows().len()
    }

    /// True when no row violates any constraint.
    pub fn is_clean(&self) -> bool {
        self.sv_rows.is_empty() && self.mv_rows.is_empty()
    }

    /// Builds a report by reading the `SV` / `MV` flag columns of a relation
    /// that a detector has annotated.
    pub fn from_flags(relation: &Relation) -> Result<Self> {
        let sv = relation.schema().require_attr("SV")?;
        let mv = relation.schema().require_attr("MV")?;
        let mut report = DetectionReport {
            total_rows: relation.len(),
            ..Default::default()
        };
        for (row_id, tuple) in relation.iter() {
            if flag_is_set(&tuple[sv]) {
                report.sv_rows.insert(row_id);
            }
            if flag_is_set(&tuple[mv]) {
                report.mv_rows.insert(row_id);
            }
        }
        Ok(report)
    }

    /// Builds a report by reading the flags of a table in a catalog.
    pub fn from_catalog(catalog: &Catalog, table: &str) -> Result<Self> {
        Self::from_flags(catalog.get(table)?)
    }

    /// Converts a semantic [`ViolationSet`] (which carries per-constraint
    /// provenance) into the flag-level report shape.
    pub fn from_violation_set(set: &ViolationSet, total_rows: usize) -> Self {
        DetectionReport {
            sv_rows: set.sv_rows().clone(),
            mv_rows: set.mv_rows().clone(),
            total_rows,
        }
    }
}

fn flag_is_set(value: &Value) -> bool {
    match value {
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{DataType, Schema, Tuple};

    #[test]
    fn from_flags_reads_int_and_bool_flags() {
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("SV", DataType::Int)
            .attr("MV", DataType::Int)
            .build();
        let rel = Relation::with_tuples(
            schema,
            [
                Tuple::new(vec![Value::str("a"), Value::int(1), Value::int(0)]),
                Tuple::new(vec![Value::str("b"), Value::int(0), Value::int(1)]),
                Tuple::new(vec![Value::str("c"), Value::int(0), Value::int(0)]),
                Tuple::new(vec![Value::str("d"), Value::int(1), Value::int(1)]),
            ],
        )
        .unwrap();
        let report = DetectionReport::from_flags(&rel).unwrap();
        assert_eq!(report.num_sv(), 2);
        assert_eq!(report.num_mv(), 2);
        assert_eq!(report.num_violations(), 3);
        assert_eq!(report.total_rows, 4);
        assert!(!report.is_clean());
    }

    #[test]
    fn missing_flag_columns_error() {
        let schema = Schema::builder("cust").attr("CT", DataType::Str).build();
        let rel = Relation::new(schema);
        assert!(DetectionReport::from_flags(&rel).is_err());
    }

    #[test]
    fn empty_report_is_clean() {
        let report = DetectionReport::default();
        assert!(report.is_clean());
        assert_eq!(report.num_violations(), 0);
    }
}
