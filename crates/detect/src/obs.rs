//! Detection-pass metrics, reported into the process-wide [`ecfd_obs`]
//! registry.
//!
//! Every full or incremental detection pass calls [`record_pass`] once when
//! it finishes — a handful of atomic operations per *pass* (not per row), so
//! the instrumentation cost is unmeasurable next to the scan itself (the
//! `obs_overhead` benchmark guards this).

use std::time::Duration;

/// Records one finished detection pass.
///
/// * `detect.pass.ns{backend=…}` — wall-clock duration histogram, labelled
///   `semantic`, `sql`, or `incremental`;
/// * `detect.rows.scanned` — rows the pass examined (for incremental passes:
///   delta tuples processed plus rows reflagged);
/// * `detect.groups.merged` — enforcement groups materialised or touched;
/// * `detect.violations` — flagged violations the pass reported (full passes
///   only; incremental passes maintain flags in place and pass 0).
pub(crate) fn record_pass(
    backend: &'static str,
    rows: u64,
    groups: u64,
    violations: u64,
    elapsed: Duration,
) {
    let registry = ecfd_obs::registry();
    registry
        .histogram_with("detect.pass.ns", &[("backend", backend)])
        .record_duration(elapsed);
    registry.counter("detect.rows.scanned").add(rows);
    registry.counter("detect.groups.merged").add(groups);
    registry.counter("detect.violations").add(violations);
}
