//! `INCDETECT` (Section V-B): incremental violation detection under updates.
//!
//! Given a database whose `SV` / `MV` flags are already correct (typically the
//! output of `BATCHDETECT`), the incremental detector maintains the flags and
//! an auxiliary structure under a batch of updates `ΔD = (ΔD⁺, ΔD⁻)` while
//! touching only the affected parts of the data:
//!
//! * **Deletions** cannot create new violations. For every deleted tuple the
//!   detector locates the enforcement groups it belonged to, decrements their
//!   `Y`-projection counts, and — only for groups that thereby stop violating
//!   the embedded FD — re-derives the `MV` flag of the remaining members
//!   (a row keeps `MV = 1` if any *other* group it belongs to still violates).
//! * **Insertions** are first checked for single-tuple violations on their
//!   own (the `Q_sv` logic applied to `ΔD⁺` only, step 1 of the paper), then
//!   merged into the group structure; groups that start violating, or
//!   violating groups that gain members, have their members' `MV` flags set
//!   (steps 2a–2e).
//!
//! ### The coded auxiliary state
//!
//! The maintained state is the coded group map of the semantic detector —
//! `(CID, X-codes) → {Y-codes → count} + member rows` — plus a base-attribute
//! [`ColumnarView`] of the stored table, both kept up to date under `Delta`
//! application through the semantic detector's shared dictionary. Deletion
//! victims are matched by coded prefix comparison (a victim containing a
//! never-interned string cannot match any stored row), and `MV` re-derivation
//! touches only the member rows of groups whose violation status changed,
//! instead of re-scanning the table.
//!
//! ### Substitution note
//!
//! The paper implements these steps purely as SQL against the auxiliary
//! relation `Aux(D)`, relying on the RDBMS to evaluate the selective joins
//! efficiently. Our SQL substrate (`ecfd-engine`) is deliberately
//! optimisation-free, so a literal SQL implementation would re-scan `D` for
//! every step and could not show the incremental-vs-batch behaviour of
//! Figs. 6–7. The reproduction therefore keeps the *algorithm* (the same
//! auxiliary state, the same case analysis, the same "only affected tuples"
//! discipline) but maintains the auxiliary structure through the columnar
//! core's coded group state, which plays the role of the paper's
//! `Aux(D)` + RDBMS indexes. `DESIGN.md` records this substitution.

use crate::evidence::{ConstraintRef, EvidenceReport, MvEvidence, SvEvidence};
use crate::report::DetectionReport;
use crate::semantic::{ensure_flag_columns, GroupKey, GroupMap, GroupState, SemanticDetector};
use crate::Result;
use ecfd_core::ECfd;
use ecfd_relation::{
    AttrId, Catalog, Code, CodeVec, ColumnarView, Delta, RowId, Schema, Tuple, Value,
};
use std::collections::{BTreeSet, HashSet};

/// Counters describing how much work one incremental step did — used by the
/// experiments to explain the crossover of Fig. 7(a).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Tuples inserted.
    pub inserted: usize,
    /// Tuples deleted.
    pub deleted: usize,
    /// Enforcement groups whose violation status changed.
    pub groups_changed: usize,
    /// Rows whose `MV` flag was re-derived because a group changed status.
    pub rows_reflagged: usize,
}

/// Per-single-pattern-constraint attribute positions, resolved against the
/// base schema once at initialisation.
#[derive(Debug, Clone)]
struct KeySpec {
    lhs: Vec<AttrId>,
    fd_rhs: Vec<AttrId>,
    rhs: Vec<AttrId>,
}

/// The incremental detector: wraps the constraint set, the coded group state
/// (`Aux(D)` analogue), the maintained columnar view of the table's base
/// attributes, and the name of the data table it maintains.
#[derive(Debug, Clone)]
pub struct IncrementalDetector {
    schema: Schema,
    semantic: SemanticDetector,
    table: String,
    groups: GroupMap,
    view: ColumnarView,
    specs: Vec<KeySpec>,
}

impl IncrementalDetector {
    /// Initialises the detector: runs a full (native) detection pass over the
    /// table, writes the `SV` / `MV` flags and seeds the auxiliary group
    /// state. Equivalent to "run BATCHDETECT once, then keep `Aux(D)`".
    pub fn initialize(schema: &Schema, ecfds: &[ECfd], catalog: &mut Catalog) -> Result<Self> {
        let semantic = SemanticDetector::new(schema, ecfds)?;
        Self::initialize_from(schema, semantic, catalog)
    }

    /// Like [`IncrementalDetector::initialize`], but reusing an
    /// already-compiled [`ConstraintSet`] instead of re-validating and
    /// re-splitting the constraints.
    ///
    /// [`ConstraintSet`]: ecfd_core::ConstraintSet
    pub fn from_set(set: &ecfd_core::ConstraintSet, catalog: &mut Catalog) -> Result<Self> {
        Self::initialize_from(set.schema(), SemanticDetector::from_set(set), catalog)
    }

    /// Like [`IncrementalDetector::initialize`], but reusing an existing
    /// (already-compiled) [`SemanticDetector`] — no constraint re-validation
    /// or re-splitting happens; the seeding detection pass still runs.
    pub fn initialize_from(
        schema: &Schema,
        semantic: SemanticDetector,
        catalog: &mut Catalog,
    ) -> Result<Self> {
        let table = schema.name().to_string();
        ensure_flag_columns(catalog, &table)?;
        let (report, groups) = {
            let relation = catalog.get(&table)?;
            semantic.detect_with_groups(relation)?
        };
        crate::semantic::write_flags(catalog, &table, &report)?;
        let specs = semantic
            .bind(schema)?
            .iter()
            .map(|b| KeySpec {
                lhs: b.lhs_ids().to_vec(),
                fd_rhs: b.fd_rhs_ids().to_vec(),
                rhs: b.rhs_ids().to_vec(),
            })
            .collect();
        let view = {
            let relation = catalog.get(&table)?;
            let mut codec = semantic.codec().write();
            ColumnarView::build_prefix(relation, schema.arity(), &mut codec.dict)
        };
        Ok(IncrementalDetector {
            schema: schema.clone(),
            semantic,
            table,
            groups,
            view,
            specs,
        })
    }

    /// The base schema the constraints were compiled against (the stored
    /// table carries the detector-managed `SV` / `MV` columns on top of it).
    pub fn base_schema(&self) -> &Schema {
        &self.schema
    }

    /// The current auxiliary group state (the `Aux(D)` analogue), keyed by
    /// coded projections. Use [`IncrementalDetector::decode_key`] to read a
    /// key back as values.
    pub fn groups(&self) -> &GroupMap {
        &self.groups
    }

    /// Decodes a coded group key back to the values it stands for.
    pub fn decode_key(&self, key: &CodeVec) -> Vec<Value> {
        self.semantic.decode_key(key)
    }

    /// The semantic detector whose codec this maintainer shares. Reader-side
    /// code pairs it with [`IncrementalDetector::freeze`] to re-detect over a
    /// snapshot without touching the live state.
    pub fn semantic(&self) -> &SemanticDetector {
        &self.semantic
    }

    /// Freezes the maintained base-attribute view together with the current
    /// dictionary state: a consistent point-in-time unit that
    /// [`SemanticDetector::detect_frozen`] can re-scan without
    /// synchronisation, and the cheapest snapshot-extraction path when the
    /// incremental state is warm (the view is already encoded — no table
    /// re-encode happens, only the clone).
    pub fn freeze(&self) -> ecfd_relation::FrozenView {
        let codec = self.semantic.codec().read();
        ecfd_relation::FrozenView::new(self.view.clone(), codec.dict.clone())
    }

    /// Number of groups currently violating their embedded FD.
    pub fn violating_groups(&self) -> usize {
        self.groups.values().filter(|g| g.violates()).count()
    }

    /// Reads the current violation report from the table's flags.
    pub fn report(&self, catalog: &Catalog) -> Result<DetectionReport> {
        DetectionReport::from_catalog(catalog, &self.table)
    }

    /// Explains the current violation state: the maintained group structure
    /// (`Aux(D)` analogue) yields one evidence record per violating group —
    /// member rows included, no table scan — and the `SV` flags are
    /// attributed by re-matching only the flagged rows against the coded
    /// single-pattern constraints.
    pub fn evidence(&self, catalog: &Catalog) -> Result<EvidenceReport> {
        let relation = catalog.get(&self.table)?;
        let report = DetectionReport::from_flags(relation)?;
        let provenance = self.semantic.provenance();
        let codec = self.semantic.codec().read();

        let mut evidence = EvidenceReport {
            total_rows: relation.len(),
            ..Default::default()
        };
        // SV attribution over the flagged rows only, via the coded cells.
        for &row in &report.sv_rows {
            let Some(pos) = self.view.position(row) else {
                continue;
            };
            for (ci, spec) in self.specs.iter().enumerate() {
                let cells = &self.semantic.cells()[ci];
                if cells.lhs_matches(spec.lhs.iter().map(|a| self.view.code(pos, *a)))
                    && !cells.rhs_matches(spec.rhs.iter().map(|a| self.view.code(pos, *a)))
                {
                    let (constraint, pattern) = provenance[ci];
                    evidence.sv.push(SvEvidence {
                        row,
                        source: ConstraintRef::new(constraint, pattern),
                    });
                }
            }
        }
        // MV evidence straight from the maintained membership lists.
        for ((ci, lhs_key), state) in &self.groups {
            if !state.violates() {
                continue;
            }
            let (constraint, pattern) = provenance[*ci];
            evidence.mv_groups.push(MvEvidence {
                source: ConstraintRef::new(constraint, pattern),
                group_key: codec.dict.decode_all(lhs_key.as_slice()),
                rows: state.rows.iter().copied().collect(),
            });
        }
        evidence.normalize();
        Ok(evidence)
    }

    /// Applies a batch of updates, maintaining the table contents, the flags,
    /// the columnar view and the auxiliary state. Deletions are processed
    /// before insertions, as in the paper's presentation.
    pub fn apply(&mut self, catalog: &mut Catalog, delta: &Delta) -> Result<IncrementalStats> {
        let pass_started = std::time::Instant::now();
        let mut stats = IncrementalStats::default();
        let mut changed_groups: HashSet<GroupKey> = HashSet::new();

        self.apply_deletions(catalog, &delta.deletions, &mut stats, &mut changed_groups)?;
        self.apply_insertions(catalog, &delta.insertions, &mut stats, &mut changed_groups)?;

        // Re-derive MV for rows belonging to any group whose status changed.
        if !changed_groups.is_empty() {
            stats.groups_changed = changed_groups.len();
            stats.rows_reflagged = self.reflag_members(catalog, &changed_groups)?;
        }
        crate::obs::record_pass(
            "incremental",
            (stats.inserted + stats.deleted + stats.rows_reflagged) as u64,
            stats.groups_changed as u64,
            0,
            pass_started.elapsed(),
        );
        Ok(stats)
    }

    fn apply_deletions(
        &mut self,
        catalog: &mut Catalog,
        deletions: &[Tuple],
        stats: &mut IncrementalStats,
        changed_groups: &mut HashSet<GroupKey>,
    ) -> Result<()> {
        if deletions.is_empty() {
            return Ok(());
        }
        let table = self.table.clone();
        let relation = catalog.get_mut(&table)?;
        let codec_arc = self.semantic.codec().clone();

        for victim in deletions {
            // A victim with the wrong arity cannot equal any base tuple —
            // without this guard the coded prefix match below would treat a
            // short victim as a wildcard over the remaining attributes.
            if victim.arity() != self.schema.arity() {
                continue;
            }
            // Encode the victim read-only: a component the dictionary has
            // never interned cannot equal any encoded stored value, so the
            // victim matches nothing.
            let victim_codes: Option<Vec<Code>> = {
                let codec = codec_arc.read();
                victim
                    .values()
                    .iter()
                    .map(|v| codec.dict.try_encode(v))
                    .collect()
            };
            let Some(victim_codes) = victim_codes else {
                continue;
            };
            // All stored rows whose base attributes equal the victim
            // (coded prefix comparison against the maintained view).
            let matching: Vec<RowId> = self
                .view
                .matching_prefix(&victim_codes)
                .into_iter()
                .map(|pos| self.view.row_id(pos))
                .collect();
            if matching.is_empty() {
                continue;
            }
            // Every matched row carries the same base values, so the group
            // memberships are computed once per victim.
            let hits: Vec<(GroupKey, CodeVec)> = {
                self.specs
                    .iter()
                    .enumerate()
                    .filter_map(|(ci, spec)| {
                        if spec.fd_rhs.is_empty() {
                            return None;
                        }
                        let cells = &self.semantic.cells()[ci];
                        if !cells.lhs_matches(spec.lhs.iter().map(|a| victim_codes[a.index()])) {
                            return None;
                        }
                        let key: CodeVec =
                            spec.lhs.iter().map(|a| victim_codes[a.index()]).collect();
                        let y: CodeVec = spec
                            .fd_rhs
                            .iter()
                            .map(|a| victim_codes[a.index()])
                            .collect();
                        Some(((ci, key), y))
                    })
                    .collect()
            };
            for row_id in matching {
                for (key, y) in &hits {
                    if let Some(state) = self.groups.get_mut(key) {
                        let was_violating = state.violates();
                        if let Some(count) = state.y_counts.get_mut(y) {
                            *count -= 1;
                            if *count == 0 {
                                state.y_counts.remove(y);
                            }
                        }
                        state.rows.retain(|r| *r != row_id);
                        if state.y_counts.is_empty() {
                            self.groups.remove(key);
                        }
                        let now_violating = self
                            .groups
                            .get(key)
                            .map(GroupState::violates)
                            .unwrap_or(false);
                        if was_violating != now_violating {
                            changed_groups.insert(key.clone());
                        }
                    }
                }
                relation.delete(row_id)?;
                self.view.remove(row_id);
                stats.deleted += 1;
            }
        }
        Ok(())
    }

    fn apply_insertions(
        &mut self,
        catalog: &mut Catalog,
        insertions: &[Tuple],
        stats: &mut IncrementalStats,
        changed_groups: &mut HashSet<GroupKey>,
    ) -> Result<()> {
        if insertions.is_empty() {
            return Ok(());
        }
        let table = self.table.clone();
        let relation = catalog.get_mut(&table)?;
        let codec_arc = self.semantic.codec().clone();

        for tuple in insertions {
            let codes: Vec<Code> = codec_arc.write().dict.encode_tuple(tuple);
            // Step 1 plus steps 2a/2d: the SV check on the new tuple alone,
            // and the predicted group states after it joins.
            let mut sv = false;
            let mut mv = false;
            let mut hits: Vec<(GroupKey, CodeVec)> = Vec::new();
            {
                for (ci, spec) in self.specs.iter().enumerate() {
                    let cells = &self.semantic.cells()[ci];
                    if !cells.lhs_matches(spec.lhs.iter().map(|a| codes[a.index()])) {
                        continue;
                    }
                    if !cells.rhs_matches(spec.rhs.iter().map(|a| codes[a.index()])) {
                        sv = true;
                    }
                    if spec.fd_rhs.is_empty() {
                        continue;
                    }
                    let key: GroupKey = (ci, spec.lhs.iter().map(|a| codes[a.index()]).collect());
                    let y: CodeVec = spec.fd_rhs.iter().map(|a| codes[a.index()]).collect();
                    let (was_violating, now_violating) = match self.groups.get(&key) {
                        Some(state) => {
                            let distinct_after = state.y_counts.len()
                                + usize::from(!state.y_counts.contains_key(&y));
                            (state.violates(), distinct_after > 1)
                        }
                        None => (false, false),
                    };
                    if now_violating {
                        // The new tuple itself is part of a violating group
                        // (step 2a / 2e).
                        mv = true;
                    }
                    if was_violating != now_violating {
                        changed_groups.insert(key.clone());
                    }
                    hits.push((key, y));
                }
            }
            let stored = tuple.extended([Value::Int(i64::from(sv)), Value::Int(i64::from(mv))]);
            let row_id = relation.insert(stored)?;
            self.view.insert(row_id, &codes);
            for (key, y) in hits {
                let state = self.groups.entry(key).or_default();
                *state.y_counts.entry(y).or_insert(0) += 1;
                state.rows.push(row_id);
            }
            stats.inserted += 1;
        }
        Ok(())
    }

    /// Recomputes the `MV` flag of every row belonging to a group whose
    /// violation status changed. A row's flag is the OR over *all* groups it
    /// belongs to, so membership in an unchanged violating group keeps the
    /// flag set. Only the member rows of changed groups are touched — the
    /// maintained membership lists replace the full-table scan.
    fn reflag_members(&self, catalog: &mut Catalog, changed: &HashSet<GroupKey>) -> Result<usize> {
        let affected: BTreeSet<RowId> = changed
            .iter()
            .filter_map(|key| self.groups.get(key))
            .flat_map(|state| state.rows.iter().copied())
            .collect();
        if affected.is_empty() {
            return Ok(0);
        }
        let relation = catalog.get_mut(&self.table)?;
        let mv_col = relation.schema().require_attr("MV")?;
        let mut count = 0;
        for row in affected {
            let Some(pos) = self.view.position(row) else {
                continue;
            };
            let mut violates_any = false;
            for (ci, spec) in self.specs.iter().enumerate() {
                if spec.fd_rhs.is_empty() {
                    continue;
                }
                let cells = &self.semantic.cells()[ci];
                if !cells.lhs_matches(spec.lhs.iter().map(|a| self.view.code(pos, *a))) {
                    continue;
                }
                let key: GroupKey = (ci, self.view.key(pos, &spec.lhs));
                if self
                    .groups
                    .get(&key)
                    .map(GroupState::violates)
                    .unwrap_or(false)
                {
                    violates_any = true;
                    break;
                }
            }
            relation.update_value(row, mv_col, Value::Int(i64::from(violates_any)))?;
            count += 1;
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchDetector;
    use crate::semantic::fixtures::*;
    use ecfd_relation::Relation;

    fn fresh_catalog(extra_rows: &[[&str; 6]]) -> Catalog {
        let mut db = d0();
        for row in extra_rows {
            db.insert(Tuple::from_iter(row.iter().copied())).unwrap();
        }
        let mut catalog = Catalog::new();
        catalog.create(db).unwrap();
        catalog
    }

    /// Recomputes from scratch with BATCHDETECT (the paper's alternative) and
    /// compares flag-for-flag against the incremental result.
    fn assert_matches_batch(catalog: &Catalog, constraints: &[ECfd], inc: &DetectionReport) {
        // Rebuild a catalog containing only the base attributes so batch
        // detection starts from a clean slate.
        let base_schema = cust_schema();
        let stored = catalog.get("cust").unwrap();
        let rows: Vec<Tuple> = stored
            .tuples()
            .map(|t| Tuple::new(t.values()[..base_schema.arity()].to_vec()))
            .collect();
        let mut fresh = Catalog::new();
        fresh
            .create(Relation::with_tuples(base_schema.clone(), rows).unwrap())
            .unwrap();
        let batch = BatchDetector::new(&base_schema, constraints)
            .unwrap()
            .detect(&mut fresh)
            .unwrap();
        // Row ids differ between the two catalogs (the incremental table keeps
        // its original ids), so compare by the multiset of violating tuples.
        let project =
            |cat: &Catalog, rows: &std::collections::BTreeSet<RowId>| -> Vec<Vec<Value>> {
                let rel = cat.get("cust").unwrap();
                let mut out: Vec<Vec<Value>> = rows
                    .iter()
                    .map(|r| rel.get(*r).unwrap().values()[..base_schema.arity()].to_vec())
                    .collect();
                out.sort();
                out
            };
        assert_eq!(
            project(catalog, &inc.sv_rows),
            project(&fresh, &batch.sv_rows),
            "SV flags diverge from a from-scratch BATCHDETECT"
        );
        assert_eq!(
            project(catalog, &inc.mv_rows),
            project(&fresh, &batch.mv_rows),
            "MV flags diverge from a from-scratch BATCHDETECT"
        );
    }

    #[test]
    fn initialization_matches_batch_detection() {
        let mut catalog = fresh_catalog(&[]);
        let constraints = [phi1(), phi2()];
        let inc =
            IncrementalDetector::initialize(&cust_schema(), &constraints, &mut catalog).unwrap();
        let report = inc.report(&catalog).unwrap();
        assert_eq!(report.num_sv(), 2);
        assert_eq!(report.num_mv(), 0);
        assert_matches_batch(&catalog, &constraints, &report);
    }

    #[test]
    fn insertions_create_single_and_multi_tuple_violations() {
        let mut catalog = fresh_catalog(&[]);
        let constraints = [phi1(), phi2()];
        let mut inc =
            IncrementalDetector::initialize(&cust_schema(), &constraints, &mut catalog).unwrap();

        // One tuple violating φ2 on its own, and one clean Colonie tuple whose
        // area code conflicts with t2 (FD violation together with existing data).
        let delta = Delta::insert_only(vec![
            Tuple::from_iter(["999", "1", "New", "A St.", "NYC", "10001"]),
            Tuple::from_iter(["212", "2", "New2", "B St.", "Colonie", "12205"]),
        ]);
        let stats = inc.apply(&mut catalog, &delta).unwrap();
        assert_eq!(stats.inserted, 2);
        assert!(stats.groups_changed >= 1);

        let report = inc.report(&catalog).unwrap();
        // 999/NYC violates φ2 (and φ... no, φ1 does not apply to NYC).
        // The Colonie group now has area codes {518, 212} → both rows MV.
        assert!(
            report.num_sv() >= 3,
            "the two original SVs plus the new NYC tuple"
        );
        assert_eq!(report.num_mv(), 2);
        assert_matches_batch(&catalog, &constraints, &report);
    }

    #[test]
    fn deletions_remove_violations_and_clear_flags() {
        // Start with an FD conflict: two Albany rows with different area codes.
        let mut catalog = fresh_catalog(&[["519", "7", "Zoe", "Pine St.", "Albany", "12239"]]);
        let constraints = [phi1(), phi2()];
        let mut inc =
            IncrementalDetector::initialize(&cust_schema(), &constraints, &mut catalog).unwrap();
        assert_eq!(inc.report(&catalog).unwrap().num_mv(), 2);
        // Albany matches both pattern tuples of φ1, so the conflicting group
        // is tracked once per pattern tuple.
        assert_eq!(inc.violating_groups(), 2);

        // Deleting the Zoe tuple resolves the conflict.
        let delta = Delta::delete_only(vec![Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ])]);
        let stats = inc.apply(&mut catalog, &delta).unwrap();
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.groups_changed, 2);
        assert!(stats.rows_reflagged >= 1);

        let report = inc.report(&catalog).unwrap();
        assert_eq!(report.num_mv(), 0);
        assert_eq!(inc.violating_groups(), 0);
        assert_matches_batch(&catalog, &constraints, &report);
    }

    #[test]
    fn deleting_one_of_three_conflicting_tuples_keeps_the_violation() {
        let mut catalog = fresh_catalog(&[
            ["519", "7", "Zoe", "Pine St.", "Albany", "12239"],
            ["520", "8", "Ann", "Oak St.", "Albany", "12240"],
        ]);
        let constraints = [phi1()];
        let mut inc =
            IncrementalDetector::initialize(&cust_schema(), &constraints, &mut catalog).unwrap();
        assert_eq!(inc.report(&catalog).unwrap().num_mv(), 3);

        let delta = Delta::delete_only(vec![Tuple::from_iter([
            "520", "8", "Ann", "Oak St.", "Albany", "12240",
        ])]);
        inc.apply(&mut catalog, &delta).unwrap();
        let report = inc.report(&catalog).unwrap();
        assert_eq!(report.num_mv(), 2, "718 vs 519 still conflict");
        assert_matches_batch(&catalog, &constraints, &report);
    }

    #[test]
    fn mixed_updates_match_recomputation_over_a_sequence() {
        let mut catalog = fresh_catalog(&[]);
        let constraints = [phi1(), phi2(), fd_ct_ac()];
        let mut inc =
            IncrementalDetector::initialize(&cust_schema(), &constraints, &mut catalog).unwrap();

        let steps = vec![
            Delta::insert_only(vec![
                Tuple::from_iter(["519", "7", "Zoe", "Pine St.", "Albany", "12239"]),
                Tuple::from_iter(["315", "9", "Kim", "Elm St.", "Utica", "13501"]),
            ]),
            Delta {
                insertions: vec![Tuple::from_iter([
                    "607", "10", "Lee", "Ash St.", "Utica", "13502",
                ])],
                deletions: vec![Tuple::from_iter([
                    "718",
                    "1111111",
                    "Mike",
                    "Tree Ave.",
                    "Albany",
                    "12238",
                ])],
            },
            Delta::delete_only(vec![Tuple::from_iter([
                "519", "7", "Zoe", "Pine St.", "Albany", "12239",
            ])]),
        ];
        for delta in steps {
            inc.apply(&mut catalog, &delta).unwrap();
            let report = inc.report(&catalog).unwrap();
            assert_matches_batch(&catalog, &constraints, &report);
        }
    }

    #[test]
    fn incremental_evidence_tracks_updates_and_matches_semantic_evidence() {
        let mut catalog = fresh_catalog(&[]);
        let constraints = [phi1(), phi2()];
        let mut inc =
            IncrementalDetector::initialize(&cust_schema(), &constraints, &mut catalog).unwrap();

        // Initially: the two SV evidence records of Example 2.2, no groups.
        let initial = inc.evidence(&catalog).unwrap();
        assert_eq!(initial.num_sv_records(), 2);
        assert_eq!(initial.num_groups(), 0);

        // Insert a conflicting Albany tuple → two violating groups (one per
        // pattern tuple of φ1 that Albany matches).
        let delta = Delta::insert_only(vec![Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ])]);
        inc.apply(&mut catalog, &delta).unwrap();
        let evidence = inc.evidence(&catalog).unwrap();
        assert_eq!(evidence.num_groups(), 2);

        // Must agree record-for-record with the semantic detector run from
        // scratch over the same (base) data.
        let base_schema = cust_schema();
        let stored = catalog.get("cust").unwrap();
        let rows: Vec<Tuple> = stored
            .tuples()
            .map(|t| Tuple::new(t.values()[..base_schema.arity()].to_vec()))
            .collect();
        let scratch = Relation::with_tuples(base_schema.clone(), rows).unwrap();
        let (_, semantic) = SemanticDetector::new(&base_schema, &constraints)
            .unwrap()
            .detect_with_evidence(&scratch)
            .unwrap();
        // Row ids coincide here because the incremental table never deleted a
        // row, so positional order equals insertion order in both catalogs.
        assert_eq!(evidence.sv_pairs(), semantic.sv_pairs());
        assert_eq!(evidence.mv_pairs(), semantic.mv_pairs());
    }

    #[test]
    fn arity_mismatched_deletion_victims_match_nothing() {
        // A deletion victim must equal a full base tuple; a prefix (or an
        // over-long tuple) deletes nothing, exactly like the value-based
        // matching of the other backends.
        let mut catalog = fresh_catalog(&[]);
        let constraints = [phi1(), phi2()];
        let mut inc =
            IncrementalDetector::initialize(&cust_schema(), &constraints, &mut catalog).unwrap();
        let before = inc.report(&catalog).unwrap();
        let short = Tuple::from_iter(["718", "1111111"]);
        let long = Tuple::from_iter([
            "718",
            "1111111",
            "Mike",
            "Tree Ave.",
            "Albany",
            "12238",
            "extra",
        ]);
        let stats = inc
            .apply(&mut catalog, &Delta::delete_only(vec![short, long]))
            .unwrap();
        assert_eq!(stats.deleted, 0);
        assert_eq!(inc.report(&catalog).unwrap(), before);
        assert_eq!(catalog.get("cust").unwrap().len(), 6);
    }

    #[test]
    fn deleting_a_nonexistent_tuple_is_a_no_op() {
        let mut catalog = fresh_catalog(&[]);
        let constraints = [phi1()];
        let mut inc =
            IncrementalDetector::initialize(&cust_schema(), &constraints, &mut catalog).unwrap();
        let before = inc.report(&catalog).unwrap();
        let stats = inc
            .apply(
                &mut catalog,
                &Delta::delete_only(vec![Tuple::from_iter([
                    "000", "0", "Ghost", "Nowhere", "Atlantis", "00000",
                ])]),
            )
            .unwrap();
        assert_eq!(stats.deleted, 0);
        assert_eq!(inc.report(&catalog).unwrap(), before);
    }
}
