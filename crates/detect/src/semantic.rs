//! The native ("semantic") detector: a direct, index-based implementation of
//! the eCFD satisfaction semantics over the storage layer.
//!
//! This detector is not part of the paper — its detection technique is
//! SQL-only — but it serves two purposes in the reproduction:
//!
//! * it is the *oracle* for differential testing of the SQL path (both must
//!   flag exactly the same rows); and
//! * it is the "native" baseline of the `bench_sql_vs_native` ablation, which
//!   quantifies how much the SQL layer costs on our (unoptimised) engine.
//!
//! It also exposes the group bookkeeping (`(CID, X-projection) → distinct Y
//! projections`) that the incremental detector maintains.

use crate::evidence::{ConstraintRef, EvidenceReport, MvEvidence, SvEvidence};
use crate::report::DetectionReport;
use crate::Result;
use ecfd_core::matching::BoundECfd;
use ecfd_core::normalize::split_patterns;
use ecfd_core::ECfd;
use ecfd_relation::{Catalog, Relation, RowId, Schema, Value};
use std::collections::HashMap;

/// A key identifying one enforcement group: the single-pattern constraint id
/// (index into the split constraint list) plus the tuple's `X` projection.
pub type GroupKey = (usize, Vec<Value>);

/// Per-group state: how many group members carry each distinct `Y` projection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupState {
    /// Count of member tuples per distinct `Y` projection.
    pub y_counts: HashMap<Vec<Value>, usize>,
}

impl GroupState {
    /// Number of member tuples.
    pub fn size(&self) -> usize {
        self.y_counts.values().sum()
    }

    /// The group violates the embedded FD iff it contains members with at
    /// least two distinct `Y` projections.
    pub fn violates(&self) -> bool {
        self.y_counts.len() > 1
    }
}

/// The native detector.
#[derive(Debug, Clone)]
pub struct SemanticDetector {
    ecfds: Vec<ECfd>,
    singles: Vec<ECfd>,
    /// For every split single-pattern constraint, the `(constraint, pattern)`
    /// indices it came from — used to attribute evidence back to the user's
    /// original constraints.
    provenance: Vec<(usize, usize)>,
}

impl SemanticDetector {
    /// Creates a detector for `ecfds` on `schema`.
    pub fn new(schema: &Schema, ecfds: &[ECfd]) -> Result<Self> {
        for e in ecfds {
            e.validate_against(schema)?;
        }
        let split = split_patterns(ecfds);
        let provenance = split
            .iter()
            .map(|s| (s.source_constraint, s.source_pattern))
            .collect();
        let singles = split.into_iter().map(|s| s.ecfd).collect();
        Ok(SemanticDetector {
            ecfds: ecfds.to_vec(),
            singles,
            provenance,
        })
    }

    /// Creates a detector from an already-compiled [`ConstraintSet`]: the
    /// set's validation and split are reused verbatim, so no per-detector
    /// re-validation or re-splitting happens.
    ///
    /// [`ConstraintSet`]: ecfd_core::ConstraintSet
    pub fn from_set(set: &ecfd_core::ConstraintSet) -> Self {
        SemanticDetector {
            ecfds: set.ecfds().to_vec(),
            singles: set.singles().iter().map(|s| s.ecfd.clone()).collect(),
            provenance: set.provenance(),
        }
    }

    /// The original constraints.
    pub fn ecfds(&self) -> &[ECfd] {
        &self.ecfds
    }

    /// The split single-pattern constraints (aligned with incremental group
    /// constraint indices).
    pub fn singles(&self) -> &[ECfd] {
        &self.singles
    }

    /// `(constraint, pattern)` provenance of every split constraint, parallel
    /// to [`SemanticDetector::singles`].
    pub fn provenance(&self) -> &[(usize, usize)] {
        &self.provenance
    }

    /// Detects violations in a relation, returning the report without
    /// modifying the relation.
    pub fn detect(&self, relation: &Relation) -> Result<DetectionReport> {
        let (report, _) = self.detect_with_groups(relation)?;
        Ok(report)
    }

    /// Detects violations in the named catalog table.
    pub fn detect_in_catalog(&self, catalog: &Catalog, table: &str) -> Result<DetectionReport> {
        self.detect(catalog.get(table)?)
    }

    /// Detects violations and also returns the group state, which is the seed
    /// state of the incremental detector.
    pub fn detect_with_groups(
        &self,
        relation: &Relation,
    ) -> Result<(DetectionReport, HashMap<GroupKey, GroupState>)> {
        let (report, _, groups) = self.detect_full(relation)?;
        Ok((report, groups))
    }

    /// Detects violations and explains them: alongside the flag-level report,
    /// returns [`EvidenceReport`] records naming, for every flagged row, the
    /// violated constraint and pattern tuple — and for multi-tuple violations
    /// the offending group key.
    pub fn detect_with_evidence(
        &self,
        relation: &Relation,
    ) -> Result<(DetectionReport, EvidenceReport)> {
        let (report, evidence, _) = self.detect_full(relation)?;
        Ok((report, evidence))
    }

    /// The full scan behind every `detect*` entry point: flags, evidence and
    /// group state in one pass over the relation.
    pub fn detect_full(
        &self,
        relation: &Relation,
    ) -> Result<(
        DetectionReport,
        EvidenceReport,
        HashMap<GroupKey, GroupState>,
    )> {
        let bounds = self.bind(relation.schema())?;
        let mut report = DetectionReport {
            total_rows: relation.len(),
            ..Default::default()
        };
        let mut evidence = EvidenceReport {
            total_rows: relation.len(),
            ..Default::default()
        };
        let mut groups: HashMap<GroupKey, GroupState> = HashMap::new();
        // Remember which rows belong to which groups so the MV pass does not
        // need a second scan per group.
        let mut memberships: HashMap<GroupKey, Vec<RowId>> = HashMap::new();

        for (row_id, tuple) in relation.iter() {
            for (ci, bound) in bounds.iter().enumerate() {
                if !bound.lhs_matches(tuple, 0) {
                    continue;
                }
                if !bound.rhs_matches(tuple, 0) {
                    report.sv_rows.insert(row_id);
                    let (constraint, pattern) = self.provenance[ci];
                    evidence.sv.push(SvEvidence {
                        row: row_id,
                        source: ConstraintRef::new(constraint, pattern),
                    });
                }
                if !bound.fd_rhs_ids().is_empty() {
                    let key = (ci, bound.lhs_key(tuple));
                    let y = bound.fd_rhs_key(tuple);
                    *groups
                        .entry(key.clone())
                        .or_default()
                        .y_counts
                        .entry(y)
                        .or_insert(0) += 1;
                    memberships.entry(key).or_default().push(row_id);
                }
            }
        }
        for (key, state) in &groups {
            if state.violates() {
                if let Some(rows) = memberships.get(key) {
                    report.mv_rows.extend(rows.iter().copied());
                    let (constraint, pattern) = self.provenance[key.0];
                    evidence.mv_groups.push(MvEvidence {
                        source: ConstraintRef::new(constraint, pattern),
                        group_key: key.1.clone(),
                        rows: rows.iter().copied().collect(),
                    });
                }
            }
        }
        evidence.normalize();
        Ok((report, evidence, groups))
    }

    /// Detects violations and writes the `SV` / `MV` flag columns of the named
    /// table in place (adding the columns if the table does not have them).
    /// This is the "native BATCHDETECT" baseline used by the ablation
    /// benchmarks.
    pub fn detect_and_flag(&self, catalog: &mut Catalog, table: &str) -> Result<DetectionReport> {
        ensure_flag_columns(catalog, table)?;
        let report = {
            let relation = catalog.get(table)?;
            self.detect(relation)?
        };
        write_flags(catalog, table, &report)?;
        Ok(report)
    }

    /// Resolves the split constraints against a (possibly extended) schema.
    pub fn bind<'a>(&'a self, schema: &Schema) -> Result<Vec<BoundECfd<'a>>> {
        self.singles
            .iter()
            .map(|e| BoundECfd::bind(e, schema).map_err(Into::into))
            .collect()
    }
}

/// Adds integer `SV` / `MV` columns (initialised to 0) to `table` if absent,
/// and resets them to 0 if present.
pub fn ensure_flag_columns(catalog: &mut Catalog, table: &str) -> Result<()> {
    let needs_extend = {
        let relation = catalog.get(table)?;
        relation.schema().attr_id("SV").is_none()
    };
    if needs_extend {
        let relation = catalog.get(table)?;
        let extended = relation.extend_schema(
            vec![
                ecfd_relation::Attribute::new("SV", ecfd_relation::DataType::Int),
                ecfd_relation::Attribute::new("MV", ecfd_relation::DataType::Int),
            ],
            Value::Int(0),
        )?;
        catalog.create_or_replace(extended);
    } else {
        let relation = catalog.get_mut(table)?;
        let sv = relation.schema().require_attr("SV")?;
        let mv = relation.schema().require_attr("MV")?;
        for row_id in relation.row_ids() {
            relation.update_value(row_id, sv, Value::Int(0))?;
            relation.update_value(row_id, mv, Value::Int(0))?;
        }
    }
    Ok(())
}

/// Writes the report's flags into the `SV` / `MV` columns of `table`.
pub fn write_flags(catalog: &mut Catalog, table: &str, report: &DetectionReport) -> Result<()> {
    let relation = catalog.get_mut(table)?;
    let sv = relation.schema().require_attr("SV")?;
    let mv = relation.schema().require_attr("MV")?;
    for row_id in report.sv_rows.iter() {
        relation.update_value(*row_id, sv, Value::Int(1))?;
    }
    for row_id in report.mv_rows.iter() {
        relation.update_value(*row_id, mv, Value::Int(1))?;
    }
    Ok(())
}

/// Fig. 1's instance `D0` plus the two constraints of Fig. 2 — shared by the
/// tests of several modules in this crate.
#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use ecfd_core::ECfdBuilder;
    use ecfd_relation::{DataType, Tuple};

    pub fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("PN", DataType::Str)
            .attr("NM", DataType::Str)
            .attr("STR", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    pub fn d0() -> Relation {
        Relation::with_tuples(
            cust_schema(),
            [
                Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
                Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
                Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
                Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
                Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
                Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
            ],
        )
        .unwrap()
    }

    pub fn phi1() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap()
    }

    pub fn phi2() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| {
                p.constant("CT", "NYC")
                    .in_set("AC", ["212", "718", "646", "347", "917"])
            })
            .build()
            .unwrap()
    }

    /// An FD-style constraint that D0 violates with two tuples once we add a
    /// second Albany row with a different area code.
    pub fn fd_ct_ac() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;
    use ecfd_relation::Tuple;

    #[test]
    fn d0_has_the_two_violations_of_example_2_2() {
        let detector = SemanticDetector::new(&cust_schema(), &[phi1(), phi2()]).unwrap();
        let db = d0();
        let report = detector.detect(&db).unwrap();
        let rows = db.row_ids();
        assert_eq!(report.sv_rows, [rows[0], rows[3]].into_iter().collect());
        assert!(report.mv_rows.is_empty());
        assert_eq!(report.num_violations(), 2);
    }

    #[test]
    fn multi_tuple_violations_flag_the_whole_group() {
        let mut db = d0();
        // A second Albany row with a different area code violates the FD part
        // of φ1's first pattern tuple together with t1.
        db.insert(Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ]))
        .unwrap();
        let detector = SemanticDetector::new(&cust_schema(), &[phi1()]).unwrap();
        let (report, groups) = detector.detect_with_groups(&db).unwrap();
        let rows = db.row_ids();
        assert!(report.mv_rows.contains(&rows[0]));
        assert!(report.mv_rows.contains(&rows[6]));
        assert_eq!(report.mv_rows.len(), 2);
        // The Albany group of the first single-pattern constraint violates.
        let albany_groups: Vec<&GroupState> = groups
            .iter()
            .filter(|((_, key), _)| key == &vec![Value::str("Albany")])
            .map(|(_, state)| state)
            .collect();
        assert!(albany_groups.iter().any(|g| g.violates()));
    }

    #[test]
    fn detect_and_flag_writes_sv_mv_columns() {
        let mut catalog = Catalog::new();
        catalog.create(d0()).unwrap();
        let detector = SemanticDetector::new(&cust_schema(), &[phi1(), phi2()]).unwrap();
        let report = detector.detect_and_flag(&mut catalog, "cust").unwrap();
        assert_eq!(report.num_sv(), 2);
        let read_back = DetectionReport::from_catalog(&catalog, "cust").unwrap();
        assert_eq!(read_back, report);
        // Re-running resets the flags and produces the same answer.
        let report2 = detector.detect_and_flag(&mut catalog, "cust").unwrap();
        assert_eq!(report2.sv_rows, report.sv_rows);
    }

    #[test]
    fn group_state_size_and_violation() {
        let mut state = GroupState::default();
        *state.y_counts.entry(vec![Value::str("518")]).or_insert(0) += 2;
        assert_eq!(state.size(), 2);
        assert!(!state.violates());
        *state.y_counts.entry(vec![Value::str("718")]).or_insert(0) += 1;
        assert_eq!(state.size(), 3);
        assert!(state.violates());
    }

    #[test]
    fn agreement_with_the_core_reference_semantics() {
        // The detector must agree with ecfd_core::satisfaction on every flag.
        let mut db = d0();
        db.insert(Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ]))
        .unwrap();
        let constraints = [phi1(), phi2(), fd_ct_ac()];
        let detector = SemanticDetector::new(&cust_schema(), &constraints).unwrap();
        let report = detector.detect(&db).unwrap();
        let reference = ecfd_core::satisfaction::check_all(&db, &constraints).unwrap();
        let expected = DetectionReport::from_violation_set(reference.violations(), db.len());
        assert_eq!(report.sv_rows, expected.sv_rows);
        assert_eq!(report.mv_rows, expected.mv_rows);
    }

    #[test]
    fn evidence_names_the_violated_constraints_of_example_2_2() {
        use crate::evidence::ConstraintRef;
        let detector = SemanticDetector::new(&cust_schema(), &[phi1(), phi2()]).unwrap();
        let db = d0();
        let (report, evidence) = detector.detect_with_evidence(&db).unwrap();
        assert_eq!(evidence.detection_report(), report);
        let rows = db.row_ids();
        // t1 (Albany, 718) violates the second pattern tuple of φ1;
        // t4 (NYC, 100) violates the single pattern tuple of φ2.
        assert_eq!(
            evidence.sv_pairs(),
            [
                (rows[0], ConstraintRef::new(0, 1)),
                (rows[3], ConstraintRef::new(1, 0)),
            ]
            .into_iter()
            .collect()
        );
        assert!(evidence.mv_groups.is_empty());
    }

    #[test]
    fn mv_evidence_reports_the_offending_group_key() {
        let mut db = d0();
        db.insert(Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ]))
        .unwrap();
        let detector = SemanticDetector::new(&cust_schema(), &[phi1()]).unwrap();
        let (_, evidence) = detector.detect_with_evidence(&db).unwrap();
        // Albany matches both pattern tuples of φ1 → one violating group per
        // pattern tuple, same key, same two member rows.
        assert_eq!(evidence.num_groups(), 2);
        for group in &evidence.mv_groups {
            assert_eq!(group.group_key, vec![Value::str("Albany")]);
            assert_eq!(group.rows.len(), 2);
            assert_eq!(group.source.constraint, 0);
        }
    }

    #[test]
    fn clean_data_produces_a_clean_report() {
        let db = Relation::with_tuples(
            cust_schema(),
            [
                Tuple::from_iter(["518", "1", "A", "S", "Albany", "12238"]),
                Tuple::from_iter(["212", "2", "B", "S", "NYC", "10001"]),
            ],
        )
        .unwrap();
        let detector = SemanticDetector::new(&cust_schema(), &[phi1(), phi2()]).unwrap();
        assert!(detector.detect(&db).unwrap().is_clean());
    }
}
