//! The native ("semantic") detector: a direct implementation of the eCFD
//! satisfaction semantics over the dictionary-encoded columnar core.
//!
//! This detector is not part of the paper — its detection technique is
//! SQL-only — but it serves three purposes in the reproduction:
//!
//! * it is the *oracle* for differential testing of the SQL path (both must
//!   flag exactly the same rows);
//! * it is the "native" baseline of the `bench_sql_vs_native` ablation; and
//! * it is the system's fast path: rows are encoded once into a
//!   [`ColumnarView`], pattern constants are pre-resolved to [`Code`]s at
//!   construction (registration) time, group keys are [`CodeVec`] code
//!   slices instead of cloned `Vec<Value>`s, and the scan hash-partitions
//!   enforcement groups on the coded `X`-projection so it can fan out
//!   across `std::thread::scope` workers (see [`crate::parallel`]).
//!
//! It also exposes the group bookkeeping (`(CID, X-projection) → distinct Y
//! projections + member rows`) that the incremental detector maintains.
//!
//! [`Code`]: ecfd_relation::Code

use crate::evidence::{ConstraintRef, EvidenceReport, MvEvidence, SvEvidence};
use crate::parallel::{effective_threads, split_ranges, Parallelism};
use crate::report::DetectionReport;
use crate::Result;
use ecfd_core::coded::{intern_singles, CodedSingle};
use ecfd_core::matching::BoundECfd;
use ecfd_core::normalize::split_patterns;
use ecfd_core::ECfd;
use ecfd_relation::columnar::shard_of;
use ecfd_relation::{
    AttrId, Catalog, CodeMap, CodeVec, ColumnarView, Dictionary, FrozenView, Relation, RowId,
    Schema, Tuple, Value,
};
use parking_lot::RwLock;
use std::sync::Arc;

/// A key identifying one enforcement group: the single-pattern constraint id
/// (index into the split constraint list) plus the tuple's coded `X`
/// projection (codes issued by the detector's dictionary).
pub type GroupKey = (usize, CodeVec);

/// The group map every detector produces and the incremental detector
/// maintains (the paper's `Aux(D)` analogue), keyed by coded projections.
pub type GroupMap = CodeMap<GroupKey, GroupState>;

/// Per-group state: how many group members carry each distinct coded `Y`
/// projection, plus the member rows themselves (one membership list shared
/// with the count bookkeeping, so no per-tuple key clone is needed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupState {
    /// Count of member tuples per distinct coded `Y` projection.
    pub y_counts: CodeMap<CodeVec, usize>,
    /// Every member row of the group, in scan / insertion order.
    pub rows: Vec<RowId>,
}

impl GroupState {
    /// Number of member tuples.
    pub fn size(&self) -> usize {
        self.y_counts.values().sum()
    }

    /// The group violates the embedded FD iff it contains members with at
    /// least two distinct `Y` projections.
    pub fn violates(&self) -> bool {
        self.y_counts.len() > 1
    }

    /// Merges another partial state into this one (summing counts,
    /// concatenating member lists in argument order).
    fn absorb(&mut self, other: GroupState) {
        for (y, count) in other.y_counts {
            *self.y_counts.entry(y).or_insert(0) += count;
        }
        self.rows.extend(other.rows);
    }
}

/// The constraint codec shared by every clone of a detector (and by the
/// incremental detector built on top of it): one [`Dictionary`] per compiled
/// constraint set. The dictionary only grows — interning data values never
/// invalidates the pattern codes resolved at construction time.
///
/// The coded pattern cells themselves live *outside* this lock (they are
/// immutable after construction, see [`SemanticDetector`]), so read-only
/// detection over a [`FrozenView`] never takes it.
#[derive(Debug)]
pub(crate) struct Codec {
    /// The issuing dictionary for pattern constants and data values alike.
    pub(crate) dict: Dictionary,
}

/// The native detector.
#[derive(Debug, Clone)]
pub struct SemanticDetector {
    ecfds: Vec<ECfd>,
    singles: Vec<ECfd>,
    /// For every split single-pattern constraint, the `(constraint, pattern)`
    /// indices it came from — used to attribute evidence back to the user's
    /// original constraints.
    provenance: Vec<(usize, usize)>,
    /// Coded pattern cells, parallel to the split single-pattern constraints.
    /// Interned once at construction against the codec dictionary's *initial*
    /// state; immutable afterwards, so they are shared outside the codec lock
    /// and stay valid against every later dictionary state (grow-only
    /// interning) — including the dictionary clone inside any [`FrozenView`]
    /// descended from this detector's codec.
    cells: Arc<Vec<CodedSingle>>,
    codec: Arc<RwLock<Codec>>,
    parallelism: Parallelism,
}

impl SemanticDetector {
    /// Creates a detector for `ecfds` on `schema`.
    pub fn new(schema: &Schema, ecfds: &[ECfd]) -> Result<Self> {
        for e in ecfds {
            e.validate_against(schema)?;
        }
        let split = split_patterns(ecfds);
        let provenance = split
            .iter()
            .map(|s| (s.source_constraint, s.source_pattern))
            .collect();
        let singles: Vec<ECfd> = split.into_iter().map(|s| s.ecfd).collect();
        Ok(Self::assemble(ecfds.to_vec(), singles, provenance))
    }

    /// Creates a detector from an already-compiled [`ConstraintSet`]: the
    /// set's validation and split are reused verbatim, so no per-detector
    /// re-validation or re-splitting happens — and the pattern constants are
    /// interned to codes here, once, at registration time.
    ///
    /// [`ConstraintSet`]: ecfd_core::ConstraintSet
    pub fn from_set(set: &ecfd_core::ConstraintSet) -> Self {
        Self::assemble(
            set.ecfds().to_vec(),
            set.singles().iter().map(|s| s.ecfd.clone()).collect(),
            set.provenance(),
        )
    }

    fn assemble(ecfds: Vec<ECfd>, singles: Vec<ECfd>, provenance: Vec<(usize, usize)>) -> Self {
        let mut dict = Dictionary::new();
        let cells = intern_singles(&singles, &mut dict);
        SemanticDetector {
            ecfds,
            singles,
            provenance,
            cells: Arc::new(cells),
            codec: Arc::new(RwLock::new(Codec { dict })),
            parallelism: Parallelism::default(),
        }
    }

    /// Sets the worker fan-out of subsequent detection passes.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the worker fan-out of subsequent detection passes.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The configured worker fan-out.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The original constraints.
    pub fn ecfds(&self) -> &[ECfd] {
        &self.ecfds
    }

    /// The split single-pattern constraints (aligned with incremental group
    /// constraint indices).
    pub fn singles(&self) -> &[ECfd] {
        &self.singles
    }

    /// `(constraint, pattern)` provenance of every split constraint, parallel
    /// to [`SemanticDetector::singles`].
    pub fn provenance(&self) -> &[(usize, usize)] {
        &self.provenance
    }

    /// The shared codec (the issuing dictionary). Crate-internal: the
    /// incremental detector maintains its view and group state through the
    /// same dictionary.
    pub(crate) fn codec(&self) -> &Arc<RwLock<Codec>> {
        &self.codec
    }

    /// The coded pattern cells, parallel to [`SemanticDetector::singles`].
    /// Immutable after construction and held outside the codec lock.
    pub(crate) fn cells(&self) -> &[CodedSingle] {
        &self.cells
    }

    /// Encodes a tuple projection into a coded group key through the
    /// detector's dictionary (interning unseen values). This is how the
    /// repair layer keys its conflict classes by the same codes the
    /// detectors group on. Prefer [`SemanticDetector::encode_keys`] for
    /// many tuples — it takes the dictionary lock once.
    pub fn encode_key(&self, tuple: &Tuple, attrs: &[AttrId]) -> CodeVec {
        let mut codec = self.codec.write();
        CodeVec::from_iter_exact(attrs.iter().map(|a| codec.dict.encode(tuple.value(*a))))
    }

    /// Encodes the same projection of many tuples under a single dictionary
    /// lock, in input order.
    pub fn encode_keys<'t>(
        &self,
        tuples: impl IntoIterator<Item = &'t Tuple>,
        attrs: &[AttrId],
    ) -> Vec<CodeVec> {
        let mut codec = self.codec.write();
        tuples
            .into_iter()
            .map(|tuple| {
                CodeVec::from_iter_exact(attrs.iter().map(|a| codec.dict.encode(tuple.value(*a))))
            })
            .collect()
    }

    /// Decodes a coded group key back to the values it was issued for.
    pub fn decode_key(&self, key: &CodeVec) -> Vec<Value> {
        self.codec.read().dict.decode_all(key.as_slice())
    }

    /// Detects violations in a relation, returning the report without
    /// modifying the relation.
    pub fn detect(&self, relation: &Relation) -> Result<DetectionReport> {
        let (report, _) = self.detect_with_groups(relation)?;
        Ok(report)
    }

    /// Detects violations in the named catalog table.
    pub fn detect_in_catalog(&self, catalog: &Catalog, table: &str) -> Result<DetectionReport> {
        self.detect(catalog.get(table)?)
    }

    /// Detects violations and also returns the group state, which is the seed
    /// state of the incremental detector.
    pub fn detect_with_groups(&self, relation: &Relation) -> Result<(DetectionReport, GroupMap)> {
        let (report, _, groups) = self.detect_full(relation)?;
        Ok((report, groups))
    }

    /// Detects violations and explains them: alongside the flag-level report,
    /// returns [`EvidenceReport`] records naming, for every flagged row, the
    /// violated constraint and pattern tuple — and for multi-tuple violations
    /// the offending group key.
    pub fn detect_with_evidence(
        &self,
        relation: &Relation,
    ) -> Result<(DetectionReport, EvidenceReport)> {
        let (report, evidence, _) = self.detect_full(relation)?;
        Ok((report, evidence))
    }

    /// The full scan behind every `detect*` entry point: flags, evidence and
    /// group state in one (possibly parallel) pass over the relation.
    ///
    /// The scan runs in two phases. Phase 1 splits the rows into contiguous
    /// chunks, one `std::thread::scope` worker each; a worker evaluates the
    /// coded pattern cells against the view's code columns and partitions
    /// its partial group states by `shard_of(ci, X-codes)`. Phase 2 merges
    /// each shard's partials (all members of a group land in one shard) and
    /// derives the multi-tuple violations. Both phases are deterministic, so
    /// 1 worker and N workers produce identical reports, evidence and group
    /// maps.
    pub fn detect_full(
        &self,
        relation: &Relation,
    ) -> Result<(DetectionReport, EvidenceReport, GroupMap)> {
        let bounds = self.bind(relation.schema())?;
        let mut codec_guard = self.codec.write();
        let view = ColumnarView::build(relation, &mut codec_guard.dict);
        Ok(self.scan_view(&view, &codec_guard.dict, &bounds, relation.len()))
    }

    /// Runs a full, read-only detection pass over a [`FrozenView`] — the
    /// serving layer's reader path. The frozen dictionary must descend from
    /// this detector's codec (e.g. produced by [`SemanticDetector::freeze`]
    /// or `IncrementalDetector::freeze`), so the pattern cells coded at
    /// construction time match its codes. Nothing is locked and nothing is
    /// interned: any number of threads can run this concurrently against the
    /// same handle, and the output is deterministic at every worker count —
    /// byte-identical to a from-scratch [`SemanticDetector::detect_with_evidence`]
    /// over the relation the view was frozen from.
    pub fn detect_frozen(
        &self,
        frozen: &FrozenView,
        schema: &Schema,
    ) -> Result<(DetectionReport, EvidenceReport)> {
        let bounds = self.bind(schema)?;
        let (report, evidence, _) =
            self.scan_view(frozen.view(), frozen.dict(), &bounds, frozen.num_rows());
        Ok((report, evidence))
    }

    /// Encodes the first `base_arity` attributes of `relation` through the
    /// detector's dictionary and freezes the result together with a
    /// dictionary clone: one consistent point-in-time unit that
    /// [`SemanticDetector::detect_frozen`] can re-scan without
    /// synchronisation. This is the snapshot-extraction primitive of the
    /// serving layer.
    pub fn freeze(&self, relation: &Relation, base_arity: usize) -> FrozenView {
        let mut codec = self.codec.write();
        let view = ColumnarView::build_prefix(relation, base_arity, &mut codec.dict);
        FrozenView::new(view, codec.dict.clone())
    }

    /// The shared two-phase scan: flags, evidence and group state from one
    /// (possibly parallel) pass over an already-encoded view. `dict` must be
    /// the dictionary state (or a later state of the same lineage) that
    /// issued the view's codes.
    fn scan_view(
        &self,
        view: &ColumnarView,
        dict: &Dictionary,
        bounds: &[BoundECfd<'_>],
        total_rows: usize,
    ) -> (DetectionReport, EvidenceReport, GroupMap) {
        let pass_started = std::time::Instant::now();
        let cells: &[CodedSingle] = &self.cells;
        let n_rows = view.num_rows();
        let threads = effective_threads(self.parallelism, n_rows, self.singles.len());
        let n_shards = threads;

        // Phase 1: chunked row scan.
        let chunks: Vec<ChunkOut> = if threads <= 1 {
            vec![scan_chunk(view, bounds, cells, 0, n_rows, 1)]
        } else {
            let ranges = split_ranges(n_rows, threads);
            std::thread::scope(|s| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|&(lo, hi)| {
                        s.spawn(move || scan_chunk(view, bounds, cells, lo, hi, n_shards))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("detection worker panicked"))
                    .collect()
            })
        };

        // Transpose the per-chunk, per-shard partials into per-shard inputs
        // (chunk order preserved so member lists merge in global row order).
        let mut sv_pairs: Vec<(RowId, usize)> = Vec::new();
        let mut shard_inputs: Vec<Vec<CodeMap<GroupKey, GroupState>>> = (0..n_shards)
            .map(|_| Vec::with_capacity(chunks.len()))
            .collect();
        for chunk in chunks {
            sv_pairs.extend(chunk.sv);
            for (shard, part) in chunk.parts.into_iter().enumerate() {
                shard_inputs[shard].push(part);
            }
        }

        // Phase 2: per-shard merge; every member of a group is in exactly one
        // shard, so merges are independent.
        let shard_outs: Vec<ShardOut> = if threads <= 1 {
            shard_inputs
                .into_iter()
                .map(|parts| merge_shard(parts, &self.provenance, dict))
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = shard_inputs
                    .into_iter()
                    .map(|parts| {
                        let provenance = &self.provenance;
                        s.spawn(move || merge_shard(parts, provenance, dict))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("merge worker panicked"))
                    .collect()
            })
        };

        // Deterministic assembly: reports are sorted sets, evidence is
        // normalized, the group map is a union of disjoint shard maps.
        let mut report = DetectionReport {
            total_rows,
            ..Default::default()
        };
        let mut evidence = EvidenceReport {
            total_rows,
            ..Default::default()
        };
        for (row, ci) in sv_pairs {
            report.sv_rows.insert(row);
            let (constraint, pattern) = self.provenance[ci];
            evidence.sv.push(SvEvidence {
                row,
                source: ConstraintRef::new(constraint, pattern),
            });
        }
        let mut groups = GroupMap::default();
        for shard in shard_outs {
            report.mv_rows.extend(shard.mv_rows);
            evidence.mv_groups.extend(shard.mv_groups);
            if groups.is_empty() {
                groups = shard.groups;
            } else {
                groups.extend(shard.groups);
            }
        }
        evidence.normalize();
        crate::obs::record_pass(
            "semantic",
            n_rows as u64,
            groups.len() as u64,
            report.num_violations() as u64,
            pass_started.elapsed(),
        );
        (report, evidence, groups)
    }

    /// Detects violations and writes the `SV` / `MV` flag columns of the named
    /// table in place (adding the columns if the table does not have them).
    /// This is the "native BATCHDETECT" baseline used by the ablation
    /// benchmarks.
    pub fn detect_and_flag(&self, catalog: &mut Catalog, table: &str) -> Result<DetectionReport> {
        ensure_flag_columns(catalog, table)?;
        let report = {
            let relation = catalog.get(table)?;
            self.detect(relation)?
        };
        write_flags(catalog, table, &report)?;
        Ok(report)
    }

    /// Resolves the split constraints against a (possibly extended) schema.
    pub fn bind<'a>(&'a self, schema: &Schema) -> Result<Vec<BoundECfd<'a>>> {
        self.singles
            .iter()
            .map(|e| BoundECfd::bind(e, schema).map_err(Into::into))
            .collect()
    }

    // ── cross-partition detection ─────────────────────────────────────────

    /// For every split constraint, whether its `X` contains `shard_attr` —
    /// the *partition-aligned* constraints of a serving layer that routes
    /// rows by that attribute's value. An aligned constraint's enforcement
    /// groups are complete within one partition (equal group keys imply an
    /// equal shard-attribute value, hence the same partition), so its
    /// multi-tuple violations resolve locally; the rest need the merge in
    /// [`SemanticDetector::merge_partials`]. Constraints with an empty `X`
    /// are never aligned.
    pub fn aligned_mask(&self, schema: &Schema, shard_attr: AttrId) -> Result<Vec<bool>> {
        let bounds = self.bind(schema)?;
        Ok(bounds
            .iter()
            .map(|b| b.lhs_ids().contains(&shard_attr))
            .collect())
    }

    /// Runs the scan over one partition of a row-partitioned relation and
    /// returns a mergeable partial result instead of a finished report:
    /// single-tuple violations and the evidence of `aligned` constraints are
    /// final (both are decided within the partition), while the group states
    /// of cross-partition constraints are exported *decoded* — each
    /// partition interns values in its own order, so dictionary codes are
    /// not comparable across partitions, but the decoded values are.
    ///
    /// `aligned` is indexed by split-constraint id (see
    /// [`SemanticDetector::aligned_mask`]).
    pub fn detect_partition(
        &self,
        frozen: &FrozenView,
        schema: &Schema,
        aligned: &[bool],
    ) -> Result<ShardPartial> {
        let bounds = self.bind(schema)?;
        let (_, evidence, groups) =
            self.scan_view(frozen.view(), frozen.dict(), &bounds, frozen.num_rows());
        let dict = frozen.dict();
        let mut local_mv = Vec::new();
        let mut open = Vec::new();
        for ((ci, key), state) in groups {
            if aligned.get(ci).copied().unwrap_or(false) {
                if state.violates() {
                    let (constraint, pattern) = self.provenance[ci];
                    local_mv.push(MvEvidence {
                        source: ConstraintRef::new(constraint, pattern),
                        group_key: dict.decode_all(key.as_slice()),
                        rows: state.rows.iter().copied().collect(),
                    });
                }
            } else {
                open.push(OpenGroup {
                    ci,
                    key: dict.decode_all(key.as_slice()),
                    y_counts: state
                        .y_counts
                        .iter()
                        .map(|(y, n)| (dict.decode_all(y.as_slice()), *n))
                        .collect(),
                    rows: state.rows,
                });
            }
        }
        Ok(ShardPartial {
            total_rows: frozen.num_rows(),
            sv: evidence.sv,
            local_mv,
            open,
        })
    }

    /// Combines the partials of every partition into the global report and
    /// evidence — the serving-layer analogue of the scan's phase-2 shard
    /// merge. Open groups are merged by `(constraint, decoded key)`: partial
    /// `Y`-multiplicity maps are summed and a merged group violates iff it
    /// ends up with at least two distinct `Y` projections, exactly the
    /// single-pass criterion. The result is byte-identical to a from-scratch
    /// detection over the union of the partitions' rows (row ids are
    /// partition-global and the report/evidence shapes are order-normalized
    /// sets).
    pub fn merge_partials(&self, partials: Vec<ShardPartial>) -> (DetectionReport, EvidenceReport) {
        let total_rows = partials.iter().map(|p| p.total_rows).sum();
        let mut report = DetectionReport {
            total_rows,
            ..Default::default()
        };
        let mut evidence = EvidenceReport {
            total_rows,
            ..Default::default()
        };
        let mut merged: std::collections::BTreeMap<(usize, Vec<Value>), MergedGroup> =
            std::collections::BTreeMap::new();
        for partial in partials {
            for sv in partial.sv {
                report.sv_rows.insert(sv.row);
                evidence.sv.push(sv);
            }
            for mv in partial.local_mv {
                report.mv_rows.extend(mv.rows.iter().copied());
                evidence.mv_groups.push(mv);
            }
            for group in partial.open {
                let slot = merged.entry((group.ci, group.key)).or_default();
                for (y, n) in group.y_counts {
                    *slot.y_counts.entry(y).or_insert(0) += n;
                }
                slot.rows.extend(group.rows);
            }
        }
        for ((ci, key), state) in merged {
            if state.y_counts.len() > 1 {
                report.mv_rows.extend(state.rows.iter().copied());
                let (constraint, pattern) = self.provenance[ci];
                evidence.mv_groups.push(MvEvidence {
                    source: ConstraintRef::new(constraint, pattern),
                    group_key: key,
                    rows: state.rows.into_iter().collect(),
                });
            }
        }
        evidence.normalize();
        (report, evidence)
    }
}

/// One cross-partition enforcement group as exported by
/// [`SemanticDetector::detect_partition`]: the decoded group key, the decoded
/// `Y`-projection multiplicities, and the member rows. Decoded (value-level)
/// on purpose — each partition's dictionary interns in its own order, so
/// codes do not line up across partitions but values do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenGroup {
    /// Split-constraint id (index into [`SemanticDetector::singles`]).
    pub ci: usize,
    /// The group's decoded `X` projection.
    pub key: Vec<Value>,
    /// Count of member tuples per distinct decoded `Y` projection.
    pub y_counts: Vec<(Vec<Value>, usize)>,
    /// Every member row, in partition scan order.
    pub rows: Vec<RowId>,
}

/// The mergeable result of scanning one partition of a row-partitioned
/// relation: finished single-tuple evidence, finished multi-tuple evidence
/// for partition-aligned constraints, and open (cross-partition) group
/// states awaiting [`SemanticDetector::merge_partials`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPartial {
    /// Rows scanned in this partition.
    pub total_rows: usize,
    /// Single-tuple violation evidence (always partition-local).
    pub sv: Vec<SvEvidence>,
    /// Finished evidence of partition-aligned constraints' violating groups.
    pub local_mv: Vec<MvEvidence>,
    /// Group states of cross-partition constraints, decoded for merging.
    pub open: Vec<OpenGroup>,
}

/// Accumulator for one merged cross-partition group.
#[derive(Debug, Default)]
struct MergedGroup {
    y_counts: std::collections::BTreeMap<Vec<Value>, usize>,
    rows: Vec<RowId>,
}

/// What one phase-1 worker produces for its row chunk.
struct ChunkOut {
    /// `(row, split-constraint)` single-tuple violations, in row order.
    sv: Vec<(RowId, usize)>,
    /// Partial group states, partitioned by `shard_of(ci, X-codes)`.
    parts: Vec<CodeMap<GroupKey, GroupState>>,
}

/// Phase 1: scans rows `lo..hi` of the view against every coded constraint.
fn scan_chunk(
    view: &ColumnarView,
    bounds: &[BoundECfd<'_>],
    coded: &[CodedSingle],
    lo: usize,
    hi: usize,
    n_shards: usize,
) -> ChunkOut {
    let mut out = ChunkOut {
        sv: Vec::new(),
        parts: vec![CodeMap::default(); n_shards],
    };
    for pos in lo..hi {
        let row_id = view.row_id(pos);
        for (ci, bound) in bounds.iter().enumerate() {
            let cells = &coded[ci];
            if !cells.lhs_matches(bound.lhs_ids().iter().map(|a| view.code(pos, *a))) {
                continue;
            }
            if !cells.rhs_matches(bound.rhs_ids().iter().map(|a| view.code(pos, *a))) {
                out.sv.push((row_id, ci));
            }
            if !bound.fd_rhs_ids().is_empty() {
                let key = view.key(pos, bound.lhs_ids());
                let shard = if n_shards == 1 {
                    0
                } else {
                    shard_of(ci, &key, n_shards)
                };
                let y = view.key(pos, bound.fd_rhs_ids());
                // One key allocation serves count and membership bookkeeping.
                let state = out.parts[shard].entry((ci, key)).or_default();
                *state.y_counts.entry(y).or_insert(0) += 1;
                state.rows.push(row_id);
            }
        }
    }
    out
}

/// What one phase-2 worker produces for its shard.
struct ShardOut {
    groups: CodeMap<GroupKey, GroupState>,
    mv_rows: Vec<RowId>,
    mv_groups: Vec<MvEvidence>,
}

/// Phase 2: merges one shard's partial group states (in chunk order, so
/// member lists end up in global row order) and derives the multi-tuple
/// violations.
fn merge_shard(
    parts: Vec<CodeMap<GroupKey, GroupState>>,
    provenance: &[(usize, usize)],
    dict: &Dictionary,
) -> ShardOut {
    let mut iter = parts.into_iter();
    let mut groups = iter.next().unwrap_or_default();
    for part in iter {
        for (key, state) in part {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().absorb(state),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(state);
                }
            }
        }
    }
    let mut mv_rows = Vec::new();
    let mut mv_groups = Vec::new();
    for ((ci, key), state) in &groups {
        if state.violates() {
            mv_rows.extend(state.rows.iter().copied());
            let (constraint, pattern) = provenance[*ci];
            mv_groups.push(MvEvidence {
                source: ConstraintRef::new(constraint, pattern),
                group_key: dict.decode_all(key.as_slice()),
                rows: state.rows.iter().copied().collect(),
            });
        }
    }
    ShardOut {
        groups,
        mv_rows,
        mv_groups,
    }
}

/// Adds integer `SV` / `MV` columns (initialised to 0) to `table` if absent,
/// and resets them to 0 if present.
pub fn ensure_flag_columns(catalog: &mut Catalog, table: &str) -> Result<()> {
    let needs_extend = {
        let relation = catalog.get(table)?;
        relation.schema().attr_id("SV").is_none()
    };
    if needs_extend {
        let relation = catalog.get(table)?;
        let extended = relation.extend_schema(
            vec![
                ecfd_relation::Attribute::new("SV", ecfd_relation::DataType::Int),
                ecfd_relation::Attribute::new("MV", ecfd_relation::DataType::Int),
            ],
            Value::Int(0),
        )?;
        catalog.create_or_replace(extended);
    } else {
        let relation = catalog.get_mut(table)?;
        let sv = relation.schema().require_attr("SV")?;
        let mv = relation.schema().require_attr("MV")?;
        for row_id in relation.row_ids() {
            relation.update_value(row_id, sv, Value::Int(0))?;
            relation.update_value(row_id, mv, Value::Int(0))?;
        }
    }
    Ok(())
}

/// Writes the report's flags into the `SV` / `MV` columns of `table`.
pub fn write_flags(catalog: &mut Catalog, table: &str, report: &DetectionReport) -> Result<()> {
    let relation = catalog.get_mut(table)?;
    let sv = relation.schema().require_attr("SV")?;
    let mv = relation.schema().require_attr("MV")?;
    for row_id in report.sv_rows.iter() {
        relation.update_value(*row_id, sv, Value::Int(1))?;
    }
    for row_id in report.mv_rows.iter() {
        relation.update_value(*row_id, mv, Value::Int(1))?;
    }
    Ok(())
}

/// Fig. 1's instance `D0` plus the two constraints of Fig. 2 — shared by the
/// tests of several modules in this crate.
#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use ecfd_core::ECfdBuilder;
    use ecfd_relation::{DataType, Tuple};

    pub fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("PN", DataType::Str)
            .attr("NM", DataType::Str)
            .attr("STR", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    pub fn d0() -> Relation {
        Relation::with_tuples(
            cust_schema(),
            [
                Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
                Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
                Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
                Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
                Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
                Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
            ],
        )
        .unwrap()
    }

    pub fn phi1() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap()
    }

    pub fn phi2() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| {
                p.constant("CT", "NYC")
                    .in_set("AC", ["212", "718", "646", "347", "917"])
            })
            .build()
            .unwrap()
    }

    /// An FD-style constraint that D0 violates with two tuples once we add a
    /// second Albany row with a different area code.
    pub fn fd_ct_ac() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;
    use ecfd_relation::Tuple;

    #[test]
    fn d0_has_the_two_violations_of_example_2_2() {
        let detector = SemanticDetector::new(&cust_schema(), &[phi1(), phi2()]).unwrap();
        let db = d0();
        let report = detector.detect(&db).unwrap();
        let rows = db.row_ids();
        assert_eq!(report.sv_rows, [rows[0], rows[3]].into_iter().collect());
        assert!(report.mv_rows.is_empty());
        assert_eq!(report.num_violations(), 2);
    }

    #[test]
    fn multi_tuple_violations_flag_the_whole_group() {
        let mut db = d0();
        // A second Albany row with a different area code violates the FD part
        // of φ1's first pattern tuple together with t1.
        db.insert(Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ]))
        .unwrap();
        let detector = SemanticDetector::new(&cust_schema(), &[phi1()]).unwrap();
        let (report, groups) = detector.detect_with_groups(&db).unwrap();
        let rows = db.row_ids();
        assert!(report.mv_rows.contains(&rows[0]));
        assert!(report.mv_rows.contains(&rows[6]));
        assert_eq!(report.mv_rows.len(), 2);
        // The Albany group of the first single-pattern constraint violates.
        let albany_groups: Vec<&GroupState> = groups
            .iter()
            .filter(|((_, key), _)| detector.decode_key(key) == vec![Value::str("Albany")])
            .map(|(_, state)| state)
            .collect();
        assert!(albany_groups.iter().any(|g| g.violates()));
        // Membership is tracked alongside the counts.
        for g in &albany_groups {
            assert_eq!(g.rows.len(), g.size());
        }
    }

    #[test]
    fn detect_and_flag_writes_sv_mv_columns() {
        let mut catalog = Catalog::new();
        catalog.create(d0()).unwrap();
        let detector = SemanticDetector::new(&cust_schema(), &[phi1(), phi2()]).unwrap();
        let report = detector.detect_and_flag(&mut catalog, "cust").unwrap();
        assert_eq!(report.num_sv(), 2);
        let read_back = DetectionReport::from_catalog(&catalog, "cust").unwrap();
        assert_eq!(read_back, report);
        // Re-running resets the flags and produces the same answer.
        let report2 = detector.detect_and_flag(&mut catalog, "cust").unwrap();
        assert_eq!(report2.sv_rows, report.sv_rows);
    }

    #[test]
    fn group_state_size_and_violation() {
        let mut dict = Dictionary::new();
        let y518: CodeVec = [dict.encode(&Value::str("518"))].into_iter().collect();
        let y718: CodeVec = [dict.encode(&Value::str("718"))].into_iter().collect();
        let mut state = GroupState::default();
        *state.y_counts.entry(y518).or_insert(0) += 2;
        assert_eq!(state.size(), 2);
        assert!(!state.violates());
        *state.y_counts.entry(y718).or_insert(0) += 1;
        assert_eq!(state.size(), 3);
        assert!(state.violates());
    }

    #[test]
    fn agreement_with_the_core_reference_semantics() {
        // The detector must agree with ecfd_core::satisfaction on every flag.
        let mut db = d0();
        db.insert(Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ]))
        .unwrap();
        let constraints = [phi1(), phi2(), fd_ct_ac()];
        let detector = SemanticDetector::new(&cust_schema(), &constraints).unwrap();
        let report = detector.detect(&db).unwrap();
        let reference = ecfd_core::satisfaction::check_all(&db, &constraints).unwrap();
        let expected = DetectionReport::from_violation_set(reference.violations(), db.len());
        assert_eq!(report.sv_rows, expected.sv_rows);
        assert_eq!(report.mv_rows, expected.mv_rows);
    }

    #[test]
    fn parallel_detection_matches_sequential_detection() {
        // Enough rows to clear the sequential-scan cutoff at Fixed(4).
        let mut db = d0();
        for i in 0..4000 {
            let city = ["Albany", "Troy", "NYC", "Colonie", "Utica"][i % 5];
            let ac = ["518", "718", "212", "519"][i % 4];
            db.insert(Tuple::from_iter([ac, "0", "Gen", "Any St.", city, "00000"]))
                .unwrap();
        }
        let constraints = [phi1(), phi2(), fd_ct_ac()];
        let sequential = SemanticDetector::new(&cust_schema(), &constraints)
            .unwrap()
            .with_parallelism(Parallelism::Fixed(1));
        let parallel = SemanticDetector::new(&cust_schema(), &constraints)
            .unwrap()
            .with_parallelism(Parallelism::Fixed(4));
        let (seq_report, seq_evidence, seq_groups) = sequential.detect_full(&db).unwrap();
        let (par_report, par_evidence, par_groups) = parallel.detect_full(&db).unwrap();
        assert_eq!(seq_report, par_report);
        assert_eq!(seq_evidence, par_evidence);
        // Group maps agree key-for-key once decoded through each dictionary.
        assert_eq!(seq_groups.len(), par_groups.len());
        let canon = |det: &SemanticDetector, groups: &GroupMap| {
            let mut out: Vec<(usize, Vec<Value>, usize, Vec<RowId>)> = groups
                .iter()
                .map(|((ci, key), state)| {
                    (*ci, det.decode_key(key), state.size(), state.rows.clone())
                })
                .collect();
            out.sort();
            out
        };
        assert_eq!(
            canon(&sequential, &seq_groups),
            canon(&parallel, &par_groups)
        );
    }

    #[test]
    fn evidence_names_the_violated_constraints_of_example_2_2() {
        use crate::evidence::ConstraintRef;
        let detector = SemanticDetector::new(&cust_schema(), &[phi1(), phi2()]).unwrap();
        let db = d0();
        let (report, evidence) = detector.detect_with_evidence(&db).unwrap();
        assert_eq!(evidence.detection_report(), report);
        let rows = db.row_ids();
        // t1 (Albany, 718) violates the second pattern tuple of φ1;
        // t4 (NYC, 100) violates the single pattern tuple of φ2.
        assert_eq!(
            evidence.sv_pairs(),
            [
                (rows[0], ConstraintRef::new(0, 1)),
                (rows[3], ConstraintRef::new(1, 0)),
            ]
            .into_iter()
            .collect()
        );
        assert!(evidence.mv_groups.is_empty());
    }

    #[test]
    fn mv_evidence_reports_the_offending_group_key() {
        let mut db = d0();
        db.insert(Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ]))
        .unwrap();
        let detector = SemanticDetector::new(&cust_schema(), &[phi1()]).unwrap();
        let (_, evidence) = detector.detect_with_evidence(&db).unwrap();
        // Albany matches both pattern tuples of φ1 → one violating group per
        // pattern tuple, same key, same two member rows.
        assert_eq!(evidence.num_groups(), 2);
        for group in &evidence.mv_groups {
            assert_eq!(group.group_key, vec![Value::str("Albany")]);
            assert_eq!(group.rows.len(), 2);
            assert_eq!(group.source.constraint, 0);
        }
    }

    #[test]
    fn frozen_detection_matches_live_detection_and_survives_later_writes() {
        let mut db = d0();
        db.insert(Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ]))
        .unwrap();
        let detector = SemanticDetector::new(&cust_schema(), &[phi1(), phi2(), fd_ct_ac()])
            .unwrap()
            .with_parallelism(Parallelism::Fixed(1));
        let (live_report, live_evidence) = detector.detect_with_evidence(&db).unwrap();

        let frozen = detector.freeze(&db, cust_schema().arity());
        // Mutate the relation *and* the shared dictionary after the freeze.
        db.insert(Tuple::from_iter([
            "999",
            "8",
            "New",
            "Post-freeze",
            "Utica",
            "13501",
        ]))
        .unwrap();
        detector.detect(&db).unwrap();

        let (frozen_report, frozen_evidence) =
            detector.detect_frozen(&frozen, &cust_schema()).unwrap();
        assert_eq!(frozen_report, live_report, "frozen scan is isolated");
        assert_eq!(frozen_evidence, live_evidence);

        // Concurrent frozen scans on clones agree at other worker counts.
        let parallel = detector.clone().with_parallelism(Parallelism::Fixed(4));
        let handle = frozen.clone();
        let out = std::thread::spawn(move || parallel.detect_frozen(&handle, &cust_schema()))
            .join()
            .unwrap()
            .unwrap();
        assert_eq!(out.0, live_report);
        assert_eq!(out.1, live_evidence);
    }

    #[test]
    fn partition_merge_matches_single_pass_detection() {
        use ecfd_relation::shard_of_value;
        let mut db = d0();
        db.insert(Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ]))
        .unwrap();
        for i in 0..40 {
            let city = ["Albany", "Troy", "NYC", "Colonie"][i % 4];
            let ac = ["518", "718", "212"][i % 3];
            db.insert(Tuple::from_iter([ac, "0", "Gen", "Any St.", city, "00000"]))
                .unwrap();
        }
        let constraints = [phi1(), phi2(), fd_ct_ac()];
        let schema = cust_schema();
        let oracle = SemanticDetector::new(&schema, &constraints).unwrap();
        let (want_report, want_evidence) = oracle.detect_with_evidence(&db).unwrap();

        // Route by AC: φ1 / fd_ct_ac group on CT, so their groups straddle
        // partitions (cross-shard); route by CT and they stay aligned. Both
        // routes must reproduce the single-pass result exactly.
        for shard_key in ["AC", "CT"] {
            let attr = schema.require_attr(shard_key).unwrap();
            for shards in [1usize, 2, 4] {
                let mut parts: Vec<Vec<(RowId, Tuple)>> = vec![Vec::new(); shards];
                for (id, t) in db.iter() {
                    parts[shard_of_value(t.value(attr), shards)].push((id, t.clone()));
                }
                let mut partials = Vec::new();
                let mut mask = None;
                for rows in parts {
                    let rel = Relation::with_rows(schema.clone(), rows).unwrap();
                    let det = SemanticDetector::new(&schema, &constraints).unwrap();
                    let aligned = det.aligned_mask(&schema, attr).unwrap();
                    let frozen = det.freeze(&rel, schema.arity());
                    partials.push(det.detect_partition(&frozen, &schema, &aligned).unwrap());
                    mask = Some(aligned);
                }
                let mask = mask.unwrap();
                // CT-routing aligns the CT-grouping constraints; AC-routing
                // leaves them open.
                assert_eq!(mask.iter().any(|&a| a), shard_key == "CT");
                let (report, evidence) = oracle.merge_partials(partials);
                assert_eq!(report, want_report, "key={shard_key} shards={shards}");
                assert_eq!(evidence, want_evidence, "key={shard_key} shards={shards}");
            }
        }
    }

    #[test]
    fn clean_data_produces_a_clean_report() {
        let db = Relation::with_tuples(
            cust_schema(),
            [
                Tuple::from_iter(["518", "1", "A", "S", "Albany", "12238"]),
                Tuple::from_iter(["212", "2", "B", "S", "NYC", "10001"]),
            ],
        )
        .unwrap();
        let detector = SemanticDetector::new(&cust_schema(), &[phi1(), phi2()]).unwrap();
        assert!(detector.detect(&db).unwrap().is_clean());
    }
}
