//! Pluggable detector backends: one trait in front of the three detection
//! strategies of the crate.
//!
//! The paper presents three ways to keep violation flags correct — a full
//! SQL pass (`BATCHDETECT`), incremental maintenance (`INCDETECT`) and the
//! reproduction's native semantic oracle. Callers that only want *the flags
//! kept right* should not have to care which one runs; [`DetectorBackend`]
//! gives them a single interface:
//!
//! * [`DetectorBackend::detect`] — a full detection pass over the backend's
//!   catalog table, returning the flag-level [`DetectionReport`] together
//!   with the attributing [`EvidenceReport`];
//! * [`DetectorBackend::apply`] — apply a base-schema [`Delta`] to the table
//!   and return the post-update report/evidence, maintaining whatever state
//!   the backend keeps (only [`IncrementalBackend`] keeps any);
//! * [`DetectorBackend::invalidate`] — drop maintained state after the table
//!   was mutated behind the backend's back.
//!
//! All three implementations are constructed from one compiled
//! [`ecfd_core::ConstraintSet`], so the validate/normalize/split work happens
//! once per registration, not once per backend. The differential contract —
//! every backend produces the same report and (normalized) evidence on the
//! same data — is asserted by this module's tests and by the workspace-level
//! differential suite.

use crate::batch::BatchDetector;
use crate::evidence::EvidenceReport;
use crate::incremental::IncrementalDetector;
use crate::parallel::Parallelism;
use crate::report::DetectionReport;
use crate::semantic::{ensure_flag_columns, write_flags, SemanticDetector};
use crate::Result;
use ecfd_core::ConstraintSet;
use ecfd_relation::{Catalog, Delta, RowId, Tuple, Value};
use std::fmt;

/// Names one of the three detection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendKind {
    /// The native index-based detector (`SemanticDetector`).
    Semantic,
    /// The SQL-based batch detector (`BatchDetector`, the paper's
    /// `BATCHDETECT`).
    Sql,
    /// The incremental maintainer (`IncrementalDetector`, the paper's
    /// `INCDETECT`).
    Incremental,
    /// The compiled-plan executor (`ecfd_plan::PlanBackend`): constraints are
    /// lowered once into an explicit scan/group/flag plan and executed
    /// against a pluggable storage driver.
    Plan,
}

impl BackendKind {
    /// All kinds, in a stable order (useful for differential sweeps).
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Semantic,
        BackendKind::Sql,
        BackendKind::Incremental,
        BackendKind::Plan,
    ];

    /// The lowercase name, as used in `detect.pass.ns{backend=…}` metric
    /// labels and by [`fmt::Display`].
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Semantic => "semantic",
            BackendKind::Sql => "sql",
            BackendKind::Incremental => "incremental",
            BackendKind::Plan => "plan",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A detection strategy hidden behind a uniform detect/apply interface.
///
/// Implementations operate on one named table of a [`Catalog`] (fixed at
/// construction) and leave the table's `SV` / `MV` flag columns populated, so
/// switching backends mid-stream keeps the catalog state comparable.
pub trait DetectorBackend {
    /// Which strategy this backend runs.
    fn kind(&self) -> BackendKind;

    /// The catalog table the backend detects on.
    fn table(&self) -> &str;

    /// Runs a full detection pass, returning flags and evidence. The table's
    /// `SV` / `MV` columns are (re)written.
    fn detect(&mut self, catalog: &mut Catalog) -> Result<(DetectionReport, EvidenceReport)>;

    /// Applies a batch of base-schema updates to the table and returns the
    /// post-update flags and evidence.
    fn apply(
        &mut self,
        catalog: &mut Catalog,
        delta: &Delta,
    ) -> Result<(DetectionReport, EvidenceReport)>;

    /// Drops any maintained state. Call after the table was mutated outside
    /// this backend; the next [`DetectorBackend::detect`] or
    /// [`DetectorBackend::apply`] rebuilds from the current table contents.
    fn invalidate(&mut self) {}
}

/// Applies a base-schema delta to a stored table that may carry extra
/// detector-managed columns (the `SV` / `MV` flags): deletions match rows by
/// their first `base_arity` values (all duplicates go, processed in victim
/// order), insertions are zero-extended to the stored arity. Mirrors the
/// mutation order of [`IncrementalDetector::apply`] so that row ids stay
/// identical across backends fed the same delta sequence.
pub fn apply_base_delta(
    catalog: &mut Catalog,
    table: &str,
    base_arity: usize,
    delta: &Delta,
) -> Result<()> {
    let relation = catalog.get_mut(table)?;
    let stored_arity = relation.schema().arity();
    for victim in &delta.deletions {
        let matching: Vec<RowId> = relation
            .iter()
            .filter(|(_, t)| &t.values()[..base_arity] == victim.values())
            .map(|(id, _)| id)
            .collect();
        for id in matching {
            relation.delete(id)?;
        }
    }
    for ins in &delta.insertions {
        let mut values = ins.values().to_vec();
        values.resize(stored_arity, Value::Int(0));
        relation.insert(Tuple::new(values))?;
    }
    Ok(())
}

/// The native detector as a backend: stateless between calls, every `detect`
/// is a fresh scan.
#[derive(Debug, Clone)]
pub struct SemanticBackend {
    detector: SemanticDetector,
    table: String,
    base_arity: usize,
}

impl SemanticBackend {
    /// Builds the backend from a compiled constraint set.
    pub fn from_set(set: &ConstraintSet) -> Self {
        SemanticBackend {
            detector: SemanticDetector::from_set(set),
            table: set.schema().name().to_string(),
            base_arity: set.schema().arity(),
        }
    }

    /// Sets the worker fan-out of subsequent detection passes.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.detector.set_parallelism(parallelism);
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &SemanticDetector {
        &self.detector
    }
}

impl DetectorBackend for SemanticBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Semantic
    }

    fn table(&self) -> &str {
        &self.table
    }

    fn detect(&mut self, catalog: &mut Catalog) -> Result<(DetectionReport, EvidenceReport)> {
        ensure_flag_columns(catalog, &self.table)?;
        let (report, evidence) = {
            let relation = catalog.get(&self.table)?;
            self.detector.detect_with_evidence(relation)?
        };
        write_flags(catalog, &self.table, &report)?;
        Ok((report, evidence))
    }

    fn apply(
        &mut self,
        catalog: &mut Catalog,
        delta: &Delta,
    ) -> Result<(DetectionReport, EvidenceReport)> {
        apply_base_delta(catalog, &self.table, self.base_arity, delta)?;
        self.detect(catalog)
    }
}

/// The SQL batch detector as a backend: stateless between calls, every
/// `detect` replays the fixed pair of detection statements.
#[derive(Debug, Clone)]
pub struct SqlBackend {
    detector: BatchDetector,
    table: String,
    base_arity: usize,
}

impl SqlBackend {
    /// Builds the backend from a compiled constraint set. Fails when the set
    /// is outside the SQL encoding's envelope (non-string constrained
    /// attributes) — the other two backends have no such restriction.
    pub fn from_set(set: &ConstraintSet) -> Result<Self> {
        Ok(SqlBackend {
            detector: BatchDetector::from_set(set)?,
            table: set.schema().name().to_string(),
            base_arity: set.schema().arity(),
        })
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &BatchDetector {
        &self.detector
    }
}

impl DetectorBackend for SqlBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sql
    }

    fn table(&self) -> &str {
        &self.table
    }

    fn detect(&mut self, catalog: &mut Catalog) -> Result<(DetectionReport, EvidenceReport)> {
        self.detector.detect_with_evidence(catalog)
    }

    fn apply(
        &mut self,
        catalog: &mut Catalog,
        delta: &Delta,
    ) -> Result<(DetectionReport, EvidenceReport)> {
        apply_base_delta(catalog, &self.table, self.base_arity, delta)?;
        self.detect(catalog)
    }
}

/// The incremental maintainer as a backend: the first `detect`/`apply` seeds
/// the auxiliary group state with a full pass, subsequent `apply` calls touch
/// only the affected tuples and groups.
#[derive(Debug, Clone)]
pub struct IncrementalBackend {
    set: ConstraintSet,
    state: Option<IncrementalDetector>,
    parallelism: Parallelism,
}

impl IncrementalBackend {
    /// Builds the backend from a compiled constraint set. No work happens
    /// until the first `detect` / `apply` call.
    pub fn from_set(set: &ConstraintSet) -> Self {
        IncrementalBackend {
            set: set.clone(),
            state: None,
            parallelism: Parallelism::default(),
        }
    }

    /// Sets the worker fan-out used by the seeding detection pass (the
    /// per-delta maintenance itself touches only affected tuples and stays
    /// sequential).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    fn seed(&self, catalog: &mut Catalog) -> Result<IncrementalDetector> {
        let semantic = SemanticDetector::from_set(&self.set).with_parallelism(self.parallelism);
        IncrementalDetector::initialize_from(self.set.schema(), semantic, catalog)
    }

    /// The maintained detector, if seeded.
    pub fn detector(&self) -> Option<&IncrementalDetector> {
        self.state.as_ref()
    }

    /// Whether the auxiliary state is warm (an `apply` will be incremental
    /// rather than trigger a full seeding pass).
    pub fn is_warm(&self) -> bool {
        self.state.is_some()
    }

    /// Hands the maintained detector to the caller (leaving this backend
    /// cold), e.g. so a repair loop can drive it directly. Pair with
    /// [`IncrementalBackend::put_state`] to hand it back.
    pub fn take_state(&mut self) -> Option<IncrementalDetector> {
        self.state.take()
    }

    /// Restores a detector previously obtained via
    /// [`IncrementalBackend::take_state`]. The caller is responsible for the
    /// state still matching the table's contents.
    pub fn put_state(&mut self, state: IncrementalDetector) {
        self.state = Some(state);
    }

    fn read_out(
        &self,
        catalog: &Catalog,
        state: &IncrementalDetector,
    ) -> Result<(DetectionReport, EvidenceReport)> {
        Ok((state.report(catalog)?, state.evidence(catalog)?))
    }
}

impl DetectorBackend for IncrementalBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Incremental
    }

    fn table(&self) -> &str {
        self.set.schema().name()
    }

    fn detect(&mut self, catalog: &mut Catalog) -> Result<(DetectionReport, EvidenceReport)> {
        let state = self.seed(catalog)?;
        let out = self.read_out(catalog, &state)?;
        self.state = Some(state);
        Ok(out)
    }

    fn apply(
        &mut self,
        catalog: &mut Catalog,
        delta: &Delta,
    ) -> Result<(DetectionReport, EvidenceReport)> {
        if self.state.is_none() {
            self.state = Some(self.seed(catalog)?);
        }
        let state = self.state.as_mut().expect("seeded above");
        state.apply(catalog, delta)?;
        let state = self.state.as_ref().expect("seeded above");
        self.read_out(catalog, state)
    }

    fn invalidate(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::fixtures::{cust_schema, d0, fd_ct_ac, phi1, phi2};

    fn backends(set: &ConstraintSet) -> Vec<Box<dyn DetectorBackend>> {
        vec![
            Box::new(SemanticBackend::from_set(set)),
            Box::new(SqlBackend::from_set(set).unwrap()),
            Box::new(IncrementalBackend::from_set(set)),
        ]
    }

    fn catalog_with_d0() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.create(d0()).unwrap();
        catalog
    }

    #[test]
    fn all_backends_agree_through_the_trait() {
        let set = ConstraintSet::compile(&cust_schema(), &[phi1(), phi2(), fd_ct_ac()]).unwrap();
        let mut outputs = Vec::new();
        for mut backend in backends(&set) {
            let mut catalog = catalog_with_d0();
            assert_eq!(backend.table(), "cust");
            let (report, evidence) = backend.detect(&mut catalog).unwrap();
            assert_eq!(evidence.detection_report(), report);
            outputs.push((backend.kind(), report, evidence.normalized()));
        }
        for pair in outputs.windows(2) {
            assert_eq!(pair[0].1, pair[1].1, "{} vs {}", pair[0].0, pair[1].0);
            assert_eq!(pair[0].2, pair[1].2, "{} vs {}", pair[0].0, pair[1].0);
        }
    }

    #[test]
    fn all_backends_agree_after_a_mixed_delta() {
        let set = ConstraintSet::compile(&cust_schema(), &[phi1(), phi2()]).unwrap();
        let delta = Delta {
            insertions: vec![
                Tuple::from_iter(["519", "7", "Zoe", "Pine St.", "Albany", "12239"]),
                Tuple::from_iter(["999", "8", "Sam", "Bay Rd.", "NYC", "10002"]),
            ],
            deletions: vec![Tuple::from_iter([
                "100", "1111111", "Rick", "8th Ave.", "NYC", "10001",
            ])],
        };
        let mut outputs = Vec::new();
        for mut backend in backends(&set) {
            let mut catalog = catalog_with_d0();
            backend.detect(&mut catalog).unwrap();
            let (report, evidence) = backend.apply(&mut catalog, &delta).unwrap();
            outputs.push((backend.kind(), report, evidence.normalized()));
        }
        for pair in outputs.windows(2) {
            assert_eq!(pair[0].1, pair[1].1, "{} vs {}", pair[0].0, pair[1].0);
            assert_eq!(pair[0].2, pair[1].2, "{} vs {}", pair[0].0, pair[1].0);
        }
    }

    #[test]
    fn apply_without_detect_seeds_the_incremental_state() {
        let set = ConstraintSet::compile(&cust_schema(), &[phi1()]).unwrap();
        let mut backend = IncrementalBackend::from_set(&set);
        assert!(!backend.is_warm());
        let mut catalog = catalog_with_d0();
        let delta = Delta::insert_only(vec![Tuple::from_iter([
            "519", "7", "Zoe", "Pine St.", "Albany", "12239",
        ])]);
        let (report, _) = backend.apply(&mut catalog, &delta).unwrap();
        assert!(backend.is_warm());
        assert_eq!(report.num_mv(), 2, "the two Albany rows now conflict");

        backend.invalidate();
        assert!(!backend.is_warm());
        // A fresh detect after invalidation reproduces the same picture.
        let (after, _) = backend.detect(&mut catalog).unwrap();
        assert_eq!(after, report);
    }

    #[test]
    fn sql_backend_reports_unsupported_schemas() {
        use ecfd_core::ECfdBuilder;
        use ecfd_relation::DataType;
        let schema = ecfd_relation::Schema::builder("t")
            .attr("A", DataType::Int)
            .attr("B", DataType::Str)
            .build();
        let phi = ECfdBuilder::new("t")
            .lhs(["A"])
            .fd_rhs(["B"])
            .pattern(|p| p)
            .build()
            .unwrap();
        let set = ConstraintSet::compile(&schema, &[phi]).unwrap();
        assert!(SqlBackend::from_set(&set).is_err());
        // The semantic backend handles the same set fine.
        let mut catalog = Catalog::new();
        catalog
            .create(
                ecfd_relation::Relation::with_tuples(
                    schema,
                    [Tuple::new(vec![Value::Int(1), Value::str("x")])],
                )
                .unwrap(),
            )
            .unwrap();
        let (report, _) = SemanticBackend::from_set(&set)
            .detect(&mut catalog)
            .unwrap();
        assert!(report.is_clean());
    }
}
