//! Generation of the fixed pair of detection statements (Fig. 4).
//!
//! Given the relation schema `R` and the installed encoding, this module
//! produces SQL *text*:
//!
//! * [`single_violation_update`] — the `Q_sv`-driven statement: one `UPDATE`
//!   that sets `SV = 1` for every tuple that matches some constraint's LHS
//!   pattern but fails its RHS pattern. The membership tests `value ∈ S` /
//!   `value ∉ S` become `EXISTS` / `NOT EXISTS` against the per-attribute
//!   value tables, exactly as in the paper.
//! * [`aux_insert`] — the `Q_mv` statement: the `macro` derived table blanks
//!   out (with `'@'`) every attribute irrelevant to the embedded FD using
//!   `CASE`, `SELECT DISTINCT` collapses duplicate `(X, Y)` combinations, and
//!   a `GROUP BY … HAVING COUNT(*) > 1` finds the groups with more than one
//!   distinct `Y` value. The offending `(CID, X-values)` groups are inserted
//!   into the auxiliary relation.
//! * [`multi_violation_update`] — flags `MV = 1` for every tuple matching an
//!   offending group in the auxiliary relation.
//!
//! The *number* and *shape* of these statements is independent of the number
//! of eCFDs, of the number of pattern tuples, and of the size of the sets in
//! the pattern cells — those only influence the contents of the encoding
//! relations. That is the paper's central systems claim and it is asserted by
//! the tests below.

use crate::encode::{
    enc_left_col, enc_right_col, value_table_left, value_table_right, AUX_TABLE, BLANK, ENC_TABLE,
};
use ecfd_relation::Schema;

/// Name of the auxiliary-table column holding the (possibly blanked) value of
/// attribute `attr` for the violating group.
pub fn aux_col(attr: &str) -> String {
    format!("{attr}_X")
}

/// The `EXISTS (...)` membership test: does the value-table for `attr` (on the
/// given side) contain the value of `<data_ref>.<attr>` under constraint
/// `c.CID`?
fn membership(data_ref: &str, attr: &str, right: bool) -> String {
    let table = if right {
        value_table_right(attr)
    } else {
        value_table_left(attr)
    };
    format!(
        "EXISTS (SELECT x.VAL FROM {table} x WHERE x.CID = c.CID AND x.VAL = {data_ref}.{attr})"
    )
}

/// The per-attribute LHS match condition: the data value satisfies the cell
/// of `attr` in `X` (codes 0 and 3 — absent and wildcard — are trivially
/// satisfied, code 1 requires membership, code 2 requires non-membership).
fn lhs_attr_condition(data_ref: &str, attr: &str) -> String {
    let code = enc_left_col(attr);
    let member = membership(data_ref, attr, false);
    format!("(c.{code} <> 1 OR {member}) AND (c.{code} <> 2 OR NOT {member})")
}

/// The conjunction of LHS match conditions over every attribute of `R`.
fn lhs_match(schema: &Schema, data_ref: &str) -> String {
    schema
        .attributes()
        .iter()
        .map(|a| lhs_attr_condition(data_ref, &a.name))
        .collect::<Vec<_>>()
        .join(" AND ")
}

/// The per-attribute RHS *violation* condition. `ABS` folds the `Y` (positive)
/// and `Yp` (negative) codes together, as in the paper.
fn rhs_attr_violation(data_ref: &str, attr: &str) -> String {
    let code = enc_right_col(attr);
    let member = membership(data_ref, attr, true);
    format!("(ABS(c.{code}) = 1 AND NOT {member}) OR (ABS(c.{code}) = 2 AND {member})")
}

/// The disjunction of RHS violation conditions over every attribute of `R`.
fn rhs_violation(schema: &Schema, data_ref: &str) -> String {
    schema
        .attributes()
        .iter()
        .map(|a| rhs_attr_violation(data_ref, &a.name))
        .collect::<Vec<_>>()
        .join(" OR ")
}

/// The `Q_sv` statement: flags single-tuple (pattern-constraint) violations.
pub fn single_violation_update(schema: &Schema, table: &str) -> String {
    format!(
        "UPDATE {table} SET SV = 1 WHERE EXISTS (SELECT c.CID FROM {ENC_TABLE} c WHERE {lhs} AND ({rhs}))",
        lhs = lhs_match(schema, table),
        rhs = rhs_violation(schema, table),
    )
}

/// The SELECT-only form of `Q_sv` (Fig. 4 top): returns the violating tuples
/// themselves. Used by the incremental detector on the `ΔD⁺` staging table
/// and handy for debugging.
pub fn single_violation_select(schema: &Schema, table: &str) -> String {
    let cols: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| format!("t.{}", a.name))
        .collect();
    format!(
        "SELECT DISTINCT {cols} FROM {table} t, {ENC_TABLE} c WHERE {lhs} AND ({rhs})",
        cols = cols.join(", "),
        lhs = lhs_match(schema, "t"),
        rhs = rhs_violation(schema, "t"),
    )
}

/// The `macro` derived table of Fig. 4 (bottom): one row per distinct
/// `(CID, X-projection, Y-projection)` of the tuples matching each
/// constraint's LHS pattern, with irrelevant attributes blanked to `'@'`.
fn macro_query(schema: &Schema, table: &str) -> String {
    let mut projections = vec!["c.CID AS CID".to_string()];
    for a in schema.attributes() {
        let name = &a.name;
        projections.push(format!(
            "(CASE WHEN c.{lcode} > 0 THEN t.{name} ELSE '{BLANK}' END) AS {xcol}",
            lcode = enc_left_col(name),
            xcol = aux_col(name),
        ));
        projections.push(format!(
            "(CASE WHEN c.{rcode} > 0 THEN t.{name} ELSE '{BLANK}' END) AS {name}_Y",
            rcode = enc_right_col(name),
        ));
    }
    format!(
        "SELECT DISTINCT {projections} FROM {table} t, {ENC_TABLE} c WHERE {lhs}",
        projections = projections.join(", "),
        lhs = lhs_match(schema, "t"),
    )
}

/// The `Q_mv` statement: materialises the offending `(CID, X-values)` groups —
/// those with more than one distinct `Y` projection — into the auxiliary
/// relation.
pub fn aux_insert(schema: &Schema, table: &str) -> String {
    let group_cols: Vec<String> = std::iter::once("m.CID".to_string())
        .chain(
            schema
                .attributes()
                .iter()
                .map(|a| format!("m.{}", aux_col(&a.name))),
        )
        .collect();
    format!(
        "INSERT INTO {AUX_TABLE} SELECT {select} FROM ({macro_q}) m GROUP BY {group} HAVING COUNT(*) > 1",
        select = group_cols.join(", "),
        macro_q = macro_query(schema, table),
        group = group_cols.join(", "),
    )
}

/// The statement that flags `MV = 1` for every tuple of `table` matching an
/// offending group recorded in the auxiliary relation.
pub fn multi_violation_update(schema: &Schema, table: &str) -> String {
    let match_conditions: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| {
            format!(
                "(a.{col} = '{BLANK}' OR a.{col} = {table}.{name})",
                col = aux_col(&a.name),
                name = a.name,
            )
        })
        .collect();
    format!(
        "UPDATE {table} SET MV = 1 WHERE EXISTS (SELECT a.CID FROM {AUX_TABLE} a WHERE {cond})",
        cond = match_conditions.join(" AND "),
    )
}

/// The statement that clears `MV` for tuples no longer matching any offending
/// group (used after deletions by the incremental detector).
pub fn multi_violation_clear(schema: &Schema, table: &str) -> String {
    let match_conditions: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| {
            format!(
                "(a.{col} = '{BLANK}' OR a.{col} = {table}.{name})",
                col = aux_col(&a.name),
                name = a.name,
            )
        })
        .collect();
    format!(
        "UPDATE {table} SET MV = 0 WHERE MV = 1 AND NOT EXISTS (SELECT a.CID FROM {AUX_TABLE} a WHERE {cond})",
        cond = match_conditions.join(" AND "),
    )
}

/// `CREATE TABLE` statement for the auxiliary relation.
pub fn create_aux_table(schema: &Schema) -> String {
    let mut cols = vec!["CID INT".to_string()];
    for a in schema.attributes() {
        cols.push(format!("{} STR", aux_col(&a.name)));
    }
    format!("CREATE TABLE {AUX_TABLE} ({})", cols.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::DataType;

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    fn wide_schema(n: usize) -> Schema {
        let mut b = Schema::builder("wide");
        for i in 0..n {
            b = b.attr(format!("A{i}"), DataType::Str);
        }
        b.build()
    }

    #[test]
    fn sv_update_uses_exists_and_abs_like_the_paper() {
        let sql = single_violation_update(&cust_schema(), "cust");
        assert!(sql.starts_with("UPDATE cust SET SV = 1"));
        assert!(sql.contains("EXISTS (SELECT x.VAL FROM ecfd_t_CT_L x"));
        assert!(sql.contains("NOT EXISTS"));
        assert!(sql.contains("ABS(c.AC_R) = 1"));
        assert!(sql.contains("ABS(c.AC_R) = 2"));
        // Membership tests only touch the encoding tables, never nest another
        // scan of the data table.
        assert_eq!(sql.matches("FROM cust").count(), 0);
    }

    #[test]
    fn mv_pipeline_blanks_with_case_and_groups_by_cid_and_x() {
        let schema = cust_schema();
        let sql = aux_insert(&schema, "cust");
        assert!(sql.contains("CASE WHEN c.CT_L > 0 THEN t.CT ELSE '@' END"));
        assert!(sql.contains("CASE WHEN c.AC_R > 0 THEN t.AC ELSE '@' END"));
        assert!(sql.contains("GROUP BY m.CID, m.AC_X, m.CT_X, m.ZIP_X"));
        assert!(sql.contains("HAVING COUNT(*) > 1"));
        assert!(sql.contains("SELECT DISTINCT"));

        let update = multi_violation_update(&schema, "cust");
        assert!(update.contains("a.CT_X = '@' OR a.CT_X = cust.CT"));
        let clear = multi_violation_clear(&schema, "cust");
        assert!(clear.contains("MV = 0"));
        assert!(clear.contains("NOT EXISTS"));
    }

    #[test]
    fn statement_count_and_shape_are_independent_of_the_constraints() {
        // The generated SQL depends only on the schema R and the table name —
        // exactly the paper's "fixed number of SQL queries, no matter how many
        // eCFDs are in Σ".
        let schema = cust_schema();
        let a = single_violation_update(&schema, "cust");
        let b = single_violation_update(&schema, "cust");
        assert_eq!(a, b);
        // Query size grows with the number of attributes of R (each attribute
        // contributes a fixed number of conditions), not with |Σ| or |Tp|.
        let narrow = single_violation_update(&wide_schema(4), "wide").len();
        let wide = single_violation_update(&wide_schema(8), "wide").len();
        assert!(wide < narrow * 3, "growth should be linear in |attr(R)|");
    }

    #[test]
    fn generated_sql_parses_in_the_engine() {
        let schema = cust_schema();
        for sql in [
            single_violation_update(&schema, "cust"),
            single_violation_select(&schema, "cust"),
            aux_insert(&schema, "cust"),
            multi_violation_update(&schema, "cust"),
            multi_violation_clear(&schema, "cust"),
            create_aux_table(&schema),
        ] {
            ecfd_engine::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("generated SQL must parse: {e}\n{sql}"));
        }
    }

    #[test]
    fn aux_table_ddl_covers_every_attribute() {
        let sql = create_aux_table(&cust_schema());
        assert_eq!(
            sql,
            "CREATE TABLE ecfd_aux (CID INT, AC_X STR, CT_X STR, ZIP_X STR)"
        );
    }
}
