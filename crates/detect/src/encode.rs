//! Encoding eCFDs as data relations (Fig. 3 of the paper).
//!
//! The key idea behind the fixed-query detection technique is to treat the
//! pattern tableaux as *data*, not meta-data. Every (single-pattern)
//! constraint becomes one row of an `enc` relation whose schema depends only
//! on the schema `R` being constrained: a constraint id plus, for every
//! attribute `A` of `R`, a "left" code `A_L` and a "right" code `A_R`:
//!
//! | code | meaning (left / positive right)             |
//! |------|---------------------------------------------|
//! | 0    | `A` does not occur on that side             |
//! | 1    | the cell is a positive set `S`              |
//! | 2    | the cell is a complement set `S̄`            |
//! | 3    | the cell is the wildcard `_`                |
//!
//! Right-hand codes are negated (−1, −2, −3) when `A ∈ Yp` rather than `Y`,
//! so the multi-tuple query can restrict itself to the embedded FD by testing
//! `A_R > 0` while the single-tuple query uses `ABS(A_R)`.
//!
//! The set elements themselves go into one binary relation per attribute and
//! side (`T_{A_L}`, `T_{A_R}`), holding `(CID, value)` pairs. The whole
//! encoding is linear in the size of the constraints.

use crate::{DetectError, Result};
use ecfd_core::normalize::{split_patterns, SinglePattern};
use ecfd_core::{ECfd, PatternValue};
use ecfd_relation::{Catalog, DataType, Relation, Schema, Tuple, Value};

/// Name of the `enc` relation installed in the catalog.
pub const ENC_TABLE: &str = "ecfd_enc";
/// Name of the auxiliary relation maintained by the detectors.
pub const AUX_TABLE: &str = "ecfd_aux";
/// Name of the staging relation used by the incremental detector for `ΔD⁺`.
pub const STAGING_TABLE: &str = "ecfd_delta_ins";
/// The blank marker used when an attribute is irrelevant to an embedded FD —
/// "a constant '@' not appearing in any database" (Section V-A).
pub const BLANK: &str = "@";

/// Column name of the left code for attribute `attr` in the `enc` relation.
pub fn enc_left_col(attr: &str) -> String {
    format!("{attr}_L")
}

/// Column name of the right code for attribute `attr` in the `enc` relation.
pub fn enc_right_col(attr: &str) -> String {
    format!("{attr}_R")
}

/// Name of the value table holding left-side set elements for `attr`.
pub fn value_table_left(attr: &str) -> String {
    format!("ecfd_t_{attr}_L")
}

/// Name of the value table holding right-side set elements for `attr`.
pub fn value_table_right(attr: &str) -> String {
    format!("ecfd_t_{attr}_R")
}

/// The data-relation encoding of a set of eCFDs against a fixed schema.
#[derive(Debug, Clone)]
pub struct Encoding {
    schema: Schema,
    singles: Vec<SinglePattern>,
    enc: Relation,
    value_tables: Vec<Relation>,
}

impl Encoding {
    /// Builds the encoding for `ecfds` on `schema`.
    ///
    /// Constraints are first split into single-pattern constraints
    /// (one `CID` per pattern tuple, as the paper assumes); `CID` values start
    /// at 1 and follow the order of the input constraints.
    ///
    /// Returns [`DetectError::Unsupported`] when a constrained attribute is
    /// not string-typed: the SQL encoding stores blanked values (`'@'`) and
    /// set elements in homogeneous string columns, which matches the paper's
    /// all-string `cust` schema. (The semantic detector has no such
    /// restriction.)
    pub fn build(schema: &Schema, ecfds: &[ECfd]) -> Result<Self> {
        for ecfd in ecfds {
            ecfd.validate_against(schema)?;
        }
        Self::from_singles(schema, split_patterns(ecfds))
    }

    /// Builds the encoding from pre-split single-pattern constraints (the
    /// shape a compiled [`ecfd_core::ConstraintSet`] holds), skipping the
    /// per-constraint schema validation that [`Encoding::build`] performs.
    /// The string-typedness requirement of the SQL encoding is still checked.
    pub fn from_singles(schema: &Schema, singles: Vec<SinglePattern>) -> Result<Self> {
        for single in &singles {
            for attr in single.ecfd.attributes() {
                let id = schema.attr_id(attr).ok_or_else(|| {
                    DetectError::Unsupported(format!("attribute `{attr}` missing from schema"))
                })?;
                let ty = schema.attribute(id).expect("id just resolved").data_type();
                if ty != DataType::Str {
                    return Err(DetectError::Unsupported(format!(
                        "attribute `{attr}` has type {ty} but the SQL encoding requires string attributes"
                    )));
                }
            }
        }

        // enc relation schema: CID + (A_L, A_R) per attribute of R.
        let mut enc_builder = Schema::builder(ENC_TABLE).attr("CID", DataType::Int);
        for attr in schema.attributes() {
            enc_builder = enc_builder
                .attr(enc_left_col(&attr.name), DataType::Int)
                .attr(enc_right_col(&attr.name), DataType::Int);
        }
        let mut enc = Relation::new(enc_builder.build());

        // Value tables: (CID, VAL) per attribute and side.
        let mut value_tables: Vec<Relation> = Vec::new();
        for attr in schema.attributes() {
            for table_name in [value_table_left(&attr.name), value_table_right(&attr.name)] {
                let s = Schema::builder(table_name)
                    .attr("CID", DataType::Int)
                    .attr("VAL", DataType::Str)
                    .build();
                value_tables.push(Relation::new(s));
            }
        }
        let value_table_index = |attr_idx: usize, right: bool| attr_idx * 2 + usize::from(right);

        for (i, single) in singles.iter().enumerate() {
            let cid = (i + 1) as i64;
            let ecfd = &single.ecfd;
            let tp = &ecfd.tableau()[0];
            let mut row = vec![Value::Null; enc.schema().arity()];
            row[0] = Value::Int(cid);
            // Default every code to 0 ("not present on this side").
            for slot in row.iter_mut().skip(1) {
                *slot = Value::Int(0);
            }

            // Left-hand side.
            for (attr, cell) in ecfd.lhs().iter().zip(&tp.lhs) {
                let attr_idx = schema.attr_id(attr).expect("validated").index();
                let col = enc
                    .schema()
                    .attr_id(&enc_left_col(attr))
                    .expect("enc schema covers all attributes");
                row[col.index()] = Value::Int(cell_code(cell));
                push_values(
                    &mut value_tables[value_table_index(attr_idx, false)],
                    cid,
                    cell,
                )?;
            }
            // Right-hand side: Y attributes use positive codes, Yp negative.
            for (pos, (attr, cell)) in ecfd.rhs_attrs().iter().zip(&tp.rhs).enumerate() {
                let in_yp = pos >= ecfd.fd_rhs().len();
                let attr_idx = schema.attr_id(attr).expect("validated").index();
                let col = enc
                    .schema()
                    .attr_id(&enc_right_col(attr))
                    .expect("enc schema covers all attributes");
                let code = cell_code(cell);
                row[col.index()] = Value::Int(if in_yp { -code } else { code });
                push_values(
                    &mut value_tables[value_table_index(attr_idx, true)],
                    cid,
                    cell,
                )?;
            }
            enc.insert(Tuple::new(row))?;
        }

        Ok(Encoding {
            schema: schema.clone(),
            singles,
            enc,
            value_tables,
        })
    }

    /// The schema of the constrained relation `R`.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The single-pattern constraints, in `CID` order (`CID = index + 1`).
    pub fn singles(&self) -> &[SinglePattern] {
        &self.singles
    }

    /// Number of single-pattern constraints (= number of `enc` rows).
    pub fn num_patterns(&self) -> usize {
        self.singles.len()
    }

    /// The populated `enc` relation.
    pub fn enc(&self) -> &Relation {
        &self.enc
    }

    /// The populated value tables (two per attribute of `R`).
    pub fn value_tables(&self) -> &[Relation] {
        &self.value_tables
    }

    /// Total number of rows across `enc` and the value tables — the paper
    /// notes the encoding is linear in the size of the constraints.
    pub fn total_encoding_rows(&self) -> usize {
        self.enc.len() + self.value_tables.iter().map(Relation::len).sum::<usize>()
    }

    /// Installs (or replaces) the encoding relations in a catalog.
    pub fn install(&self, catalog: &mut Catalog) {
        catalog.create_or_replace(self.enc.clone());
        for table in &self.value_tables {
            catalog.create_or_replace(table.clone());
        }
    }

    /// Removes the encoding relations from a catalog (ignoring missing ones).
    pub fn uninstall(&self, catalog: &mut Catalog) {
        let _ = catalog.drop_table(ENC_TABLE);
        for table in &self.value_tables {
            let _ = catalog.drop_table(table.name());
        }
    }

    /// Maps a `CID` back to `(source constraint index, pattern index)`.
    pub fn provenance(&self, cid: i64) -> Option<(usize, usize)> {
        let idx = usize::try_from(cid).ok()?.checked_sub(1)?;
        self.singles
            .get(idx)
            .map(|s| (s.source_constraint, s.source_pattern))
    }
}

/// Integer code of a pattern cell (paper's 1 / 2 / 3 convention).
fn cell_code(cell: &PatternValue) -> i64 {
    match cell {
        PatternValue::In(_) => 1,
        PatternValue::NotIn(_) => 2,
        PatternValue::Wildcard => 3,
    }
}

fn push_values(table: &mut Relation, cid: i64, cell: &PatternValue) -> Result<()> {
    for value in cell.constants() {
        let text = match value {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        };
        table.insert(Tuple::new(vec![Value::Int(cid), Value::Str(text)]))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_core::ECfdBuilder;
    use ecfd_relation::AttrId;

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("PN", DataType::Str)
            .attr("NM", DataType::Str)
            .attr("STR", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    fn phi1() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap()
    }

    fn phi2() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| {
                p.constant("CT", "NYC")
                    .in_set("AC", ["212", "718", "646", "347", "917"])
            })
            .build()
            .unwrap()
    }

    fn get_enc(enc: &Relation, cid: i64, col: &str) -> Value {
        let cid_col = enc.schema().attr_id("CID").unwrap();
        let target = enc.schema().attr_id(col).unwrap();
        enc.tuples()
            .find(|t| t[cid_col] == Value::Int(cid))
            .map(|t| t[target].clone())
            .unwrap()
    }

    #[test]
    fn figure_3_codes_are_reproduced() {
        // Fig. 3 encodes φ1 (two pattern tuples → CID 1, 2) and φ2 (CID 3):
        //   CID 1: CT_L = 2 (complement set), AC_R = 3 (wildcard in Y)
        //   CID 2: CT_L = 1 (set),            AC_R = 1 (set in Y)
        //   CID 3: CT_L = 1 (set),            AC_R = -1 (set in Yp)
        let encoding = Encoding::build(&cust_schema(), &[phi1(), phi2()]).unwrap();
        assert_eq!(encoding.num_patterns(), 3);
        let enc = encoding.enc();
        assert_eq!(get_enc(enc, 1, "CT_L"), Value::Int(2));
        assert_eq!(get_enc(enc, 1, "AC_R"), Value::Int(3));
        assert_eq!(get_enc(enc, 2, "CT_L"), Value::Int(1));
        assert_eq!(get_enc(enc, 2, "AC_R"), Value::Int(1));
        assert_eq!(get_enc(enc, 3, "CT_L"), Value::Int(1));
        assert_eq!(get_enc(enc, 3, "AC_R"), Value::Int(-1));
        // Attributes not mentioned carry code 0 on both sides.
        assert_eq!(get_enc(enc, 1, "ZIP_L"), Value::Int(0));
        assert_eq!(get_enc(enc, 1, "ZIP_R"), Value::Int(0));
    }

    #[test]
    fn value_tables_match_figure_3() {
        let encoding = Encoding::build(&cust_schema(), &[phi1(), phi2()]).unwrap();
        let tctl = encoding
            .value_tables()
            .iter()
            .find(|t| t.name() == value_table_left("CT"))
            .unwrap();
        // CID 1 carries {NYC, LI}; CID 2 carries {Albany, Troy, Colonie};
        // CID 3 carries {NYC}: six rows in total.
        assert_eq!(tctl.len(), 6);
        let tacr = encoding
            .value_tables()
            .iter()
            .find(|t| t.name() == value_table_right("AC"))
            .unwrap();
        // CID 2 carries {518}; CID 3 carries the five NYC area codes.
        assert_eq!(tacr.len(), 6);
        let cids: Vec<i64> = tacr
            .tuples()
            .map(|t| t[AttrId(0)].as_int().unwrap())
            .collect();
        assert_eq!(cids.iter().filter(|c| **c == 3).count(), 5);
    }

    #[test]
    fn encoding_schema_depends_only_on_r() {
        // Remark (1) of Section V-A: the schema of the encoding relations is
        // determined by R, not by Σ.
        let small = Encoding::build(&cust_schema(), &[phi1()]).unwrap();
        let large = Encoding::build(&cust_schema(), &[phi1(), phi2()]).unwrap();
        assert_eq!(small.enc().schema(), large.enc().schema());
        assert_eq!(small.value_tables().len(), large.value_tables().len());
    }

    #[test]
    fn encoding_size_is_linear_in_constraints() {
        // Remark (2): the encoding relations are linear in the size of Σ.
        let one = Encoding::build(&cust_schema(), &[phi1()]).unwrap();
        let both = Encoding::build(&cust_schema(), &[phi1(), phi2()]).unwrap();
        // φ1 alone: 2 enc rows, 5 T_CT_L elements ({NYC, LI} ∪ {Albany, Troy,
        // Colonie}), 1 T_AC_R element ({518}).
        assert_eq!(one.total_encoding_rows(), 2 + 5 + 1);
        assert!(both.total_encoding_rows() > one.total_encoding_rows());
        assert_eq!(
            both.total_encoding_rows(),
            3 /* enc rows */ + 6 /* T_CT_L */ + 6 /* T_AC_R */
        );
    }

    #[test]
    fn install_and_uninstall_manage_catalog_tables() {
        let mut catalog = Catalog::new();
        let encoding = Encoding::build(&cust_schema(), &[phi1(), phi2()]).unwrap();
        encoding.install(&mut catalog);
        assert!(catalog.contains(ENC_TABLE));
        assert!(catalog.contains(&value_table_left("CT")));
        assert!(catalog.contains(&value_table_right("AC")));
        assert_eq!(catalog.get(ENC_TABLE).unwrap().len(), 3);
        encoding.uninstall(&mut catalog);
        assert!(!catalog.contains(ENC_TABLE));
    }

    #[test]
    fn provenance_maps_cids_back_to_constraints() {
        let encoding = Encoding::build(&cust_schema(), &[phi1(), phi2()]).unwrap();
        assert_eq!(encoding.provenance(1), Some((0, 0)));
        assert_eq!(encoding.provenance(2), Some((0, 1)));
        assert_eq!(encoding.provenance(3), Some((1, 0)));
        assert_eq!(encoding.provenance(0), None);
        assert_eq!(encoding.provenance(7), None);
    }

    #[test]
    fn non_string_attributes_are_rejected_with_a_clear_error() {
        let schema = Schema::builder("orders")
            .attr("CITY", DataType::Str)
            .attr("N", DataType::Int)
            .build();
        let phi = ECfdBuilder::new("orders")
            .lhs(["CITY"])
            .pattern_rhs(["N"])
            .pattern(|p| p.in_set("N", [1i64, 2]))
            .build()
            .unwrap();
        let err = Encoding::build(&schema, &[phi]).unwrap_err();
        assert!(matches!(err, DetectError::Unsupported(_)));
        assert!(err.to_string().contains("N"));
    }

    #[test]
    fn constraints_on_wrong_relation_are_rejected() {
        let schema = cust_schema();
        let phi = ECfdBuilder::new("orders")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap();
        assert!(matches!(
            Encoding::build(&schema, &[phi]),
            Err(DetectError::Core(_))
        ));
    }
}
