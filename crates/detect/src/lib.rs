//! # ecfd-detect
//!
//! eCFD violation detection (Section V of the paper): the tableau-as-data
//! encoding, the SQL-based batch algorithm `BATCHDETECT`, the incremental
//! algorithm `INCDETECT`, and a native "semantic" detector used as an oracle
//! and as a fast baseline.
//!
//! ## Architecture
//!
//! * [`encode`] builds the auxiliary relations of Fig. 3: a single `enc`
//!   relation describing, for every single-pattern constraint, which
//!   attributes occur in `X`, `Y`, `Yp` and with which cell kind (set,
//!   complement set, wildcard), plus one value table per attribute side
//!   holding the set elements. The encoding is linear in the size of the
//!   constraints and its schema depends only on the relation schema `R`,
//!   never on the number of constraints.
//! * [`sqlgen`] generates the fixed pair of detection statements of Fig. 4:
//!   an `UPDATE` driven by the single-tuple-violation condition (`Q_sv`) and
//!   the `macro`/group-by query for multi-tuple violations (`Q_mv`), plus the
//!   statement that flags tuples matching an offending group. The number and
//!   shape of these statements is independent of how many eCFDs are checked.
//! * [`batch`] (`BATCHDETECT`) runs those statements on the
//!   [`ecfd_engine::Engine`] and reads back the violation flags.
//! * [`incremental`] (`INCDETECT`) maintains the violation flags and the
//!   auxiliary relation `Aux(D)` under tuple insertions and deletions,
//!   touching only affected tuples and groups.
//! * [`semantic`] is a pure-Rust detector with the same output, used for
//!   differential testing and as the "native" baseline in the ablation
//!   benchmarks. It runs on the dictionary-encoded columnar core of
//!   `ecfd_relation::columnar` — pattern constants resolve to codes once at
//!   construction, and the scan shards across worker threads
//!   ([`parallel::Parallelism`]).
//!
//! * [`evidence`] extends all three detectors beyond the paper's flags: an
//!   [`EvidenceReport`] names, for every flagged row, the violated constraint
//!   and pattern tuple, and for multi-tuple violations the offending group —
//!   the input the `ecfd_repair` crate turns into repairs.
//! * [`backend`] puts all three strategies behind one [`DetectorBackend`]
//!   trait, each constructible from a compiled [`ecfd_core::ConstraintSet`]
//!   so constraints are validated and split once, not once per detector.
//!   This is the layer the `ecfd_session` crate routes between.
//!
//! All detectors report a [`DetectionReport`] with the same shape, so they can
//! be compared directly.
//!
//! ## Example
//!
//! ```
//! use ecfd_core::parse_ecfd;
//! use ecfd_detect::SemanticDetector;
//! use ecfd_relation::{DataType, Relation, Schema, Tuple};
//!
//! let schema = Schema::builder("cust")
//!     .attr("CT", DataType::Str)
//!     .attr("AC", DataType::Str)
//!     .build();
//! let data = Relation::with_tuples(schema.clone(), [
//!     Tuple::from_iter(["Albany", "518"]),
//!     Tuple::from_iter(["Albany", "718"]), // wrong area code for Albany
//! ]).unwrap();
//!
//! let phi = parse_ecfd("cust: [CT] -> [AC] | [], { {Albany} || {518} }").unwrap();
//! let report = SemanticDetector::new(&schema, &[phi]).unwrap().detect(&data).unwrap();
//! assert_eq!(report.num_sv(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod encode;
pub mod evidence;
pub mod incremental;
mod obs;
pub mod parallel;
pub mod report;
pub mod semantic;
pub mod sqlgen;

pub use backend::{BackendKind, DetectorBackend, IncrementalBackend, SemanticBackend, SqlBackend};
pub use batch::BatchDetector;
pub use encode::Encoding;
pub use evidence::{ConstraintRef, EvidenceReport, MvEvidence, SvEvidence};
pub use incremental::IncrementalDetector;
pub use parallel::Parallelism;
pub use report::DetectionReport;
pub use semantic::{OpenGroup, SemanticDetector, ShardPartial};

use std::fmt;

/// Result alias for detection operations.
pub type Result<T> = std::result::Result<T, DetectError>;

/// Errors produced by the detection layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectError {
    /// The constraints are not supported by the SQL encoding (e.g. a
    /// constrained attribute is not string-typed).
    Unsupported(String),
    /// Error from the constraint library.
    Core(ecfd_core::CoreError),
    /// Error from the SQL engine.
    Engine(ecfd_engine::EngineError),
    /// Error from the storage layer.
    Relation(ecfd_relation::RelationError),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::Unsupported(msg) => write!(f, "unsupported constraint shape: {msg}"),
            DetectError::Core(e) => write!(f, "constraint error: {e}"),
            DetectError::Engine(e) => write!(f, "SQL engine error: {e}"),
            DetectError::Relation(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for DetectError {}

impl From<ecfd_core::CoreError> for DetectError {
    fn from(e: ecfd_core::CoreError) -> Self {
        DetectError::Core(e)
    }
}

impl From<ecfd_engine::EngineError> for DetectError {
    fn from(e: ecfd_engine::EngineError) -> Self {
        DetectError::Engine(e)
    }
}

impl From<ecfd_relation::RelationError> for DetectError {
    fn from(e: ecfd_relation::RelationError) -> Self {
        DetectError::Relation(e)
    }
}
