//! Property and concurrency tests for `ecfd_obs`: histogram bucket/merge
//! invariants, multi-threaded counter accuracy, and exposition stability.

use ecfd_obs::{
    bucket_of, bucket_upper, parse_exposition, Histogram, HistogramSnapshot, Registry, BUCKETS,
};
use proptest::prelude::*;

/// Value pool spanning every interesting regime: the exact linear range,
/// octave boundaries, mid-octave values, and the u64 extremes.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..32,
        (0u32..64).prop_map(|shift| 1u64 << shift),
        (0u32..64).prop_map(|shift| (1u64 << shift).wrapping_sub(1)),
        any::<u64>(),
    ]
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(arb_value(), 0..64)
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Splitting a stream across two histograms and merging equals recording
    /// everything into one — in either merge order.
    #[test]
    fn record_merge_commutes(values in arb_values(), split in 0usize..64) {
        let split = split.min(values.len());
        let (left, right) = values.split_at(split);
        let whole = record_all(&values);
        let (a, b) = (record_all(left), record_all(right));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        prop_assert_eq!(ab.buckets(), ba.buckets());
        prop_assert_eq!(ab.buckets(), whole.buckets());
        prop_assert_eq!(ab.count(), whole.count());
        prop_assert_eq!(ab.max(), whole.max());
        // Sum may wrap only if the values sum past u64::MAX; keep inputs that
        // cannot, by checking against the same wrapping fold.
        let expect: u64 = values.iter().fold(0u64, |acc, v| acc.wrapping_add(*v));
        prop_assert_eq!(ab.sum(), expect);
    }

    /// Quantiles are monotone in q and bracketed by min/max buckets.
    #[test]
    fn quantiles_are_monotone(values in arb_values(), qa in 0u32..=100, qb in 0u32..=100) {
        let snap = record_all(&values);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(snap.quantile(lo as f64 / 100.0) <= snap.quantile(hi as f64 / 100.0));
        if !values.is_empty() {
            let max = *values.iter().max().unwrap();
            // The top quantile is the max's bucket bound: >= max, <= 1.25*max.
            let p100 = snap.quantile(1.0);
            prop_assert!(p100 >= max);
            prop_assert_eq!(p100, bucket_upper(bucket_of(max)));
        }
    }

    /// Every value maps into a bucket whose bounds actually contain it, with
    /// at most 25% relative slack on the upper bound.
    #[test]
    fn bucket_bounds_contain_their_values(value in arb_value()) {
        let bucket = bucket_of(value);
        prop_assert!(bucket < BUCKETS);
        let upper = bucket_upper(bucket);
        prop_assert!(upper >= value);
        if bucket > 0 {
            prop_assert!(bucket_upper(bucket - 1) < value);
        }
        // Log-linear guarantee: bound over-estimates by at most 25%.
        if value >= 16 {
            prop_assert!((upper - value) <= value / 4 + 1, "upper {upper} vs {value}");
        }
    }

    /// `since` scopes exactly the values recorded between two snapshots.
    #[test]
    fn since_recovers_the_delta(before in arb_values(), after in arb_values()) {
        let h = Histogram::new();
        for &v in &before {
            h.record(v);
        }
        let mark = h.snapshot();
        for &v in &after {
            h.record(v);
        }
        let phase = h.snapshot().since(&mark);
        prop_assert_eq!(phase.count(), after.len() as u64);
        prop_assert_eq!(phase.buckets(), record_all(&after).buckets());
    }
}

/// N threads hammering shared counter/gauge/histogram handles lose nothing.
#[test]
fn concurrent_updates_are_exact() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let registry = Registry::new();
    let counter = registry.counter("mt.counter");
    let gauge = registry.gauge("mt.gauge");
    let histogram = registry.histogram("mt.ns");

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let gauge = gauge.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(1);
                    gauge.sub(1);
                    histogram.record(t as u64 * PER_THREAD + i);
                }
            });
        }
    });

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), total);
    assert_eq!(gauge.get(), 0);
    let snap = histogram.snapshot();
    assert_eq!(snap.count(), total);
    assert_eq!(snap.max(), total - 1);
    assert_eq!(snap.buckets().iter().sum::<u64>(), total);
}

/// Rendering is stable (same state → byte-identical text), sorted, and
/// parseable back into exactly the values that were recorded.
#[test]
fn exposition_round_trips_and_is_stable() {
    let registry = Registry::new();
    registry.counter("ingest.accepted").add(41);
    registry.gauge("ingest.queue.depth").set(-2);
    registry
        .counter_with("serve.requests", &[("verb", "APPLY")])
        .add(3);
    registry
        .counter_with("serve.requests", &[("verb", "DETECT")])
        .add(5);
    let h = registry.histogram("writer.apply.ns");
    for v in [10, 11, 12, 13, 2000] {
        h.record(v);
    }

    let text = registry.render();
    assert_eq!(text, registry.render(), "render must be deterministic");

    let mut lines: Vec<&str> = text.lines().collect();
    let rendered = lines.clone();
    lines.sort();
    assert_eq!(lines, rendered, "exposition must be sorted");

    let parsed = parse_exposition(&text).unwrap();
    let get = |key: &str| -> i64 {
        parsed
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing `{key}` in:\n{text}"))
            .1
    };
    assert_eq!(get("ingest.accepted"), 41);
    assert_eq!(get("ingest.queue.depth"), -2);
    assert_eq!(get("serve.requests{verb=\"APPLY\"}"), 3);
    assert_eq!(get("serve.requests{verb=\"DETECT\"}"), 5);
    assert_eq!(get("writer.apply.ns.count"), 5);
    assert_eq!(get("writer.apply.ns.sum"), 2046);
    assert_eq!(get("writer.apply.ns.max"), 2000);
    assert_eq!(get("writer.apply.ns{q=\"0.50\"}"), 12);
    assert!(get("writer.apply.ns{q=\"0.99\"}") >= 2000);

    // Prefix filtering keeps only matching names, still sorted.
    let ingest_only = registry.render_prefix("ingest.");
    assert_eq!(ingest_only, "ingest.accepted 41\ningest.queue.depth -2\n");
}
