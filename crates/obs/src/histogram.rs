//! Lock-free fixed-bucket histograms with log-spaced buckets.
//!
//! The bucket layout is log-linear (HDR-style with two significant bits):
//! values below [`LINEAR_MAX`] get one exact bucket each, and every octave
//! `[2^o, 2^(o+1))` above that is split into [`SUB_BUCKETS`] equal sub-ranges.
//! That bounds the relative quantile error at 25% while keeping the whole
//! histogram a fixed array of [`BUCKETS`] atomic counters — recording is a
//! handful of relaxed atomic increments, never a lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Total number of buckets in every histogram.
pub const BUCKETS: usize = 256;

/// Values below this get one exact bucket each (`bucket == value`).
const LINEAR_MAX: u64 = 16;

/// Sub-buckets per octave above the linear range.
const SUB_BUCKETS: usize = 4;

/// First octave covered by the log-linear range (`log2(LINEAR_MAX)`).
const FIRST_OCTAVE: u32 = 4;

/// Maps a value to its bucket index. Total function: every `u64` lands in
/// exactly one of the [`BUCKETS`] buckets.
pub fn bucket_of(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros(); // >= FIRST_OCTAVE
    let sub = ((value >> (octave - 2)) & 0b11) as usize;
    LINEAR_MAX as usize + (octave - FIRST_OCTAVE) as usize * SUB_BUCKETS + sub
}

/// Inclusive upper bound of a bucket: the largest value that maps to it.
/// Quantiles report this bound, so they never under-estimate.
pub fn bucket_upper(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        return index as u64;
    }
    let rel = index - LINEAR_MAX as usize;
    let octave = FIRST_OCTAVE + (rel / SUB_BUCKETS) as u32;
    let sub = (rel % SUB_BUCKETS) as u64;
    let upper = ((sub + SUB_BUCKETS as u64 + 1) as u128) << (octave - 2);
    u64::try_from(upper - 1).unwrap_or(u64::MAX)
}

struct Inner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free, mergeable latency/value histogram. Cloning is cheap and all
/// clones share the same buckets, so a handle can be captured per thread.
///
/// Units are whatever the caller records — by convention, histograms whose
/// registered name ends in `.ns` hold nanoseconds.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty, unregistered histogram (registries hand out shared
    /// ones; standalone histograms are useful for scoped measurements).
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(Inner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value. Lock-free: three relaxed atomic RMWs plus one
    /// `fetch_max`.
    pub fn record(&self, value: u64) {
        let inner = &self.inner;
        inner.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Times `f` and records the elapsed nanoseconds.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_duration(start.elapsed());
        out
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time copy of the buckets for merging, diffing and
    /// quantile extraction. Concurrent recording may be mid-flight; the copy
    /// is still internally monotone (each bucket is read once).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        let buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// An immutable copy of a histogram's buckets; the unit of merging, diffing
/// and quantile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An all-zero snapshot — the identity element of [`merge`](Self::merge).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Number of values in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another snapshot in (bucket-wise addition). Commutative and
    /// associative, so per-thread histograms can be combined in any order.
    /// `sum` wraps on overflow, matching the atomic accumulation in
    /// [`Histogram::record`].
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The values recorded *since* `earlier` was taken (bucket-wise saturating
    /// subtraction) — how a monotone shared histogram is scoped to a phase.
    /// `max` is the overall max, as bucket counts cannot recover the interval
    /// max exactly.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets,
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the inclusive upper bound of the
    /// bucket holding the rank-`ceil(q·count)` value — deterministic, never an
    /// under-estimate, and within 25% relative error of the true value.
    /// Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(index);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Raw bucket counts (length [`BUCKETS`]), for tests and custom renderers.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_value_lands_in_a_valid_bucket_below_its_upper_bound() {
        for value in (0..64u32).map(|shift| 1u64 << shift).chain(0..2000) {
            for v in [value, value.saturating_sub(1), value.saturating_add(1)] {
                let bucket = bucket_of(v);
                assert!(bucket < BUCKETS);
                assert!(bucket_upper(bucket) >= v, "upper({bucket}) < {v}");
                if bucket > 0 {
                    assert!(
                        bucket_upper(bucket - 1) < v,
                        "bucket {bucket} too high for {v}"
                    );
                }
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..16usize {
            assert_eq!(snap.buckets()[v], 1);
        }
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(1.0), 15);
    }

    #[test]
    fn since_scopes_a_phase() {
        let h = Histogram::new();
        h.record(100);
        let mark = h.snapshot();
        h.record(1_000_000);
        let phase = h.snapshot().since(&mark);
        assert_eq!(phase.count(), 1);
        assert!(phase.quantile(0.5) >= 1_000_000);
    }
}
