//! The metric registry: named counters, gauges and histograms, plus the
//! deterministic text exposition.
//!
//! # Naming convention
//!
//! Metric names are lower-case dotted paths, `component.thing[.unit]` —
//! `ingest.accepted`, `writer.apply.ns`, `wal.fsync.count`. Time histograms
//! end in `.ns` (they hold nanoseconds). Labels are `key="value"` pairs,
//! rendered sorted by key, Prometheus-style: `serve.requests{verb="APPLY"} 3`.
//!
//! # Exposition
//!
//! [`Registry::render`] emits one `name[{labels}] value` line per scalar,
//! sorted bytewise, with a trailing newline. Counters and gauges are one line
//! each; a histogram named `h` expands to `h.count`, `h.max`, `h.sum` and
//! quantile lines `h{q="0.50"}`, `h{q="0.95"}`, `h{q="0.99"}` (bucket upper
//! bounds, never under-estimates). Rendering the same state twice yields
//! byte-identical text.

use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A monotonically increasing counter. Cloning is cheap; clones share state.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways. Clones share state.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. Most code uses the process-wide
/// [`registry()`](crate::registry); standalone registries exist for tests.
///
/// Looking a metric up takes a read lock on the name table — cheap, but hot
/// paths should fetch their handles once (handles are lock-free thereafter).
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Entry>>,
}

/// What the registry stores per canonical key: the metric, its sorted
/// labels, and the bare metric name (prefix filtering matches on the name).
type Entry = (Metric, Vec<(String, String)>, String);

/// Canonical map key: `name` alone, or `name{k="v",…}` with labels sorted.
fn canonical_key(name: &str, labels: &[(&str, &str)]) -> (String, Vec<(String, String)>) {
    let mut sorted: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    sorted.sort();
    (render_key(name, &sorted, &[]), sorted)
}

/// Renders `name{labels, extra} `-style keys; `extra` is spliced in sorted
/// with the rest (used for histogram quantile labels).
fn render_key(name: &str, labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_string();
    }
    let mut all: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
        .collect();
    all.sort();
    let body: Vec<String> = all.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", body.join(","))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let (key, sorted) = canonical_key(name, labels);
        if let Some((metric, _, _)) = self.metrics.read().expect("obs registry lock").get(&key) {
            return metric.clone();
        }
        let mut table = self.metrics.write().expect("obs registry lock");
        table
            .entry(key)
            .or_insert_with(|| (make(), sorted, name.to_string()))
            .0
            .clone()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Labelled variant of [`Registry::counter`].
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Labelled variant of [`Registry::gauge`].
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Labelled variant of [`Registry::histogram`].
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Renders every metric as sorted `name[{labels}] value` lines with a
    /// trailing newline (empty string when no metric matches). See the module
    /// docs for the exact format.
    pub fn render(&self) -> String {
        self.render_prefix("")
    }

    /// Like [`Registry::render`], restricted to metrics whose *name* starts
    /// with `prefix` (labels are not matched).
    pub fn render_prefix(&self, prefix: &str) -> String {
        let mut lines: Vec<String> = Vec::new();
        let table = self.metrics.read().expect("obs registry lock");
        for (metric, labels, name) in table.values() {
            if !name.starts_with(prefix) {
                continue;
            }
            match metric {
                Metric::Counter(c) => {
                    lines.push(format!("{} {}", render_key(name, labels, &[]), c.get()));
                }
                Metric::Gauge(g) => {
                    lines.push(format!("{} {}", render_key(name, labels, &[]), g.get()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    for (suffix, value) in [
                        (".count", snap.count()),
                        (".max", snap.max()),
                        (".sum", snap.sum()),
                    ] {
                        let full = format!("{name}{suffix}");
                        lines.push(format!("{} {}", render_key(&full, labels, &[]), value));
                    }
                    for (q, tag) in [(0.50, "0.50"), (0.95, "0.95"), (0.99, "0.99")] {
                        lines.push(format!(
                            "{} {}",
                            render_key(name, labels, &[("q", tag)]),
                            snap.quantile(q)
                        ));
                    }
                }
            }
        }
        drop(table);
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let table = self.metrics.read().expect("obs registry lock");
        f.debug_struct("Registry")
            .field("metrics", &table.len())
            .finish()
    }
}

/// The process-wide registry every instrumented component reports to.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Times `f` and records the elapsed nanoseconds into the process-wide
/// histogram `name` — the one-line span API:
///
/// ```
/// let sum = ecfd_obs::timed("demo.sum.ns", || (0..100u64).sum::<u64>());
/// assert_eq!(sum, 4950);
/// ```
///
/// Each call looks the histogram up by name; hot loops should hold a
/// [`Histogram`] handle and use [`Histogram::time`] instead.
pub fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let histogram = registry().histogram(name);
    let start = Instant::now();
    let out = f();
    histogram.record_duration(start.elapsed());
    out
}

/// Parses exposition text back into sorted `(key, value)` pairs — the inverse
/// of [`Registry::render`], used by tests and the CI metrics smoke check.
/// Lines that do not match the format are reported as errors.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, i64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("exposition line without value: `{line}`"))?;
        let value: i64 = value
            .parse()
            .map_err(|_| format!("non-numeric exposition value: `{line}`"))?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_and_render_sorted() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.counter("b.count").inc();
        reg.gauge("a.depth").set(-3);
        reg.counter_with("c.requests", &[("verb", "PING")]).inc();
        assert_eq!(
            reg.render(),
            "a.depth -3\nb.count 3\nc.requests{verb=\"PING\"} 1\n"
        );
        assert_eq!(reg.render_prefix("b."), "b.count 3\n");
        assert_eq!(reg.render_prefix("zzz"), "");
    }

    #[test]
    fn histogram_renders_count_max_sum_and_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("t.ns");
        h.record(10);
        h.record(12);
        let text = reg.render();
        assert!(text.contains("t.ns.count 2\n"));
        assert!(text.contains("t.ns.max 12\n"));
        assert!(text.contains("t.ns.sum 22\n"));
        assert!(text.contains("t.ns{q=\"0.50\"} 10\n"));
        assert!(text.contains("t.ns{q=\"0.99\"} 12\n"));
    }

    #[test]
    fn parse_inverts_render() {
        let reg = Registry::new();
        reg.counter("x").add(7);
        reg.gauge("y").set(-1);
        let parsed = parse_exposition(&reg.render()).unwrap();
        assert_eq!(parsed, vec![("x".into(), 7), ("y".into(), -1)]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("same.name");
        reg.gauge("same.name");
    }

    #[test]
    fn timed_records_into_the_global_registry() {
        let value = timed("obs.test.timed.ns", || 41 + 1);
        assert_eq!(value, 42);
        assert!(registry().histogram("obs.test.timed.ns").count() >= 1);
    }
}
