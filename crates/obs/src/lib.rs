//! # `ecfd_obs` — the observability core of the eCFD workspace
//!
//! Dependency-free metrics primitives shared by every layer of the serving
//! stack: atomic [`Counter`]s and [`Gauge`]s, lock-free log-bucket
//! [`Histogram`]s with p50/p95/p99 extraction, a process-wide [`Registry`],
//! the [`timed`] span helper, and a deterministic, sorted, Prometheus-
//! flavoured text exposition ([`Registry::render`]) that the `STATS` protocol
//! verb serves over the wire.
//!
//! ## Design
//!
//! - **Process-wide by default.** Instrumented components (ingest queue,
//!   writer, WAL sink, detectors, protocol handlers) report into
//!   [`registry()`] without any plumbing; embedders read the same registry
//!   back through `Hub::metrics()` or `STATS`. Counters are monotone, so
//!   consumers scope measurements by diffing two readings.
//! - **Lock-free hot path.** Recording into a counter, gauge or histogram is
//!   a few relaxed atomic operations on shared `Arc` state; the registry's
//!   name table is only locked when a handle is first fetched.
//! - **Deterministic exposition.** Rendering sorts lines bytewise and never
//!   depends on iteration order, so the same state always serializes to the
//!   same text — tests and CI can assert on it directly.
//!
//! ```
//! use ecfd_obs::{registry, timed};
//!
//! registry().counter("doc.widgets").add(3);
//! timed("doc.step.ns", || { /* measured work */ });
//! let text = registry().render_prefix("doc.");
//! assert!(text.starts_with("doc.step.ns.count 1\n"));
//! assert!(text.contains("doc.widgets 3\n"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod histogram;
mod registry;

pub use histogram::{bucket_of, bucket_upper, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{parse_exposition, registry, timed, Counter, Gauge, Registry};
