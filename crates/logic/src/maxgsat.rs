//! MAXGSAT: maximise the number of satisfied Boolean expressions.
//!
//! The *Maximum Generalized Satisfiability* problem (Papadimitriou,
//! "Computational Complexity", 1994 — reference \[7\] of the paper) asks, given a
//! set `Φ = {φ_1, …, φ_m}` of arbitrary Boolean expressions, for a truth
//! assignment satisfying as many of them as possible. The eCFD MAXSS problem
//! reduces to it (Section IV), so this module provides several solvers:
//!
//! * [`MaxGSatSolver::Exhaustive`] — exact, exponential in the number of
//!   variables; only used for small instances and as a test oracle;
//! * [`MaxGSatSolver::RandomSampling`] — best of `k` uniformly random
//!   assignments. A uniformly random assignment satisfies each formula with
//!   probability ≥ 2^-size in the worst case, but for the formulas produced by
//!   the eCFD reduction the expected fraction is much higher in practice;
//! * [`MaxGSatSolver::GreedyConditional`] — Johnson-style derandomisation by
//!   the method of conditional expectations: variables are fixed one at a time,
//!   choosing the value with the larger estimated expected number of satisfied
//!   formulas (estimated by sampling completions with a fixed seed);
//! * [`MaxGSatSolver::LocalSearch`] — GSAT-flavoured hill climbing with random
//!   restarts: repeatedly flip the variable that yields the largest increase in
//!   satisfied formulas.

use crate::assignment::Assignment;
use crate::expr::{BoolExpr, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A MAXGSAT instance: a number of variables and a list of formulas over them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxGSatInstance {
    num_vars: usize,
    formulas: Vec<BoolExpr>,
}

/// Which approximation (or exact) algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaxGSatSolver {
    /// Exact exhaustive search (exponential; refuses instances with more than
    /// 24 variables).
    Exhaustive,
    /// Best of `samples` uniformly random assignments.
    RandomSampling {
        /// Number of random assignments to draw.
        samples: usize,
    },
    /// Derandomised greedy by conditional expectations, estimating
    /// expectations with `samples` random completions per decision.
    GreedyConditional {
        /// Number of completions sampled per (variable, value) decision.
        samples: usize,
    },
    /// Hill climbing with `restarts` random restarts and at most `max_flips`
    /// flips per restart.
    LocalSearch {
        /// Number of random restarts.
        restarts: usize,
        /// Maximum number of variable flips per restart.
        max_flips: usize,
    },
}

impl Default for MaxGSatSolver {
    fn default() -> Self {
        MaxGSatSolver::LocalSearch {
            restarts: 8,
            max_flips: 200,
        }
    }
}

/// Result of running a MAXGSAT solver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxGSatOutcome {
    /// The best assignment found.
    pub assignment: Assignment,
    /// Indices (into the instance's formula list) of the formulas satisfied by
    /// [`MaxGSatOutcome::assignment`].
    pub satisfied: Vec<usize>,
    /// Whether the solver proves this is an optimal solution (only the
    /// exhaustive solver sets this).
    pub proven_optimal: bool,
}

impl MaxGSatOutcome {
    /// Number of satisfied formulas.
    pub fn num_satisfied(&self) -> usize {
        self.satisfied.len()
    }
}

impl MaxGSatInstance {
    /// Creates an instance over `num_vars` variables.
    pub fn new(num_vars: usize, formulas: Vec<BoolExpr>) -> Self {
        MaxGSatInstance { num_vars, formulas }
    }

    /// The formulas of the instance.
    pub fn formulas(&self) -> &[BoolExpr] {
        &self.formulas
    }

    /// Number of formulas.
    pub fn len(&self) -> usize {
        self.formulas.len()
    }

    /// True when the instance has no formulas.
    pub fn is_empty(&self) -> bool {
        self.formulas.is_empty()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Indices of the formulas satisfied by `assignment`.
    pub fn satisfied_by(&self, assignment: &Assignment) -> Vec<usize> {
        self.formulas
            .iter()
            .enumerate()
            .filter(|(_, f)| f.eval(assignment))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of formulas satisfied by `assignment`.
    pub fn count_satisfied(&self, assignment: &Assignment) -> usize {
        self.formulas.iter().filter(|f| f.eval(assignment)).count()
    }

    /// Variables that actually occur in some formula.
    pub fn occurring_vars(&self) -> Vec<VarId> {
        let mut set = BTreeSet::new();
        for f in &self.formulas {
            set.extend(f.vars());
        }
        set.into_iter().collect()
    }

    /// Runs the given solver with a deterministic seed.
    pub fn solve(&self, solver: MaxGSatSolver, seed: u64) -> MaxGSatOutcome {
        match solver {
            MaxGSatSolver::Exhaustive => self.solve_exhaustive(),
            MaxGSatSolver::RandomSampling { samples } => self.solve_random(samples, seed),
            MaxGSatSolver::GreedyConditional { samples } => self.solve_greedy(samples, seed),
            MaxGSatSolver::LocalSearch {
                restarts,
                max_flips,
            } => self.solve_local_search(restarts, max_flips, seed),
        }
    }

    fn outcome(&self, assignment: Assignment, proven_optimal: bool) -> MaxGSatOutcome {
        let satisfied = self.satisfied_by(&assignment);
        MaxGSatOutcome {
            assignment,
            satisfied,
            proven_optimal,
        }
    }

    /// Exact exhaustive search. Panics if the instance has more than 24
    /// variables (use an approximation solver instead).
    pub fn solve_exhaustive(&self) -> MaxGSatOutcome {
        assert!(
            self.num_vars <= 24,
            "exhaustive MAXGSAT limited to 24 variables, instance has {}",
            self.num_vars
        );
        let mut best = Assignment::all_false(self.num_vars);
        let mut best_count = self.count_satisfied(&best);
        for bits in 1..(1u64 << self.num_vars) {
            let asg = Assignment::from_bits(bits, self.num_vars);
            let count = self.count_satisfied(&asg);
            if count > best_count {
                best_count = count;
                best = asg;
                if best_count == self.formulas.len() {
                    break;
                }
            }
        }
        self.outcome(best, true)
    }

    fn random_assignment(&self, rng: &mut StdRng) -> Assignment {
        Assignment::from_vec((0..self.num_vars).map(|_| rng.gen_bool(0.5)).collect())
    }

    fn solve_random(&self, samples: usize, seed: u64) -> MaxGSatOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = Assignment::all_false(self.num_vars);
        let mut best_count = self.count_satisfied(&best);
        for _ in 0..samples.max(1) {
            let asg = self.random_assignment(&mut rng);
            let count = self.count_satisfied(&asg);
            if count > best_count {
                best_count = count;
                best = asg;
                if best_count == self.formulas.len() {
                    break;
                }
            }
        }
        self.outcome(best, false)
    }

    /// Estimates E[#satisfied | prefix fixed] by sampling completions.
    fn estimate_expectation(
        &self,
        fixed: &Assignment,
        fixed_upto: usize,
        samples: usize,
        rng: &mut StdRng,
    ) -> f64 {
        if fixed_upto >= self.num_vars {
            return self.count_satisfied(fixed) as f64;
        }
        let mut total = 0usize;
        for _ in 0..samples.max(1) {
            let mut asg = fixed.clone();
            for v in fixed_upto..self.num_vars {
                asg.set(VarId(v), rng.gen_bool(0.5));
            }
            total += self.count_satisfied(&asg);
        }
        total as f64 / samples.max(1) as f64
    }

    fn solve_greedy(&self, samples: usize, seed: u64) -> MaxGSatOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut assignment = Assignment::all_false(self.num_vars);
        for v in 0..self.num_vars {
            let var = VarId(v);
            assignment.set(var, true);
            let with_true = self.estimate_expectation(&assignment, v + 1, samples, &mut rng);
            assignment.set(var, false);
            let with_false = self.estimate_expectation(&assignment, v + 1, samples, &mut rng);
            assignment.set(var, with_true > with_false);
        }
        self.outcome(assignment, false)
    }

    fn solve_local_search(&self, restarts: usize, max_flips: usize, seed: u64) -> MaxGSatOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let vars = self.occurring_vars();
        let mut best: Option<(usize, Assignment)> = None;
        for restart in 0..restarts.max(1) {
            let mut current = if restart == 0 {
                // First restart starts from all-false, a useful baseline for
                // sparse instances; later restarts are random.
                Assignment::all_false(self.num_vars)
            } else {
                self.random_assignment(&mut rng)
            };
            let mut current_count = self.count_satisfied(&current);
            for _ in 0..max_flips {
                if current_count == self.formulas.len() {
                    break;
                }
                // Find the best single flip.
                let mut best_flip: Option<(usize, VarId)> = None;
                for &var in &vars {
                    current.flip(var);
                    let count = self.count_satisfied(&current);
                    current.flip(var);
                    if count > current_count && best_flip.map(|(c, _)| count > c).unwrap_or(true) {
                        best_flip = Some((count, var));
                    }
                }
                match best_flip {
                    Some((count, var)) => {
                        current.flip(var);
                        current_count = count;
                    }
                    None => break, // local optimum
                }
            }
            if best
                .as_ref()
                .map(|(c, _)| current_count > *c)
                .unwrap_or(true)
            {
                best = Some((current_count, current));
            }
            if let Some((c, _)) = &best {
                if *c == self.formulas.len() {
                    break;
                }
            }
        }
        let (_, assignment) = best.expect("at least one restart ran");
        self.outcome(assignment, false)
    }
}

/// A MAXGSAT instance assembled from *hard* formulas (which any useful
/// assignment must satisfy) and *soft* formulas (whose satisfied count is to
/// be maximised).
///
/// MAXGSAT has no native notion of weights, so each hard formula is replicated
/// `soft.len() + 1` times in the underlying instance: violating even one hard
/// formula then costs more than satisfying every soft formula can gain, and an
/// optimal assignment satisfies all hard formulas whenever that is possible at
/// all. This is the oracle shape the repair subsystem uses — hard conflict
/// constraints ("these two tuples cannot both be kept") against soft retention
/// goals ("keep this tuple").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardSoftInstance {
    instance: MaxGSatInstance,
    num_hard: usize,
    num_soft: usize,
    replication: usize,
}

/// Outcome of solving a [`HardSoftInstance`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardSoftOutcome {
    /// The best assignment found.
    pub assignment: Assignment,
    /// Whether the assignment satisfies *every* hard formula. When the solver
    /// is exact and this is `false`, the hard formulas are jointly
    /// unsatisfiable.
    pub hard_satisfied: bool,
    /// Indices (into the soft formula list) of the satisfied soft formulas.
    pub soft_satisfied: Vec<usize>,
    /// Whether the underlying solver proves optimality (exhaustive only).
    pub proven_optimal: bool,
}

impl HardSoftInstance {
    /// Builds the replicated instance over `num_vars` variables.
    pub fn new(num_vars: usize, hard: Vec<BoolExpr>, soft: Vec<BoolExpr>) -> Self {
        let replication = soft.len() + 1;
        let mut formulas = Vec::with_capacity(hard.len() * replication + soft.len());
        for h in &hard {
            formulas.extend(std::iter::repeat_n(h.clone(), replication));
        }
        formulas.extend(soft.iter().cloned());
        HardSoftInstance {
            num_hard: hard.len(),
            num_soft: soft.len(),
            replication,
            instance: MaxGSatInstance::new(num_vars, formulas),
        }
    }

    /// The underlying (replicated) MAXGSAT instance.
    pub fn instance(&self) -> &MaxGSatInstance {
        &self.instance
    }

    /// Number of hard formulas.
    pub fn num_hard(&self) -> usize {
        self.num_hard
    }

    /// Number of soft formulas.
    pub fn num_soft(&self) -> usize {
        self.num_soft
    }

    /// How many times each hard formula is replicated.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Runs `solver` on the replicated instance and splits the outcome back
    /// into its hard / soft components.
    pub fn solve(&self, solver: MaxGSatSolver, seed: u64) -> HardSoftOutcome {
        let outcome = self.instance.solve(solver, seed);
        let hard_region = self.num_hard * self.replication;
        let hard_satisfied = (0..self.num_hard).all(|h| {
            // Replicas of one hard formula are contiguous; checking the first
            // replica suffices since they are identical.
            self.instance.formulas()[h * self.replication].eval(&outcome.assignment)
        });
        let soft_satisfied = outcome
            .satisfied
            .iter()
            .filter(|&&i| i >= hard_region)
            .map(|&i| i - hard_region)
            .collect();
        HardSoftOutcome {
            assignment: outcome.assignment,
            hard_satisfied,
            soft_satisfied,
            proven_optimal: outcome.proven_optimal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::VarPool;

    /// A small instance where exactly `m - 1` formulas can be satisfied:
    /// {a, ¬a, a ∨ b, b}.
    fn conflicting_instance() -> (MaxGSatInstance, usize) {
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let b = pool.fresh("b");
        let formulas = vec![
            BoolExpr::var(a),
            BoolExpr::var(a).not(),
            BoolExpr::or([BoolExpr::var(a), BoolExpr::var(b)]),
            BoolExpr::var(b),
        ];
        (MaxGSatInstance::new(pool.len(), formulas), 3)
    }

    #[test]
    fn exhaustive_finds_optimum() {
        let (inst, opt) = conflicting_instance();
        let outcome = inst.solve_exhaustive();
        assert_eq!(outcome.num_satisfied(), opt);
        assert!(outcome.proven_optimal);
        // The satisfied index list is consistent with the assignment.
        for &i in &outcome.satisfied {
            assert!(inst.formulas()[i].eval(&outcome.assignment));
        }
    }

    #[test]
    fn all_solvers_reach_optimum_on_small_instances() {
        let (inst, opt) = conflicting_instance();
        for solver in [
            MaxGSatSolver::RandomSampling { samples: 64 },
            MaxGSatSolver::GreedyConditional { samples: 32 },
            MaxGSatSolver::LocalSearch {
                restarts: 4,
                max_flips: 50,
            },
        ] {
            let outcome = inst.solve(solver, 7);
            assert_eq!(
                outcome.num_satisfied(),
                opt,
                "solver {solver:?} should reach the optimum on a 2-variable instance"
            );
        }
    }

    #[test]
    fn fully_satisfiable_instance_is_fully_satisfied() {
        let mut pool = VarPool::new();
        let vars: Vec<VarId> = (0..6).map(|i| pool.fresh(format!("v{i}"))).collect();
        // Chain of implications plus a few disjunctions — satisfiable by all-true.
        let mut formulas: Vec<BoolExpr> = vars
            .windows(2)
            .map(|w| BoolExpr::var(w[0]).implies(BoolExpr::var(w[1])))
            .collect();
        formulas.push(BoolExpr::or(vars.iter().map(|v| BoolExpr::var(*v))));
        let inst = MaxGSatInstance::new(pool.len(), formulas.clone());

        let exact = inst.solve_exhaustive();
        assert_eq!(exact.num_satisfied(), formulas.len());
        let ls = inst.solve(MaxGSatSolver::default(), 3);
        assert_eq!(ls.num_satisfied(), formulas.len());
    }

    #[test]
    fn approximation_quality_on_random_instances() {
        // On random instances with ≤ 12 variables every approximate solver
        // should satisfy at least half of what the exact optimum satisfies —
        // a loose bound that guards against gross regressions.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..5 {
            let n_vars = 6 + trial;
            let mut formulas = Vec::new();
            for _ in 0..12 {
                let a = VarId(rng.gen_range(0..n_vars));
                let b = VarId(rng.gen_range(0..n_vars));
                let lit_a = if rng.gen_bool(0.5) {
                    BoolExpr::var(a)
                } else {
                    BoolExpr::var(a).not()
                };
                let lit_b = if rng.gen_bool(0.5) {
                    BoolExpr::var(b)
                } else {
                    BoolExpr::var(b).not()
                };
                formulas.push(if rng.gen_bool(0.5) {
                    BoolExpr::and([lit_a, lit_b])
                } else {
                    BoolExpr::or([lit_a, lit_b])
                });
            }
            let inst = MaxGSatInstance::new(n_vars, formulas);
            let opt = inst.solve_exhaustive().num_satisfied();
            for solver in [
                MaxGSatSolver::RandomSampling { samples: 100 },
                MaxGSatSolver::GreedyConditional { samples: 30 },
                MaxGSatSolver::LocalSearch {
                    restarts: 5,
                    max_flips: 100,
                },
            ] {
                let approx = inst.solve(solver, 42 + trial as u64).num_satisfied();
                assert!(
                    approx * 2 >= opt,
                    "solver {solver:?}: {approx} satisfied vs optimum {opt}"
                );
            }
        }
    }

    #[test]
    fn empty_instance() {
        let inst = MaxGSatInstance::new(0, vec![]);
        assert!(inst.is_empty());
        let outcome = inst.solve_exhaustive();
        assert_eq!(outcome.num_satisfied(), 0);
    }

    #[test]
    fn solvers_are_deterministic_for_a_fixed_seed() {
        let (inst, _) = conflicting_instance();
        let a = inst.solve(MaxGSatSolver::RandomSampling { samples: 10 }, 99);
        let b = inst.solve(MaxGSatSolver::RandomSampling { samples: 10 }, 99);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exhaustive MAXGSAT limited")]
    fn exhaustive_rejects_large_instances() {
        let inst = MaxGSatInstance::new(30, vec![BoolExpr::t()]);
        let _ = inst.solve_exhaustive();
    }

    #[test]
    fn hard_formulas_dominate_soft_formulas() {
        // Vertex-cover-flavoured instance: keep as many of {a, b, c} as
        // possible, but a and b conflict. Optimum keeps two variables.
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let b = pool.fresh("b");
        let c = pool.fresh("c");
        let hard = vec![BoolExpr::and([BoolExpr::var(a), BoolExpr::var(b)]).not()];
        let soft = vec![BoolExpr::var(a), BoolExpr::var(b), BoolExpr::var(c)];
        let hs = HardSoftInstance::new(pool.len(), hard, soft);
        assert_eq!(hs.num_hard(), 1);
        assert_eq!(hs.num_soft(), 3);
        assert_eq!(hs.replication(), 4);
        assert_eq!(hs.instance().len(), 4 + 3);

        let outcome = hs.solve(MaxGSatSolver::Exhaustive, 0);
        assert!(outcome.proven_optimal);
        assert!(outcome.hard_satisfied);
        assert_eq!(outcome.soft_satisfied.len(), 2);
        // c is unconflicted, so it must always be kept.
        assert!(outcome.soft_satisfied.contains(&2));
    }

    #[test]
    fn unsatisfiable_hard_formulas_are_reported() {
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let hard = vec![BoolExpr::var(a), BoolExpr::var(a).not()];
        let hs = HardSoftInstance::new(pool.len(), hard, vec![BoolExpr::var(a)]);
        let outcome = hs.solve(MaxGSatSolver::Exhaustive, 0);
        assert!(!outcome.hard_satisfied);
    }

    #[test]
    fn hard_soft_with_no_soft_formulas_is_plain_satisfiability() {
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let hs = HardSoftInstance::new(pool.len(), vec![BoolExpr::var(a)], vec![]);
        assert_eq!(hs.replication(), 1);
        let outcome = hs.solve(MaxGSatSolver::Exhaustive, 0);
        assert!(outcome.hard_satisfied);
        assert!(outcome.soft_satisfied.is_empty());
    }
}
