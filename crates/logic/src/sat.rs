//! Exact satisfiability of conjunctions of Boolean expressions.
//!
//! Used as a small exact oracle in tests and by the exact MAXGSAT solver. The
//! search is a straightforward backtracking procedure over the variables that
//! actually occur in the formulas, with constant-propagation via
//! [`BoolExpr::simplify`]-style evaluation at the leaves. Instances coming
//! from eCFD satisfiability tests are small (one variable per attribute /
//! active-domain-constant pair), so exponential worst-case behaviour is
//! acceptable — the problem is NP-complete after all (Proposition 3.1).

use crate::assignment::Assignment;
use crate::expr::{BoolExpr, VarId};
use std::collections::BTreeSet;

/// Maximum number of distinct variables the exact solver will attempt.
pub const MAX_EXACT_VARS: usize = 40;

/// Returns a satisfying assignment for the conjunction of `formulas`, if one
/// exists, or `None` if the conjunction is unsatisfiable.
///
/// Returns `None` as well when the instance has more than [`MAX_EXACT_VARS`]
/// distinct variables *and* no assignment was found within the budget; callers
/// that need to distinguish "unsat" from "too large" should check
/// [`exact_is_feasible`] first.
pub fn satisfying_assignment(formulas: &[BoolExpr]) -> Option<Assignment> {
    let vars: Vec<VarId> = {
        let mut set = BTreeSet::new();
        for f in formulas {
            set.extend(f.vars());
        }
        set.into_iter().collect()
    };
    let n_total = vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
    let mut assignment = Assignment::all_false(n_total);
    if backtrack(formulas, &vars, 0, &mut assignment) {
        Some(assignment)
    } else {
        None
    }
}

/// True when the conjunction of `formulas` is satisfiable.
pub fn is_satisfiable(formulas: &[BoolExpr]) -> bool {
    satisfying_assignment(formulas).is_some()
}

/// Whether the instance is small enough for the exact solver to be meaningful.
pub fn exact_is_feasible(formulas: &[BoolExpr]) -> bool {
    let mut set = BTreeSet::new();
    for f in formulas {
        set.extend(f.vars());
        if set.len() > MAX_EXACT_VARS {
            return false;
        }
    }
    true
}

fn backtrack(
    formulas: &[BoolExpr],
    vars: &[VarId],
    depth: usize,
    assignment: &mut Assignment,
) -> bool {
    if depth == vars.len() {
        return formulas.iter().all(|f| f.eval(assignment));
    }
    // Early pruning: if some formula is already false regardless of the
    // remaining (all-false-initialised) variables we cannot prune soundly in
    // general for non-monotone formulas, so we only prune at the leaves.
    for value in [true, false] {
        assignment.set(vars[depth], value);
        if backtrack(formulas, vars, depth + 1, assignment) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::VarPool;

    #[test]
    fn simple_sat_and_unsat() {
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let b = pool.fresh("b");

        // a ∧ ¬b is satisfiable.
        let formulas = vec![BoolExpr::var(a), BoolExpr::var(b).not()];
        let asg = satisfying_assignment(&formulas).expect("should be satisfiable");
        assert!(asg.get(a));
        assert!(!asg.get(b));

        // a ∧ ¬a is not.
        let formulas = vec![BoolExpr::var(a), BoolExpr::var(a).not()];
        assert!(!is_satisfiable(&formulas));
    }

    #[test]
    fn exactly_one_constraint() {
        // The MAXSS reduction's φ_i: at least one x(i,a) true, and pairwise
        // implications forcing at most one.
        let mut pool = VarPool::new();
        let xs: Vec<VarId> = (0..4).map(|i| pool.fresh(format!("x{i}"))).collect();
        let at_least_one = BoolExpr::or(xs.iter().map(|v| BoolExpr::var(*v)));
        let mut at_most_one = Vec::new();
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if i != j {
                    at_most_one.push(BoolExpr::var(xs[i]).implies(BoolExpr::var(xs[j]).not()));
                }
            }
        }
        let mut formulas = vec![at_least_one];
        formulas.extend(at_most_one);
        let asg = satisfying_assignment(&formulas).expect("exactly-one is satisfiable");
        assert_eq!(asg.true_vars().len(), 1);

        // Forcing two distinct variables true makes it unsatisfiable.
        formulas.push(BoolExpr::var(xs[0]));
        formulas.push(BoolExpr::var(xs[1]));
        assert!(!is_satisfiable(&formulas));
    }

    #[test]
    fn empty_and_constant_instances() {
        assert!(is_satisfiable(&[]));
        assert!(is_satisfiable(&[BoolExpr::t()]));
        assert!(!is_satisfiable(&[BoolExpr::f()]));
    }

    #[test]
    fn feasibility_check_counts_distinct_vars() {
        let mut pool = VarPool::new();
        let many: Vec<BoolExpr> = (0..MAX_EXACT_VARS + 5)
            .map(|i| BoolExpr::var(pool.fresh(format!("v{i}"))))
            .collect();
        assert!(!exact_is_feasible(&many));
        assert!(exact_is_feasible(&many[..10]));
    }
}
