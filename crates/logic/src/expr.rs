//! Propositional Boolean expressions.
//!
//! The MAXSS → MAXGSAT reduction of the paper produces *generalized* Boolean
//! formulas — arbitrary combinations of conjunction, disjunction, negation and
//! implication over variables `x(i, a)` ("attribute `A_i` takes constant `a`").
//! [`BoolExpr`] represents exactly that, without any CNF normal-form
//! requirement (that is what makes the target problem MAX**G**SAT rather than
//! MAXSAT).

use crate::assignment::Assignment;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a propositional variable (index into a [`crate::VarPool`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub usize);

impl VarId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An arbitrary propositional formula.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoolExpr {
    /// A constant `true` / `false`.
    Const(bool),
    /// A propositional variable.
    Var(VarId),
    /// Negation.
    Not(Box<BoolExpr>),
    /// N-ary conjunction. The empty conjunction is `true`.
    And(Vec<BoolExpr>),
    /// N-ary disjunction. The empty disjunction is `false`.
    Or(Vec<BoolExpr>),
    /// Implication `lhs → rhs`.
    Implies(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// The constant `true`.
    pub fn t() -> Self {
        BoolExpr::Const(true)
    }

    /// The constant `false`.
    pub fn f() -> Self {
        BoolExpr::Const(false)
    }

    /// A variable reference.
    pub fn var(v: VarId) -> Self {
        BoolExpr::Var(v)
    }

    /// Negation of `self`.
    ///
    /// Deliberately a consuming builder method rather than `std::ops::Not`,
    /// matching the `and`/`or` combinators beside it.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        BoolExpr::Not(Box::new(self))
    }

    /// Conjunction of the given formulas (flattening nested conjunctions).
    pub fn and(exprs: impl IntoIterator<Item = BoolExpr>) -> Self {
        let mut flat = Vec::new();
        for e in exprs {
            match e {
                BoolExpr::And(inner) => flat.extend(inner),
                BoolExpr::Const(true) => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => BoolExpr::Const(true),
            1 => flat.pop().expect("len checked"),
            _ => BoolExpr::And(flat),
        }
    }

    /// Disjunction of the given formulas (flattening nested disjunctions).
    pub fn or(exprs: impl IntoIterator<Item = BoolExpr>) -> Self {
        let mut flat = Vec::new();
        for e in exprs {
            match e {
                BoolExpr::Or(inner) => flat.extend(inner),
                BoolExpr::Const(false) => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => BoolExpr::Const(false),
            1 => flat.pop().expect("len checked"),
            _ => BoolExpr::Or(flat),
        }
    }

    /// Implication `self → rhs`.
    pub fn implies(self, rhs: BoolExpr) -> Self {
        BoolExpr::Implies(Box::new(self), Box::new(rhs))
    }

    /// Evaluates the formula under an assignment.
    ///
    /// Variables beyond the assignment's length evaluate to `false`.
    pub fn eval(&self, assignment: &Assignment) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Var(v) => assignment.get(*v),
            BoolExpr::Not(e) => !e.eval(assignment),
            BoolExpr::And(es) => es.iter().all(|e| e.eval(assignment)),
            BoolExpr::Or(es) => es.iter().any(|e| e.eval(assignment)),
            BoolExpr::Implies(a, b) => !a.eval(assignment) || b.eval(assignment),
        }
    }

    /// Collects the set of variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            BoolExpr::Const(_) => {}
            BoolExpr::Var(v) => {
                out.insert(*v);
            }
            BoolExpr::Not(e) => e.collect_vars(out),
            BoolExpr::And(es) | BoolExpr::Or(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            BoolExpr::Implies(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Number of nodes in the expression tree (a size measure used to verify
    /// that the MAXSS reduction stays polynomial).
    pub fn size(&self) -> usize {
        match self {
            BoolExpr::Const(_) | BoolExpr::Var(_) => 1,
            BoolExpr::Not(e) => 1 + e.size(),
            BoolExpr::And(es) | BoolExpr::Or(es) => {
                1 + es.iter().map(BoolExpr::size).sum::<usize>()
            }
            BoolExpr::Implies(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Constant-folds the formula: removes constants from connectives and
    /// collapses subtrees whose value no longer depends on any variable.
    pub fn simplify(&self) -> BoolExpr {
        match self {
            BoolExpr::Const(_) | BoolExpr::Var(_) => self.clone(),
            BoolExpr::Not(e) => match e.simplify() {
                BoolExpr::Const(b) => BoolExpr::Const(!b),
                BoolExpr::Not(inner) => *inner,
                other => BoolExpr::Not(Box::new(other)),
            },
            BoolExpr::And(es) => {
                let mut out = Vec::new();
                for e in es {
                    match e.simplify() {
                        BoolExpr::Const(false) => return BoolExpr::Const(false),
                        BoolExpr::Const(true) => {}
                        BoolExpr::And(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => BoolExpr::Const(true),
                    1 => out.pop().expect("len checked"),
                    _ => BoolExpr::And(out),
                }
            }
            BoolExpr::Or(es) => {
                let mut out = Vec::new();
                for e in es {
                    match e.simplify() {
                        BoolExpr::Const(true) => return BoolExpr::Const(true),
                        BoolExpr::Const(false) => {}
                        BoolExpr::Or(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                match out.len() {
                    0 => BoolExpr::Const(false),
                    1 => out.pop().expect("len checked"),
                    _ => BoolExpr::Or(out),
                }
            }
            BoolExpr::Implies(a, b) => match (a.simplify(), b.simplify()) {
                (BoolExpr::Const(false), _) => BoolExpr::Const(true),
                (BoolExpr::Const(true), rhs) => rhs,
                (_, BoolExpr::Const(true)) => BoolExpr::Const(true),
                (lhs, BoolExpr::Const(false)) => BoolExpr::Not(Box::new(lhs)).simplify(),
                (lhs, rhs) => BoolExpr::Implies(Box::new(lhs), Box::new(rhs)),
            },
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Const(b) => write!(f, "{b}"),
            BoolExpr::Var(v) => write!(f, "{v}"),
            BoolExpr::Not(e) => write!(f, "¬({e})"),
            BoolExpr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Implies(a, b) => write!(f, "({a} → {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::VarPool;

    fn pool3() -> (VarPool, VarId, VarId, VarId) {
        let mut pool = VarPool::new();
        let a = pool.fresh("a");
        let b = pool.fresh("b");
        let c = pool.fresh("c");
        (pool, a, b, c)
    }

    #[test]
    fn eval_basic_connectives() {
        let (pool, a, b, _) = pool3();
        let mut asg = Assignment::all_false(pool.len());
        asg.set(a, true);

        assert!(BoolExpr::var(a).eval(&asg));
        assert!(!BoolExpr::var(b).eval(&asg));
        assert!(BoolExpr::var(b).not().eval(&asg));
        assert!(BoolExpr::or([BoolExpr::var(a), BoolExpr::var(b)]).eval(&asg));
        assert!(!BoolExpr::and([BoolExpr::var(a), BoolExpr::var(b)]).eval(&asg));
        assert!(BoolExpr::var(b).implies(BoolExpr::var(a)).eval(&asg));
        assert!(!BoolExpr::var(a).implies(BoolExpr::var(b)).eval(&asg));
        assert!(BoolExpr::t().eval(&asg));
        assert!(!BoolExpr::f().eval(&asg));
    }

    #[test]
    fn empty_connectives_have_identity_semantics() {
        let asg = Assignment::all_false(0);
        assert!(BoolExpr::and(std::iter::empty()).eval(&asg));
        assert!(!BoolExpr::or(std::iter::empty()).eval(&asg));
    }

    #[test]
    fn and_or_flatten_nested_structure() {
        let (_, a, b, c) = pool3();
        let e = BoolExpr::and([
            BoolExpr::and([BoolExpr::var(a), BoolExpr::var(b)]),
            BoolExpr::var(c),
        ]);
        assert_eq!(
            e,
            BoolExpr::And(vec![BoolExpr::var(a), BoolExpr::var(b), BoolExpr::var(c)])
        );
        let e = BoolExpr::or([
            BoolExpr::or([BoolExpr::var(a), BoolExpr::var(b)]),
            BoolExpr::var(c),
        ]);
        assert_eq!(
            e,
            BoolExpr::Or(vec![BoolExpr::var(a), BoolExpr::var(b), BoolExpr::var(c)])
        );
    }

    #[test]
    fn vars_and_size() {
        let (_, a, b, c) = pool3();
        let e = BoolExpr::var(a).implies(BoolExpr::or([BoolExpr::var(b), BoolExpr::var(c).not()]));
        assert_eq!(e.vars(), [a, b, c].into_iter().collect());
        assert_eq!(e.size(), 6);
    }

    #[test]
    fn simplify_constant_folds() {
        let (_, a, _, _) = pool3();
        let e = BoolExpr::and([BoolExpr::t(), BoolExpr::var(a), BoolExpr::t()]);
        assert_eq!(e.simplify(), BoolExpr::var(a));

        let e = BoolExpr::and([BoolExpr::var(a), BoolExpr::f()]);
        assert_eq!(e.simplify(), BoolExpr::f());

        let e = BoolExpr::or([BoolExpr::var(a), BoolExpr::t()]);
        assert_eq!(e.simplify(), BoolExpr::t());

        let e = BoolExpr::Not(Box::new(BoolExpr::Not(Box::new(BoolExpr::var(a)))));
        assert_eq!(e.simplify(), BoolExpr::var(a));

        let e = BoolExpr::f().implies(BoolExpr::var(a));
        assert_eq!(e.simplify(), BoolExpr::t());
        let e = BoolExpr::t().implies(BoolExpr::var(a));
        assert_eq!(e.simplify(), BoolExpr::var(a));
        let e = BoolExpr::var(a).implies(BoolExpr::f());
        assert_eq!(e.simplify(), BoolExpr::var(a).not());
    }

    #[test]
    fn simplify_preserves_semantics_on_all_assignments() {
        let (pool, a, b, c) = pool3();
        let exprs = vec![
            BoolExpr::and([
                BoolExpr::var(a),
                BoolExpr::or([BoolExpr::var(b), BoolExpr::f()]),
            ]),
            BoolExpr::var(a).implies(BoolExpr::and([BoolExpr::var(b), BoolExpr::var(c)])),
            BoolExpr::or([
                BoolExpr::var(a).not(),
                BoolExpr::and([BoolExpr::t(), BoolExpr::var(c)]),
            ]),
        ];
        for e in exprs {
            let s = e.simplify();
            for bits in 0..(1u32 << pool.len()) {
                let asg = Assignment::from_bits(bits as u64, pool.len());
                assert_eq!(e.eval(&asg), s.eval(&asg), "expr {e} vs {s}");
            }
        }
    }

    #[test]
    fn display_is_parenthesised() {
        let (_, a, b, _) = pool3();
        let e = BoolExpr::and([BoolExpr::var(a), BoolExpr::var(b).not()]);
        assert_eq!(e.to_string(), "(x0 ∧ ¬(x1))");
    }
}
