//! Truth assignments and variable pools.

use crate::expr::VarId;
use serde::{Deserialize, Serialize};

/// Allocates propositional variables and remembers a human-readable name for
/// each (the MAXSS reduction names variables `x(i, a)` after an attribute
/// index and a constant).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarPool {
    names: Vec<String>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        VarPool::default()
    }

    /// Allocates a fresh variable with the given name.
    pub fn fresh(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.names.len());
        self.names.push(name.into());
        id
    }

    /// Number of variables allocated so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variables have been allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name associated with a variable.
    pub fn name(&self, var: VarId) -> Option<&str> {
        self.names.get(var.index()).map(String::as_str)
    }

    /// Looks a variable up by name (linear scan; pools in this codebase are
    /// small — one variable per (attribute, active-domain constant) pair).
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.names.iter().position(|n| n == name).map(VarId)
    }
}

/// A total truth assignment over the variables `x0 .. x_{n-1}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    /// The all-false assignment over `n` variables.
    pub fn all_false(n: usize) -> Self {
        Assignment {
            values: vec![false; n],
        }
    }

    /// The all-true assignment over `n` variables.
    pub fn all_true(n: usize) -> Self {
        Assignment {
            values: vec![true; n],
        }
    }

    /// Builds an assignment from the low `n` bits of `bits` (bit `i` gives the
    /// value of variable `i`). Used by the exhaustive solvers.
    pub fn from_bits(bits: u64, n: usize) -> Self {
        Assignment {
            values: (0..n).map(|i| (bits >> i) & 1 == 1).collect(),
        }
    }

    /// Builds an assignment from an explicit boolean vector.
    pub fn from_vec(values: Vec<bool>) -> Self {
        Assignment { values }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the assignment covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of a variable; out-of-range variables read as `false`.
    pub fn get(&self, var: VarId) -> bool {
        self.values.get(var.index()).copied().unwrap_or(false)
    }

    /// Sets the value of a variable (growing the assignment if needed).
    pub fn set(&mut self, var: VarId, value: bool) {
        if var.index() >= self.values.len() {
            self.values.resize(var.index() + 1, false);
        }
        self.values[var.index()] = value;
    }

    /// Flips the value of a variable.
    pub fn flip(&mut self, var: VarId) {
        let cur = self.get(var);
        self.set(var, !cur);
    }

    /// Variables currently set to true.
    pub fn true_vars(&self) -> Vec<VarId> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Raw access to the underlying vector.
    pub fn as_slice(&self) -> &[bool] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_allocates_sequential_ids_with_names() {
        let mut pool = VarPool::new();
        assert!(pool.is_empty());
        let a = pool.fresh("x(0,NYC)");
        let b = pool.fresh("x(0,LI)");
        assert_eq!(a, VarId(0));
        assert_eq!(b, VarId(1));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.name(a), Some("x(0,NYC)"));
        assert_eq!(pool.name(VarId(9)), None);
        assert_eq!(pool.lookup("x(0,LI)"), Some(b));
        assert_eq!(pool.lookup("nope"), None);
    }

    #[test]
    fn assignment_get_set_flip() {
        let mut asg = Assignment::all_false(3);
        assert!(!asg.get(VarId(0)));
        asg.set(VarId(0), true);
        assert!(asg.get(VarId(0)));
        asg.flip(VarId(0));
        assert!(!asg.get(VarId(0)));
        // Out-of-range reads are false; sets grow the assignment.
        assert!(!asg.get(VarId(10)));
        asg.set(VarId(10), true);
        assert_eq!(asg.len(), 11);
        assert!(asg.get(VarId(10)));
    }

    #[test]
    fn from_bits_uses_little_endian_bit_order() {
        let asg = Assignment::from_bits(0b101, 3);
        assert_eq!(asg.as_slice(), &[true, false, true]);
        assert_eq!(asg.true_vars(), vec![VarId(0), VarId(2)]);
    }

    #[test]
    fn all_true_and_from_vec() {
        assert_eq!(Assignment::all_true(2).as_slice(), &[true, true]);
        assert_eq!(
            Assignment::from_vec(vec![false, true]).true_vars(),
            vec![VarId(1)]
        );
        assert!(Assignment::all_false(0).is_empty());
    }
}
