//! # ecfd-logic
//!
//! Propositional-logic substrate for the eCFD reproduction.
//!
//! Section IV of the paper reduces the *maximum satisfiable subset* problem for
//! eCFDs (MAXSS) to the *Maximum Generalized Satisfiability* problem (MAXGSAT):
//! given a set of arbitrary Boolean expressions, find a truth assignment that
//! satisfies as many of them as possible. The paper then "applies existing
//! approximation algorithms for MAXGSAT"; this crate supplies those algorithms,
//! along with the Boolean-expression representation the reduction produces:
//!
//! * [`BoolExpr`] — arbitrary propositional formulas over [`VarId`] variables,
//!   allocated from a named [`VarPool`];
//! * [`Assignment`] — truth assignments and evaluation;
//! * [`MaxGSatInstance`] — a MAXGSAT instance plus several solvers:
//!   exhaustive exact search for small instances, repeated random sampling,
//!   a derandomised conditional-expectation greedy (Johnson-style), and a
//!   GSAT-flavoured hill-climbing local search.
//!
//! The crate has no knowledge of eCFDs; `ecfd-core`'s `maxss` module builds
//! instances of these types from constraint sets.
//!
//! ## Example
//!
//! ```
//! use ecfd_logic::{BoolExpr, MaxGSatInstance, VarId};
//!
//! // Two variables, three formulas; x0 ∧ ¬x0 cannot both hold, so the
//! // optimum satisfies two of the three.
//! let x0 = || BoolExpr::var(VarId(0));
//! let x1 = || BoolExpr::var(VarId(1));
//! let instance = MaxGSatInstance::new(2, vec![
//!     x0(),
//!     x0().not(),
//!     BoolExpr::or([BoolExpr::and([x0(), x1()]), x1()]),
//! ]);
//! let outcome = instance.solve_exhaustive();
//! assert_eq!(outcome.num_satisfied(), 2);
//! assert!(outcome.proven_optimal);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod expr;
pub mod maxgsat;
pub mod sat;

pub use assignment::{Assignment, VarPool};
pub use expr::{BoolExpr, VarId};
pub use maxgsat::{
    HardSoftInstance, HardSoftOutcome, MaxGSatInstance, MaxGSatOutcome, MaxGSatSolver,
};
pub use sat::{is_satisfiable, satisfying_assignment};
