//! The TCP front end: a listener plus scoped per-connection workers.

use crate::durable::RecoveryReport;
use crate::hub::Hub;
use crate::protocol::{delta_to_ops, MvLine, ReplayRecord, Request, Response};
use crate::sharded::{ShardedConfig, ShardedHub};
use crate::writer::Writer;
use crate::Result;
use ecfd_detect::EvidenceReport;
use ecfd_repair::RepairOptions;
use ecfd_session::{Session, Snapshot};
use ecfd_wal::WalRecord;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Hard upper bound on records per `REPLAY` response, whatever the client
/// asked for — bounds response-line length.
const REPLAY_MAX_CLAMP: usize = 1024;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port — the default,
    /// so tests and examples never collide).
    pub addr: String,
    /// Capacity of the ingest queue (backpressure threshold).
    pub queue_capacity: usize,
    /// Maximum number of queued deltas the writer applies (in ticket order)
    /// per published epoch.
    pub batch_max: usize,
    /// How long a `SYNC` request waits before reporting a timeout.
    pub sync_timeout: Duration,
    /// Socket read timeout; doubles as the shutdown-poll interval of idle
    /// connections.
    pub read_timeout: Duration,
    /// Accept-loop poll interval while no connection is pending.
    pub poll_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 64,
            batch_max: 32,
            sync_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_millis(100),
            poll_interval: Duration::from_millis(2),
        }
    }
}

/// A bound-but-not-yet-running server: the TCP face of a [`Hub`] + [`Writer`]
/// pair. [`Server::run`] blocks the calling thread; grab a
/// [`ServerHandle`] first to shut it down from elsewhere.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    hub: Arc<Hub>,
    writer: Writer,
    config: ServeConfig,
}

/// A cheap, cloneable remote control for a running [`Server`] (or bare hub):
/// request shutdown, read the epoch, take in-process snapshots.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    hub: Arc<Hub>,
}

impl ServerHandle {
    /// Requests shutdown: the queue closes, pending deltas drain, connection
    /// workers and the accept loop exit, and [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.hub.shutdown();
    }

    /// The shared hub, for in-process readers living next to the server.
    pub fn hub(&self) -> &Arc<Hub> {
        &self.hub
    }
}

impl Server {
    /// Binds the listener and bootstraps the writer: takes ownership of a
    /// prepared session (data loaded, constraints registered), publishes the
    /// initial snapshot, and returns the server ready to [`Server::run`].
    pub fn bind(session: Session, config: ServeConfig) -> Result<Server> {
        let (writer, hub) = Writer::bootstrap(session, config.queue_capacity, config.batch_max)?;
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            hub,
            writer,
            config,
        })
    }

    /// Like [`Server::bind`], but durable: the WAL in `wal_dir` is opened
    /// (created if missing), its records are replayed over `session` before
    /// serving, and every accepted delta is logged + fsynced before its ACK.
    /// See [`Writer::bootstrap_durable`] for the recovery contract.
    pub fn bind_durable(
        session: Session,
        config: ServeConfig,
        wal_dir: &Path,
    ) -> Result<(Server, RecoveryReport)> {
        let (writer, hub, recovery) =
            Writer::bootstrap_durable(session, config.queue_capacity, config.batch_max, wal_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        Ok((
            Server {
                listener,
                hub,
                writer,
                config,
            },
            recovery,
        ))
    }

    /// The bound address (resolves the ephemeral port of `127.0.0.1:0`).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            hub: self.hub.clone(),
        }
    }

    /// Serves until [`ServerHandle::shutdown`] is called: the writer loop and
    /// one worker per accepted connection all run as [`std::thread::scope`]
    /// threads, so this call owns every serving thread and returns only after
    /// all of them (and the drained session) are done. Returns the session
    /// in its final state.
    pub fn run(self) -> Result<Session> {
        let Server {
            listener,
            hub,
            writer,
            config,
        } = self;
        listener.set_nonblocking(true)?;
        let session = std::thread::scope(|scope| -> Result<Session> {
            let writer_thread = scope.spawn(|| writer.run(&hub));
            loop {
                if hub.is_shutdown() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let hub = &hub;
                        let config = &config;
                        scope.spawn(move || {
                            let _ = handle_connection(stream, hub, config);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(config.poll_interval);
                    }
                    Err(_) => break,
                }
            }
            // Make sure the writer drains and exits even if the accept loop
            // stopped for a reason other than an explicit shutdown.
            hub.shutdown();
            writer_thread.join().expect("writer thread panicked")
        })?;
        Ok(session)
    }
}

/// The line-per-request connection loop shared by the unsharded and sharded
/// servers: read a line, answer a line, until `QUIT`, EOF or shutdown.
fn serve_lines(
    stream: TcpStream,
    read_timeout: Duration,
    is_shutdown: impl Fn() -> bool,
    mut respond: impl FnMut(&str) -> Response,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if is_shutdown() {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                let response = respond(&line);
                let quit = matches!(response, Response::Bye);
                writer.write_all(response.render().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                line.clear();
                if quit {
                    return Ok(());
                }
            }
            // Timeout mid-wait: partial bytes (if any) stay in `line`; loop
            // to poll the shutdown flag and keep accumulating.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serves one connection against an unsharded hub.
fn handle_connection(stream: TcpStream, hub: &Hub, config: &ServeConfig) -> std::io::Result<()> {
    // The most recent ticket ACKed on *this* connection: SYNC barriers on
    // it, so one client's barrier is never hostage to another's backlog.
    let mut last_ticket: u64 = 0;
    serve_lines(
        stream,
        config.read_timeout,
        || hub.is_shutdown(),
        |line| {
            respond_counted(line, |request| {
                dispatch(request, hub, config, &mut last_ticket)
            })
        },
    )
}

/// Parses one request line and runs it through `dispatch`, with the verb
/// accounting both servers share. Never panics on client input — malformed
/// lines come back as `ERR`.
///
/// Every parsed request is counted and timed under its wire verb
/// (`serve.requests{verb=…}` / `serve.request.ns{verb=…}`); unparseable
/// lines are counted under the pseudo-verb `INVALID`.
fn respond_counted(line: &str, dispatch: impl FnOnce(Request) -> Response) -> Response {
    let registry = ecfd_obs::registry();
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => {
            registry
                .counter_with("serve.requests", &[("verb", "INVALID")])
                .inc();
            return Response::Err { message };
        }
    };
    let verb = request.verb();
    registry
        .counter_with("serve.requests", &[("verb", verb)])
        .inc();
    registry
        .histogram_with("serve.request.ns", &[("verb", verb)])
        .time(|| dispatch(request))
}

/// The verb dispatch behind [`respond`], separated so the caller can time it.
fn dispatch(request: Request, hub: &Hub, config: &ServeConfig, last_ticket: &mut u64) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Quit => Response::Bye,
        Request::Epoch => {
            let snap = hub.snapshot();
            let stats = hub.stats();
            Response::Epoch {
                epoch: snap.epoch(),
                rows: snap.num_rows(),
                sv: snap.report().num_sv(),
                mv: snap.report().num_mv(),
                queued: stats.queued,
                errors: stats.write_errors,
            }
        }
        Request::Detect { fresh } => {
            let snap = hub.snapshot();
            let report = if fresh {
                match snap.detect_fresh() {
                    Ok(report) => report,
                    Err(e) => {
                        return Response::Err {
                            message: e.to_string(),
                        }
                    }
                }
            } else {
                snap.report().clone()
            };
            Response::Report {
                epoch: snap.epoch(),
                total: report.total_rows,
                sv: report.sv_rows.iter().map(|r| r.as_u64()).collect(),
                mv: report.mv_rows.iter().map(|r| r.as_u64()).collect(),
            }
        }
        Request::Check => {
            let snap = hub.snapshot();
            match snap.detect_fresh() {
                Ok(fresh) => Response::Checked {
                    epoch: snap.epoch(),
                    total: fresh.total_rows,
                    sv: fresh.num_sv(),
                    mv: fresh.num_mv(),
                    consistent: &fresh == snap.report(),
                },
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            }
        }
        Request::Explain => {
            let snap = hub.snapshot();
            evidence_response(&snap)
        }
        Request::ExplainPlan => {
            let snap = hub.snapshot();
            match ecfd_plan::Plan::compile(snap.constraints()) {
                Ok(plan) => Response::PlanText {
                    text: plan.render(),
                },
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            }
        }
        Request::Apply { ops } => {
            let snap = hub.snapshot();
            let delta = match Request::ops_to_delta(&ops, snap.schema()) {
                Ok(delta) => delta,
                Err(message) => return Response::Err { message },
            };
            match hub.submit(delta) {
                Ok(ticket) => {
                    *last_ticket = ticket;
                    Response::Ack {
                        ticket,
                        epoch: snap.epoch(),
                    }
                }
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            }
        }
        Request::Sync => match hub.sync_to(*last_ticket, config.sync_timeout) {
            Ok(epoch) => Response::Synced { epoch },
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        },
        Request::RepairPlan => {
            let snap = hub.snapshot();
            match snap.repair_plan(RepairOptions::default()) {
                Ok(plan) => Response::Plan {
                    epoch: snap.epoch(),
                    deletions: plan.num_deletions(),
                    modifications: plan.num_modifications(),
                    cost: plan.total_cost(),
                },
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            }
        }
        Request::Replay { cursor, max } => replay_response(hub, cursor, max),
        Request::Stats { prefix } => Response::Metrics {
            text: match prefix {
                Some(prefix) => hub.metrics().render_prefix(&prefix),
                None => hub.metrics().render(),
            },
        },
        Request::Info => {
            let queue = hub.queue();
            Response::Info {
                version: env!("CARGO_PKG_VERSION").to_string(),
                epoch: hub.epoch(),
                accepted: queue.last_ticket(),
                applied: queue.applied_ticket(),
                wal: hub.wal_mode().to_string(),
                follower: hub.is_follower(),
            }
        }
    }
}

// ── the sharded front end ────────────────────────────────────────────────

/// The TCP face of a [`ShardedHub`]: the same wire protocol as [`Server`],
/// served over `N` shards behind the router + merge layer. Reader verbs
/// (`DETECT`, `EXPLAIN`, `EPOCH`, …) answer from the *merged* cross-shard
/// view; `APPLY` routes through the global-ticket router; `SYNC` barriers on
/// the connection's per-shard ACK high-water marks. `REPLAY` is the one verb
/// a sharded server refuses — followers must tail the per-shard logs.
#[derive(Debug)]
pub struct ShardedServer {
    listener: TcpListener,
    hub: Arc<ShardedHub>,
    writers: Vec<Writer>,
    config: ServeConfig,
}

/// A cheap, cloneable remote control for a running [`ShardedServer`].
#[derive(Debug, Clone)]
pub struct ShardedHandle {
    hub: Arc<ShardedHub>,
}

impl ShardedHandle {
    /// Requests shutdown on every shard; [`ShardedServer::run`] returns once
    /// all shard writers have drained.
    pub fn shutdown(&self) {
        self.hub.shutdown();
    }

    /// The shared sharded hub, for in-process readers.
    pub fn hub(&self) -> &Arc<ShardedHub> {
        &self.hub
    }
}

impl ShardedServer {
    /// Binds the listener and bootstraps one writer per shard from a
    /// prepared template session — see [`ShardedHub::bootstrap`].
    pub fn bind(
        session: Session,
        config: ServeConfig,
        sharding: &ShardedConfig,
    ) -> Result<ShardedServer> {
        let mut sharding = sharding.clone();
        sharding.queue_capacity = config.queue_capacity;
        sharding.batch_max = config.batch_max;
        let (writers, hub) = ShardedHub::bootstrap(session, &sharding)?;
        let listener = TcpListener::bind(&config.addr)?;
        Ok(ShardedServer {
            listener,
            hub,
            writers,
            config,
        })
    }

    /// Like [`ShardedServer::bind`], but durable: each shard recovers its
    /// own `wal_dir/shard-N/` segment and the merged checkpoint is
    /// re-verified — see [`ShardedHub::bootstrap_durable`]. Returns the
    /// per-shard recovery reports.
    pub fn bind_durable(
        session: Session,
        config: ServeConfig,
        sharding: &ShardedConfig,
        wal_dir: &Path,
    ) -> Result<(ShardedServer, Vec<RecoveryReport>)> {
        let mut sharding = sharding.clone();
        sharding.queue_capacity = config.queue_capacity;
        sharding.batch_max = config.batch_max;
        let (writers, hub, recoveries) =
            ShardedHub::bootstrap_durable(session, &sharding, wal_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        Ok((
            ShardedServer {
                listener,
                hub,
                writers,
                config,
            },
            recoveries,
        ))
    }

    /// The bound address (resolves the ephemeral port of `127.0.0.1:0`).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ShardedHandle {
        ShardedHandle {
            hub: self.hub.clone(),
        }
    }

    /// Serves until shutdown: one writer thread per shard plus one worker
    /// per accepted connection, all scoped. A dead shard writer trips the
    /// sharded shutdown flag, so the accept loop exits rather than serving
    /// a deployment that can no longer apply writes. Returns the per-shard
    /// sessions in their final states.
    pub fn run(self) -> Result<Vec<Session>> {
        let ShardedServer {
            listener,
            hub,
            writers,
            config,
        } = self;
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| -> Result<Vec<Session>> {
            let writer_threads: Vec<_> = writers
                .into_iter()
                .enumerate()
                .map(|(s, writer)| {
                    let shard_hub = Arc::clone(&hub.shard_hubs()[s]);
                    scope.spawn(move || writer.run(&shard_hub))
                })
                .collect();
            loop {
                if hub.is_shutdown() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let hub = &hub;
                        let config = &config;
                        scope.spawn(move || {
                            let _ = handle_sharded_connection(stream, hub, config);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(config.poll_interval);
                    }
                    Err(_) => break,
                }
            }
            hub.shutdown();
            let mut sessions = Vec::new();
            for thread in writer_threads {
                sessions.push(thread.join().expect("shard writer thread panicked")?);
            }
            Ok(sessions)
        })
    }
}

/// Serves one connection against a sharded hub.
fn handle_sharded_connection(
    stream: TcpStream,
    hub: &ShardedHub,
    config: &ServeConfig,
) -> std::io::Result<()> {
    // Per-shard ACK high-water marks of *this* connection (0 = nothing
    // submitted to that shard yet): the SYNC barrier waits on exactly these.
    let mut last: Vec<u64> = vec![0; hub.num_shards()];
    serve_lines(
        stream,
        config.read_timeout,
        || hub.is_shutdown(),
        |line| {
            respond_counted(line, |request| {
                dispatch_sharded(request, hub, config, &mut last)
            })
        },
    )
}

/// The sharded verb dispatch: reader verbs answer from the merged view,
/// `APPLY` goes through the router, `SYNC` barriers per shard.
fn dispatch_sharded(
    request: Request,
    hub: &ShardedHub,
    config: &ServeConfig,
    last: &mut [u64],
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Quit => Response::Bye,
        Request::Epoch => match hub.merged() {
            Ok(merged) => {
                let stats = hub.stats();
                Response::Epoch {
                    epoch: merged.epoch(),
                    rows: merged.report.total_rows,
                    sv: merged.report.num_sv(),
                    mv: merged.report.num_mv(),
                    queued: stats.queued,
                    errors: stats.write_errors,
                }
            }
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        },
        Request::Detect { fresh } => {
            let merged = if fresh {
                hub.merged_fresh().map(Arc::new)
            } else {
                hub.merged()
            };
            match merged {
                Ok(merged) => Response::Report {
                    epoch: merged.epoch(),
                    total: merged.report.total_rows,
                    sv: merged.report.sv_rows.iter().map(|r| r.as_u64()).collect(),
                    mv: merged.report.mv_rows.iter().map(|r| r.as_u64()).collect(),
                },
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            }
        }
        Request::Check => {
            // The strong sharded consistency check: compose the shards into
            // one single-session snapshot (the oracle path) and compare its
            // from-scratch report against the merge layer's answer.
            let merged = match hub.merged() {
                Ok(merged) => merged,
                Err(e) => {
                    return Response::Err {
                        message: e.to_string(),
                    }
                }
            };
            match hub.compose() {
                Ok(composed) => Response::Checked {
                    epoch: merged.epoch(),
                    total: composed.report().total_rows,
                    sv: composed.report().num_sv(),
                    mv: composed.report().num_mv(),
                    consistent: composed.report() == &merged.report,
                },
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            }
        }
        Request::Explain => match hub.merged() {
            Ok(merged) => evidence_parts(merged.epoch(), &merged.evidence),
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        },
        Request::ExplainPlan => {
            // Every shard registers the same constraint set; compile the
            // plan from shard 0's published snapshot.
            let snap = hub.shard_hubs()[0].snapshot();
            match ecfd_plan::Plan::compile(snap.constraints()) {
                Ok(plan) => Response::PlanText {
                    text: plan.render(),
                },
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            }
        }
        Request::Apply { ops } => {
            let delta = match Request::ops_to_delta(&ops, hub.schema()) {
                Ok(delta) => delta,
                Err(message) => return Response::Err { message },
            };
            match hub.submit(delta) {
                Ok(receipt) => {
                    for &(s, ticket) in &receipt.shard_tickets {
                        last[s] = last[s].max(ticket);
                    }
                    Response::Ack {
                        ticket: receipt.global,
                        epoch: hub.epoch(),
                    }
                }
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            }
        }
        Request::Sync => match hub.sync_tickets(last, config.sync_timeout) {
            Ok(epoch) => Response::Synced { epoch },
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        },
        Request::RepairPlan => match hub.compose() {
            Ok(composed) => match composed.repair_plan(RepairOptions::default()) {
                Ok(plan) => Response::Plan {
                    epoch: composed.epoch(),
                    deletions: plan.num_deletions(),
                    modifications: plan.num_modifications(),
                    cost: plan.total_cost(),
                },
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            },
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        },
        Request::Replay { .. } => Response::Err {
            message: "REPLAY is not available on a sharded server; \
                      tail the per-shard WAL segments instead"
                .into(),
        },
        Request::Stats { prefix } => Response::Metrics {
            text: match prefix {
                Some(prefix) => ecfd_obs::registry().render_prefix(&prefix),
                None => ecfd_obs::registry().render(),
            },
        },
        Request::Info => Response::Info {
            version: env!("CARGO_PKG_VERSION").to_string(),
            epoch: hub.epoch(),
            accepted: hub.accepted_global(),
            applied: hub.applied_global(),
            wal: hub.wal_mode().to_string(),
            follower: false,
        },
    }
}

/// Serves one `REPLAY` page straight from the WAL file. Everything in the
/// log's valid prefix is durable and (eventually) applied, so the whole
/// prefix is streamable; a torn tail from an append racing this read simply
/// ends the page early — the next poll picks it up. Cursors are record
/// positions in the file, so checkpoint records occupy positions too and a
/// page boundary can never silently skip one.
fn replay_response(hub: &Hub, cursor: u64, max: usize) -> Response {
    let Some(path) = hub.wal_path() else {
        return Response::Err {
            message: "REPLAY requires a durable server (start with --wal-dir)".into(),
        };
    };
    let records = match ecfd_wal::read_records(path) {
        Ok(records) => records,
        Err(e) => {
            return Response::Err {
                message: e.to_string(),
            }
        }
    };
    let start = (cursor as usize).min(records.len());
    let end = (start + max.clamp(1, REPLAY_MAX_CLAMP)).min(records.len());
    let page = records[start..end]
        .iter()
        .map(|record| match record {
            WalRecord::Delta { ticket, delta } => ReplayRecord::Delta {
                ticket: *ticket,
                ops: delta_to_ops(delta),
            },
            // Sharded logs stream the same way; the pre-assigned ids are an
            // apply-time detail the wire replay format does not carry.
            WalRecord::ScheduledDelta { ticket, delta, .. } => ReplayRecord::Delta {
                ticket: *ticket,
                ops: delta_to_ops(delta),
            },
            WalRecord::Checkpoint {
                epoch,
                last_ticket,
                report_hash,
            } => ReplayRecord::Checkpoint {
                epoch: *epoch,
                last_ticket: *last_ticket,
                report_hash: *report_hash,
            },
        })
        .collect();
    Response::Replayed {
        records: page,
        next: end as u64,
    }
}

fn evidence_response(snap: &Snapshot) -> Response {
    evidence_parts(snap.epoch(), snap.evidence())
}

fn evidence_parts(epoch: u64, evidence: &EvidenceReport) -> Response {
    Response::Evidence {
        epoch,
        total: evidence.total_rows,
        sv: evidence
            .sv
            .iter()
            .map(|e| (e.row.as_u64(), e.source.constraint, e.source.pattern))
            .collect(),
        mv: evidence
            .mv_groups
            .iter()
            .map(|g| MvLine {
                constraint: g.source.constraint,
                pattern: g.source.pattern,
                key: g.group_key.iter().map(|v| v.to_string()).collect(),
                rows: g.rows.iter().map(|r| r.as_u64()).collect(),
            })
            .collect(),
    }
}
