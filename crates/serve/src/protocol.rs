//! The line-delimited request/response protocol of the `serve` binary.
//!
//! One request line in, one response line out, UTF-8, `\n`-terminated.
//! Tokens are separated by single spaces; free-form payloads (tuple fields,
//! group-key values, error messages) are percent-escaped so they can never
//! collide with the separators. Both directions have a full
//! `parse(render(x)) == x` round trip, asserted by this module's tests and
//! the workspace protocol test.
//!
//! ## Requests
//!
//! | line                  | meaning                                            |
//! |-----------------------|----------------------------------------------------|
//! | `PING`                | liveness check                                     |
//! | `EPOCH`               | current epoch + queue/error counters               |
//! | `DETECT`              | the published report at the current epoch          |
//! | `DETECT FRESH`        | re-detect from scratch over the current snapshot   |
//! | `CHECK`               | run both on *one* snapshot, report equality        |
//! | `EXPLAIN`             | the evidence behind the published report           |
//! | `EXPLAIN PLAN`        | the compiled detection plan for the served constraints |
//! | `APPLY <op> [<op>…]`  | enqueue a delta; `+f1,f2,…` inserts, `-f1,f2,…` deletes |
//! | `SYNC`                | block until every prior `APPLY` *on this connection* is applied + published |
//! | `REPAIR-PLAN`         | plan (not apply) a repair of the current violations |
//! | `REPLAY <cursor> [<max>]` | stream up to `max` applied WAL records starting at log position `cursor` (durable servers only) |
//! | `STATS [<prefix>]`    | metrics exposition text (optionally filtered to names starting with `prefix`) |
//! | `INFO`                | cheap liveness probe: version, epoch, tickets, WAL mode, follower status |
//! | `QUIT`                | close the connection                               |
//!
//! Tuple fields in `APPLY` are percent-escaped and comma-separated; they are
//! parsed against the served relation's base schema (`Int` / `Bool` columns
//! parse typed, the literal `NULL` is the null value).
//!
//! ## Responses
//!
//! | first token | shape                                                        |
//! |-------------|--------------------------------------------------------------|
//! | `PONG`      | `PONG`                                                       |
//! | `EPOCH`     | `EPOCH <e> ROWS <n> SV <n> MV <n> QUEUED <n> ERRORS <n>`     |
//! | `REPORT`    | `REPORT EPOCH <e> TOTAL <n> SV <ids> MV <ids>`               |
//! | `CHECKED`   | `CHECKED EPOCH <e> TOTAL <n> SV <n> MV <n> CONSISTENT <bool>`|
//! | `EVIDENCE`  | `EVIDENCE EPOCH <e> TOTAL <n> SV <sv-list> MV <mv-list>`     |
//! | `ACK`       | `ACK TICKET <t> EPOCH <e>`                                   |
//! | `SYNCED`    | `SYNCED EPOCH <e>`                                           |
//! | `PLAN`      | `PLAN EPOCH <e> DELETIONS <n> MODIFICATIONS <n> COST <f>`    |
//! | `REPLAYED`  | `REPLAYED RECORDS <n> <records> NEXT <cursor>`               |
//! | `METRICS`   | `METRICS LINES <n> <escaped exposition text>`                |
//! | `PLANTEXT`  | `PLANTEXT LINES <n> <escaped plan text>`                     |
//! | `INFO`      | `INFO VERSION <v> EPOCH <e> ACCEPTED <t> APPLIED <t> WAL <mode> FOLLOWER <bool>` |
//! | `BYE`       | `BYE`                                                        |
//! | `ERR`       | `ERR <escaped message>`                                      |
//!
//! A `METRICS` payload is the whole multi-line exposition of
//! `ecfd_obs::Registry::render` percent-escaped into one token; `LINES` is
//! its line count (0 with the `%e` empty payload when nothing matched the
//! prefix). An `INFO` `WAL` mode is `off`, `durable`, or `recovered`. A
//! `PLANTEXT` payload is [`ecfd_plan`]'s deterministic `Plan::render` text,
//! carried exactly like `METRICS`: the whole multi-line rendering
//! percent-escaped into one token, with `LINES` as its line count.
//!
//! A `REPLAYED` record list is `;`-joined (`-` when empty); each record is
//! `D@<ticket>@<op>|<op>|…` for a delta (ops rendered exactly like `APPLY`)
//! or `C@<epoch>@<last-ticket>@<report-hash>` for a checkpoint. `NEXT` is the
//! log position to pass as the next `REPLAY` cursor — positions count
//! records in the leader's WAL file, so checkpoints occupy positions too.
//!
//! Row-id lists render as comma-joined numbers, `-` when empty. An SV
//! evidence list is `row:constraint.pattern` items comma-joined; an MV list
//! is `constraint.pattern:key1,key2:row1|row2` items semicolon-joined, with
//! keys percent-escaped.

use ecfd_relation::{DataType, Delta, Schema, Tuple, Value};

/// Characters that collide with the protocol's separators and are therefore
/// percent-escaped inside free-form payload fields.
const RESERVED: &[char] = &[
    '%', ' ', ',', ':', ';', '|', '@', '+', '-', '\n', '\r', '\t',
];

/// Marker token for the empty string (an escape of nothing would render as
/// an empty token and vanish between separators). `%e` is never produced by
/// [`escape`], which only emits two-hex-digit sequences.
const EMPTY_FIELD: &str = "%e";

/// Percent-escapes the reserved characters of a payload value.
pub fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        if RESERVED.contains(&c) {
            let mut buf = [0u8; 4];
            for byte in c.encode_utf8(&mut buf).as_bytes() {
                out.push_str(&format!("%{byte:02X}"));
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Reverses [`escape`]. Fails on malformed percent sequences.
pub fn unescape(token: &str) -> Result<String, String> {
    let mut bytes = Vec::with_capacity(token.len());
    let mut chars = token.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '%' {
            let mut buf = [0u8; 4];
            bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        let hex = token.get(i + 1..i + 3).ok_or("truncated % escape")?;
        let byte = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape `%{hex}`"))?;
        bytes.push(byte);
        chars.next();
        chars.next();
    }
    String::from_utf8(bytes).map_err(|_| "escape decodes to invalid UTF-8".to_string())
}

/// Encodes one payload field (escaping, with an explicit empty marker).
pub fn encode_field(raw: &str) -> String {
    if raw.is_empty() {
        EMPTY_FIELD.to_string()
    } else {
        escape(raw)
    }
}

/// Decodes one payload field.
pub fn decode_field(token: &str) -> Result<String, String> {
    if token == EMPTY_FIELD {
        Ok(String::new())
    } else {
        unescape(token)
    }
}

/// One tuple operation inside an `APPLY` request: an insertion (`+`) or a
/// deletion (`-`) carrying raw (schema-untyped) field strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleOp {
    /// `true` for an insertion, `false` for a deletion.
    pub insert: bool,
    /// The tuple's fields, in attribute order, untyped.
    pub values: Vec<String>,
}

impl TupleOp {
    /// An insertion op.
    pub fn insert<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Self {
        TupleOp {
            insert: true,
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// A deletion op.
    pub fn delete<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Self {
        TupleOp {
            insert: false,
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    fn render(&self) -> String {
        let sign = if self.insert { '+' } else { '-' };
        let fields: Vec<String> = self.values.iter().map(|v| encode_field(v)).collect();
        format!("{sign}{}", fields.join(","))
    }

    fn parse(token: &str) -> Result<TupleOp, String> {
        let insert = match token.chars().next() {
            Some('+') => true,
            Some('-') => false,
            _ => return Err(format!("tuple op `{token}` must start with + or -")),
        };
        let values = token[1..]
            .split(',')
            .map(decode_field)
            .collect::<Result<Vec<String>, String>>()?;
        Ok(TupleOp { insert, values })
    }
}

/// A parsed request line. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `PING`
    Ping,
    /// `EPOCH`
    Epoch,
    /// `DETECT` (`fresh = false`) or `DETECT FRESH` (`fresh = true`).
    Detect {
        /// Re-run detection over the snapshot instead of serving the cache.
        fresh: bool,
    },
    /// `CHECK`: cached vs fresh report on one snapshot.
    Check,
    /// `EXPLAIN`
    Explain,
    /// `EXPLAIN PLAN`: the compiled detection plan for the served
    /// constraint set, rendered.
    ExplainPlan,
    /// `APPLY <op>…`
    Apply {
        /// The insertions and deletions to enqueue, in order.
        ops: Vec<TupleOp>,
    },
    /// `SYNC`
    Sync,
    /// `REPAIR-PLAN`
    RepairPlan,
    /// `REPLAY <cursor> [<max>]`: stream applied WAL records.
    Replay {
        /// Log position (record index in the leader's WAL) to start from.
        cursor: u64,
        /// Maximum records to return (the server may clamp it further).
        max: usize,
    },
    /// `STATS [<prefix>]`: the metrics exposition, optionally filtered to
    /// metric names starting with `prefix`.
    Stats {
        /// Metric-name prefix filter (`None` = everything).
        prefix: Option<String>,
    },
    /// `INFO`: the cheap liveness probe.
    Info,
    /// `QUIT`
    Quit,
}

/// Default `max` when a `REPLAY` request omits it.
pub const REPLAY_DEFAULT_MAX: usize = 256;

impl Request {
    /// Renders the request as one protocol line (without the newline).
    pub fn render(&self) -> String {
        match self {
            Request::Ping => "PING".into(),
            Request::Epoch => "EPOCH".into(),
            Request::Detect { fresh: false } => "DETECT".into(),
            Request::Detect { fresh: true } => "DETECT FRESH".into(),
            Request::Check => "CHECK".into(),
            Request::Explain => "EXPLAIN".into(),
            Request::ExplainPlan => "EXPLAIN PLAN".into(),
            Request::Apply { ops } => {
                let mut out = String::from("APPLY");
                for op in ops {
                    out.push(' ');
                    out.push_str(&op.render());
                }
                out
            }
            Request::Sync => "SYNC".into(),
            Request::RepairPlan => "REPAIR-PLAN".into(),
            Request::Replay { cursor, max } => format!("REPLAY {cursor} {max}"),
            Request::Stats { prefix: None } => "STATS".into(),
            Request::Stats {
                prefix: Some(prefix),
            } => format!("STATS {}", encode_field(prefix)),
            Request::Info => "INFO".into(),
            Request::Quit => "QUIT".into(),
        }
    }

    /// The wire verb of this request — the label value of the server's
    /// `serve.requests{verb=…}` / `serve.request.ns{verb=…}` metrics.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "PING",
            Request::Epoch => "EPOCH",
            Request::Detect { .. } => "DETECT",
            Request::Check => "CHECK",
            Request::Explain => "EXPLAIN",
            Request::ExplainPlan => "EXPLAIN-PLAN",
            Request::Apply { .. } => "APPLY",
            Request::Sync => "SYNC",
            Request::RepairPlan => "REPAIR-PLAN",
            Request::Replay { .. } => "REPLAY",
            Request::Stats { .. } => "STATS",
            Request::Info => "INFO",
            Request::Quit => "QUIT",
        }
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut tokens = line.split_whitespace();
        let verb = tokens.next().ok_or("empty request")?;
        let req = match verb {
            "PING" => Request::Ping,
            "EPOCH" => Request::Epoch,
            "DETECT" => match tokens.next() {
                None => Request::Detect { fresh: false },
                Some("FRESH") => Request::Detect { fresh: true },
                Some(other) => return Err(format!("unknown DETECT mode `{other}`")),
            },
            "CHECK" => Request::Check,
            "EXPLAIN" => match tokens.next() {
                None => Request::Explain,
                Some("PLAN") => Request::ExplainPlan,
                Some(other) => return Err(format!("unknown EXPLAIN mode `{other}`")),
            },
            "APPLY" => {
                let ops = tokens
                    .by_ref()
                    .map(TupleOp::parse)
                    .collect::<Result<Vec<TupleOp>, String>>()?;
                if ops.is_empty() {
                    return Err("APPLY needs at least one +tuple or -tuple".into());
                }
                return Ok(Request::Apply { ops });
            }
            "SYNC" => Request::Sync,
            "REPAIR-PLAN" => Request::RepairPlan,
            "REPLAY" => {
                let cursor = parse_num(&mut tokens, "replay cursor")?;
                let max = match tokens.next() {
                    Some(token) => token
                        .parse::<usize>()
                        .map_err(|_| format!("bad replay max `{token}`"))?,
                    None => REPLAY_DEFAULT_MAX,
                };
                Request::Replay { cursor, max }
            }
            "STATS" => Request::Stats {
                prefix: tokens.next().map(decode_field).transpose()?,
            },
            "INFO" => Request::Info,
            "QUIT" => Request::Quit,
            other => return Err(format!("unknown verb `{other}`")),
        };
        if let Some(extra) = tokens.next() {
            return Err(format!("unexpected trailing token `{extra}`"));
        }
        Ok(req)
    }

    /// Converts an `APPLY` request's raw fields into a typed [`Delta`]
    /// against the served base schema, rejecting wrong arities and untypable
    /// fields before anything reaches the ingest queue.
    pub fn ops_to_delta(ops: &[TupleOp], schema: &Schema) -> Result<Delta, String> {
        let mut delta = Delta::new();
        for op in ops {
            if op.values.len() != schema.arity() {
                return Err(format!(
                    "tuple has {} fields, schema `{}` has {}",
                    op.values.len(),
                    schema.name(),
                    schema.arity()
                ));
            }
            let values = schema
                .attributes()
                .iter()
                .zip(&op.values)
                .map(|(attr, field)| parse_typed(field, attr.data_type(), &attr.name))
                .collect::<Result<Vec<Value>, String>>()?;
            let tuple = Tuple::new(values);
            if op.insert {
                delta.insertions.push(tuple);
            } else {
                delta.deletions.push(tuple);
            }
        }
        Ok(delta)
    }
}

/// Parses one field against a declared column type (the CSV loader's rules:
/// `NULL` is null, `Int` / `Bool` columns parse typed, `Str` takes the field
/// verbatim).
pub fn parse_typed(field: &str, ty: DataType, attribute: &str) -> Result<Value, String> {
    if field.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Str => Ok(Value::Str(field.to_string())),
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("`{field}` is not an integer (attribute {attribute})")),
        DataType::Bool => match field.to_ascii_lowercase().as_str() {
            "true" | "1" => Ok(Value::Bool(true)),
            "false" | "0" => Ok(Value::Bool(false)),
            _ => Err(format!(
                "`{field}` is not a boolean (attribute {attribute})"
            )),
        },
    }
}

/// Renders a typed value as an `APPLY`/`REPLAY` field string, inverse of
/// [`parse_typed`] for values that came out of a schema-checked tuple. The
/// one lossy corner: a `Str` whose content spells `NULL` re-parses as the
/// null value — the checkpoint report-hash comparison catches any divergence
/// such a value could cause downstream.
pub fn render_value(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => s.clone(),
    }
}

/// Renders a delta's tuples as `REPLAY`/`APPLY` tuple ops (insertions first,
/// then deletions — the order [`Request::ops_to_delta`] reassembles).
pub fn delta_to_ops(delta: &Delta) -> Vec<TupleOp> {
    let render = |tuple: &Tuple| tuple.values().iter().map(render_value).collect::<Vec<_>>();
    delta
        .insertions
        .iter()
        .map(|t| TupleOp::insert(render(t)))
        .chain(delta.deletions.iter().map(|t| TupleOp::delete(render(t))))
        .collect()
}

/// One WAL record inside a `REPLAYED` response: the leader's log, re-encoded
/// for the wire. Deltas carry their ticket and the same tuple-op syntax as
/// `APPLY`; checkpoints carry the epoch/ticket/hash triple a follower
/// verifies against its own state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayRecord {
    /// `D@<ticket>@<op>|<op>|…` — an applied delta.
    Delta {
        /// The leader-side ingest ticket.
        ticket: u64,
        /// The delta's tuple operations, `APPLY` syntax.
        ops: Vec<TupleOp>,
    },
    /// `C@<epoch>@<last-ticket>@<report-hash>` — an epoch boundary.
    Checkpoint {
        /// Epoch the leader published.
        epoch: u64,
        /// Highest ticket that snapshot covers.
        last_ticket: u64,
        /// Canonical hash of the leader's detection report at that epoch.
        report_hash: u64,
    },
}

impl ReplayRecord {
    fn render(&self) -> String {
        match self {
            ReplayRecord::Delta { ticket, ops } => {
                if ops.is_empty() {
                    format!("D@{ticket}")
                } else {
                    let ops: Vec<String> = ops.iter().map(TupleOp::render).collect();
                    format!("D@{ticket}@{}", ops.join("|"))
                }
            }
            ReplayRecord::Checkpoint {
                epoch,
                last_ticket,
                report_hash,
            } => format!("C@{epoch}@{last_ticket}@{report_hash}"),
        }
    }

    fn parse(token: &str) -> Result<ReplayRecord, String> {
        let parts: Vec<&str> = token.split('@').collect();
        let num = |t: &str, label: &str| {
            t.parse::<u64>()
                .map_err(|_| format!("bad replay {label} `{t}`"))
        };
        match parts.as_slice() {
            ["D", ticket] => Ok(ReplayRecord::Delta {
                ticket: num(ticket, "ticket")?,
                ops: Vec::new(),
            }),
            ["D", ticket, ops] => Ok(ReplayRecord::Delta {
                ticket: num(ticket, "ticket")?,
                ops: ops
                    .split('|')
                    .map(TupleOp::parse)
                    .collect::<Result<Vec<_>, String>>()?,
            }),
            ["C", epoch, last_ticket, report_hash] => Ok(ReplayRecord::Checkpoint {
                epoch: num(epoch, "epoch")?,
                last_ticket: num(last_ticket, "last ticket")?,
                report_hash: num(report_hash, "report hash")?,
            }),
            _ => Err(format!("malformed replay record `{token}`")),
        }
    }
}

/// One violating-group record inside an `EVIDENCE` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvLine {
    /// Index of the violated constraint, as registered.
    pub constraint: usize,
    /// Index of the violated pattern tuple within that constraint.
    pub pattern: usize,
    /// The shared `t[X]` group key, rendered as display strings.
    pub key: Vec<String>,
    /// Member rows of the violating group.
    pub rows: Vec<u64>,
}

/// A parsed response line. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `PONG`
    Pong,
    /// `EPOCH …`: the current epoch and hub counters.
    Epoch {
        /// Epoch of the published snapshot.
        epoch: u64,
        /// Rows in the snapshot.
        rows: usize,
        /// Single-tuple violations in the published report.
        sv: usize,
        /// Multi-tuple violations in the published report.
        mv: usize,
        /// Deltas pending in the ingest queue.
        queued: usize,
        /// Writer-side apply errors so far.
        errors: u64,
    },
    /// `REPORT …`: a full detection report.
    Report {
        /// Epoch the report describes.
        epoch: u64,
        /// Rows inspected.
        total: usize,
        /// Rows with `SV = 1`.
        sv: Vec<u64>,
        /// Rows with `MV = 1`.
        mv: Vec<u64>,
    },
    /// `CHECKED …`: cached-vs-fresh comparison on one snapshot.
    Checked {
        /// Epoch both reports describe.
        epoch: u64,
        /// Rows inspected.
        total: usize,
        /// `SV` count of the fresh report.
        sv: usize,
        /// `MV` count of the fresh report.
        mv: usize,
        /// Whether the fresh report was byte-identical to the published one.
        consistent: bool,
    },
    /// `EVIDENCE …`: the evidence behind the published report.
    Evidence {
        /// Epoch the evidence describes.
        epoch: u64,
        /// Rows inspected.
        total: usize,
        /// `(row, constraint, pattern)` single-tuple records.
        sv: Vec<(u64, usize, usize)>,
        /// Violating-group records.
        mv: Vec<MvLine>,
    },
    /// `ACK …`: an `APPLY` was accepted into the queue.
    Ack {
        /// Ticket to `SYNC` on.
        ticket: u64,
        /// Epoch at acceptance time (the delta is *not* applied yet).
        epoch: u64,
    },
    /// `SYNCED …`: every prior `APPLY` on this connection is published.
    Synced {
        /// Epoch after the sync barrier.
        epoch: u64,
    },
    /// `PLAN …`: a repair plan summary.
    Plan {
        /// Epoch the plan was computed against.
        epoch: u64,
        /// Planned tuple deletions.
        deletions: usize,
        /// Planned value modifications.
        modifications: usize,
        /// Total plan cost under the engine's cost model.
        cost: f64,
    },
    /// `REPLAYED …`: a page of the durable leader's WAL.
    Replayed {
        /// The records, in log order.
        records: Vec<ReplayRecord>,
        /// Log position to pass as the next `REPLAY` cursor.
        next: u64,
    },
    /// `METRICS …`: the metrics exposition a `STATS` request asked for.
    Metrics {
        /// The exposition text (`name value` lines, sorted, trailing
        /// newline; empty when a prefix matched nothing). Carried on the
        /// wire as one percent-escaped token.
        text: String,
    },
    /// `PLANTEXT …`: the rendered detection plan an `EXPLAIN PLAN` request
    /// asked for.
    PlanText {
        /// The deterministic `Plan::render` text (one header line plus one
        /// line per scan and flag operator, trailing newline). Carried on
        /// the wire as one percent-escaped token.
        text: String,
    },
    /// `INFO …`: the liveness probe.
    Info {
        /// Server crate version.
        version: String,
        /// Epoch of the published snapshot.
        epoch: u64,
        /// Highest ticket accepted into the ingest queue.
        accepted: u64,
        /// Highest ticket applied and published by the writer.
        applied: u64,
        /// WAL mode: `off`, `durable`, or `recovered`.
        wal: String,
        /// Whether a follower replays a leader's WAL into this server.
        follower: bool,
    },
    /// `BYE`
    Bye,
    /// `ERR …`: the request failed; the connection stays usable.
    Err {
        /// Human-readable reason.
        message: String,
    },
}

fn render_ids(ids: &[u64]) -> String {
    if ids.is_empty() {
        "-".to_string()
    } else {
        ids.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
    }
}

fn parse_ids(token: &str) -> Result<Vec<u64>, String> {
    if token == "-" {
        return Ok(Vec::new());
    }
    token
        .split(',')
        .map(|t| t.parse::<u64>().map_err(|_| format!("bad row id `{t}`")))
        .collect()
}

fn parse_num<T: std::str::FromStr>(
    tokens: &mut std::str::SplitWhitespace<'_>,
    label: &str,
) -> Result<T, String> {
    let token = tokens.next().ok_or_else(|| format!("missing {label}"))?;
    token
        .parse::<T>()
        .map_err(|_| format!("bad {label} `{token}`"))
}

fn expect_tag(tokens: &mut std::str::SplitWhitespace<'_>, tag: &str) -> Result<(), String> {
    match tokens.next() {
        Some(t) if t == tag => Ok(()),
        Some(t) => Err(format!("expected `{tag}`, found `{t}`")),
        None => Err(format!("expected `{tag}`, found end of line")),
    }
}

impl Response {
    /// Renders the response as one protocol line (without the newline).
    pub fn render(&self) -> String {
        match self {
            Response::Pong => "PONG".into(),
            Response::Epoch {
                epoch,
                rows,
                sv,
                mv,
                queued,
                errors,
            } => {
                format!("EPOCH {epoch} ROWS {rows} SV {sv} MV {mv} QUEUED {queued} ERRORS {errors}")
            }
            Response::Report {
                epoch,
                total,
                sv,
                mv,
            } => format!(
                "REPORT EPOCH {epoch} TOTAL {total} SV {} MV {}",
                render_ids(sv),
                render_ids(mv)
            ),
            Response::Checked {
                epoch,
                total,
                sv,
                mv,
                consistent,
            } => format!(
                "CHECKED EPOCH {epoch} TOTAL {total} SV {sv} MV {mv} CONSISTENT {consistent}"
            ),
            Response::Evidence {
                epoch,
                total,
                sv,
                mv,
            } => {
                let sv_list = if sv.is_empty() {
                    "-".to_string()
                } else {
                    sv.iter()
                        .map(|(row, c, p)| format!("{row}:{c}.{p}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let mv_list = if mv.is_empty() {
                    "-".to_string()
                } else {
                    mv.iter()
                        .map(|g| {
                            let key = g
                                .key
                                .iter()
                                .map(|k| encode_field(k))
                                .collect::<Vec<_>>()
                                .join(",");
                            let rows = g
                                .rows
                                .iter()
                                .map(u64::to_string)
                                .collect::<Vec<_>>()
                                .join("|");
                            format!("{}.{}:{key}:{rows}", g.constraint, g.pattern)
                        })
                        .collect::<Vec<_>>()
                        .join(";")
                };
                format!("EVIDENCE EPOCH {epoch} TOTAL {total} SV {sv_list} MV {mv_list}")
            }
            Response::Ack { ticket, epoch } => format!("ACK TICKET {ticket} EPOCH {epoch}"),
            Response::Synced { epoch } => format!("SYNCED EPOCH {epoch}"),
            Response::Plan {
                epoch,
                deletions,
                modifications,
                cost,
            } => format!(
                "PLAN EPOCH {epoch} DELETIONS {deletions} MODIFICATIONS {modifications} COST {cost}"
            ),
            Response::Replayed { records, next } => {
                let list = if records.is_empty() {
                    "-".to_string()
                } else {
                    records
                        .iter()
                        .map(ReplayRecord::render)
                        .collect::<Vec<_>>()
                        .join(";")
                };
                format!("REPLAYED RECORDS {} {list} NEXT {next}", records.len())
            }
            Response::Metrics { text } => {
                format!(
                    "METRICS LINES {} {}",
                    text.lines().count(),
                    encode_field(text)
                )
            }
            Response::PlanText { text } => {
                format!(
                    "PLANTEXT LINES {} {}",
                    text.lines().count(),
                    encode_field(text)
                )
            }
            Response::Info {
                version,
                epoch,
                accepted,
                applied,
                wal,
                follower,
            } => format!(
                "INFO VERSION {} EPOCH {epoch} ACCEPTED {accepted} APPLIED {applied} \
                 WAL {} FOLLOWER {follower}",
                encode_field(version),
                encode_field(wal)
            ),
            Response::Bye => "BYE".into(),
            Response::Err { message } => format!("ERR {}", encode_field(message)),
        }
    }

    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let mut tokens = line.split_whitespace();
        let verb = tokens.next().ok_or("empty response")?;
        let response = match verb {
            "PONG" => Response::Pong,
            "EPOCH" => {
                let epoch = parse_num(&mut tokens, "epoch")?;
                expect_tag(&mut tokens, "ROWS")?;
                let rows = parse_num(&mut tokens, "rows")?;
                expect_tag(&mut tokens, "SV")?;
                let sv = parse_num(&mut tokens, "sv count")?;
                expect_tag(&mut tokens, "MV")?;
                let mv = parse_num(&mut tokens, "mv count")?;
                expect_tag(&mut tokens, "QUEUED")?;
                let queued = parse_num(&mut tokens, "queued")?;
                expect_tag(&mut tokens, "ERRORS")?;
                let errors = parse_num(&mut tokens, "errors")?;
                Response::Epoch {
                    epoch,
                    rows,
                    sv,
                    mv,
                    queued,
                    errors,
                }
            }
            "REPORT" => {
                expect_tag(&mut tokens, "EPOCH")?;
                let epoch = parse_num(&mut tokens, "epoch")?;
                expect_tag(&mut tokens, "TOTAL")?;
                let total = parse_num(&mut tokens, "total")?;
                expect_tag(&mut tokens, "SV")?;
                let sv = parse_ids(tokens.next().ok_or("missing SV ids")?)?;
                expect_tag(&mut tokens, "MV")?;
                let mv = parse_ids(tokens.next().ok_or("missing MV ids")?)?;
                Response::Report {
                    epoch,
                    total,
                    sv,
                    mv,
                }
            }
            "CHECKED" => {
                expect_tag(&mut tokens, "EPOCH")?;
                let epoch = parse_num(&mut tokens, "epoch")?;
                expect_tag(&mut tokens, "TOTAL")?;
                let total = parse_num(&mut tokens, "total")?;
                expect_tag(&mut tokens, "SV")?;
                let sv = parse_num(&mut tokens, "sv count")?;
                expect_tag(&mut tokens, "MV")?;
                let mv = parse_num(&mut tokens, "mv count")?;
                expect_tag(&mut tokens, "CONSISTENT")?;
                let consistent = match tokens.next() {
                    Some("true") => true,
                    Some("false") => false,
                    other => return Err(format!("bad consistency flag {other:?}")),
                };
                Response::Checked {
                    epoch,
                    total,
                    sv,
                    mv,
                    consistent,
                }
            }
            "EVIDENCE" => {
                expect_tag(&mut tokens, "EPOCH")?;
                let epoch = parse_num(&mut tokens, "epoch")?;
                expect_tag(&mut tokens, "TOTAL")?;
                let total = parse_num(&mut tokens, "total")?;
                expect_tag(&mut tokens, "SV")?;
                let sv_token = tokens.next().ok_or("missing SV evidence")?;
                let sv = if sv_token == "-" {
                    Vec::new()
                } else {
                    sv_token
                        .split(',')
                        .map(|item| {
                            let (row, source) =
                                item.split_once(':').ok_or("SV item needs row:c.p")?;
                            let (c, p) = source.split_once('.').ok_or("SV source needs c.p")?;
                            Ok((
                                row.parse().map_err(|_| format!("bad row `{row}`"))?,
                                c.parse().map_err(|_| format!("bad constraint `{c}`"))?,
                                p.parse().map_err(|_| format!("bad pattern `{p}`"))?,
                            ))
                        })
                        .collect::<Result<Vec<_>, String>>()?
                };
                expect_tag(&mut tokens, "MV")?;
                let mv_token = tokens.next().ok_or("missing MV evidence")?;
                let mv = if mv_token == "-" {
                    Vec::new()
                } else {
                    mv_token
                        .split(';')
                        .map(parse_mv_line)
                        .collect::<Result<Vec<_>, String>>()?
                };
                Response::Evidence {
                    epoch,
                    total,
                    sv,
                    mv,
                }
            }
            "ACK" => {
                expect_tag(&mut tokens, "TICKET")?;
                let ticket = parse_num(&mut tokens, "ticket")?;
                expect_tag(&mut tokens, "EPOCH")?;
                let epoch = parse_num(&mut tokens, "epoch")?;
                Response::Ack { ticket, epoch }
            }
            "SYNCED" => {
                expect_tag(&mut tokens, "EPOCH")?;
                let epoch = parse_num(&mut tokens, "epoch")?;
                Response::Synced { epoch }
            }
            "PLAN" => {
                expect_tag(&mut tokens, "EPOCH")?;
                let epoch = parse_num(&mut tokens, "epoch")?;
                expect_tag(&mut tokens, "DELETIONS")?;
                let deletions = parse_num(&mut tokens, "deletions")?;
                expect_tag(&mut tokens, "MODIFICATIONS")?;
                let modifications = parse_num(&mut tokens, "modifications")?;
                expect_tag(&mut tokens, "COST")?;
                let cost = parse_num(&mut tokens, "cost")?;
                Response::Plan {
                    epoch,
                    deletions,
                    modifications,
                    cost,
                }
            }
            "REPLAYED" => {
                expect_tag(&mut tokens, "RECORDS")?;
                let count: usize = parse_num(&mut tokens, "record count")?;
                let list = tokens.next().ok_or("missing replay records")?;
                let records = if list == "-" {
                    Vec::new()
                } else {
                    list.split(';')
                        .map(ReplayRecord::parse)
                        .collect::<Result<Vec<_>, String>>()?
                };
                if records.len() != count {
                    return Err(format!(
                        "REPLAYED claims {count} records but carries {}",
                        records.len()
                    ));
                }
                expect_tag(&mut tokens, "NEXT")?;
                let next = parse_num(&mut tokens, "next cursor")?;
                Response::Replayed { records, next }
            }
            "METRICS" => {
                expect_tag(&mut tokens, "LINES")?;
                let count: usize = parse_num(&mut tokens, "line count")?;
                let text = decode_field(tokens.next().ok_or("missing metrics payload")?)?;
                if text.lines().count() != count {
                    return Err(format!(
                        "METRICS claims {count} lines but carries {}",
                        text.lines().count()
                    ));
                }
                Response::Metrics { text }
            }
            "PLANTEXT" => {
                expect_tag(&mut tokens, "LINES")?;
                let count: usize = parse_num(&mut tokens, "line count")?;
                let text = decode_field(tokens.next().ok_or("missing plan payload")?)?;
                if text.lines().count() != count {
                    return Err(format!(
                        "PLANTEXT claims {count} lines but carries {}",
                        text.lines().count()
                    ));
                }
                Response::PlanText { text }
            }
            "INFO" => {
                expect_tag(&mut tokens, "VERSION")?;
                let version = decode_field(tokens.next().ok_or("missing version")?)?;
                expect_tag(&mut tokens, "EPOCH")?;
                let epoch = parse_num(&mut tokens, "epoch")?;
                expect_tag(&mut tokens, "ACCEPTED")?;
                let accepted = parse_num(&mut tokens, "accepted ticket")?;
                expect_tag(&mut tokens, "APPLIED")?;
                let applied = parse_num(&mut tokens, "applied ticket")?;
                expect_tag(&mut tokens, "WAL")?;
                let wal = decode_field(tokens.next().ok_or("missing wal mode")?)?;
                expect_tag(&mut tokens, "FOLLOWER")?;
                let follower = match tokens.next() {
                    Some("true") => true,
                    Some("false") => false,
                    other => return Err(format!("bad follower flag {other:?}")),
                };
                Response::Info {
                    version,
                    epoch,
                    accepted,
                    applied,
                    wal,
                    follower,
                }
            }
            "BYE" => Response::Bye,
            "ERR" => {
                let message = decode_field(tokens.next().unwrap_or(EMPTY_FIELD))?;
                return Ok(Response::Err { message });
            }
            other => return Err(format!("unknown response verb `{other}`")),
        };
        if let Some(extra) = tokens.next() {
            return Err(format!("unexpected trailing token `{extra}`"));
        }
        Ok(response)
    }
}

fn parse_mv_line(item: &str) -> Result<MvLine, String> {
    let mut parts = item.splitn(3, ':');
    let source = parts.next().ok_or("MV item needs c.p:key:rows")?;
    let key_part = parts.next().ok_or("MV item needs a key section")?;
    let rows_part = parts.next().ok_or("MV item needs a rows section")?;
    let (c, p) = source.split_once('.').ok_or("MV source needs c.p")?;
    let key = if key_part.is_empty() {
        Vec::new()
    } else {
        key_part
            .split(',')
            .map(decode_field)
            .collect::<Result<Vec<_>, String>>()?
    };
    let rows = rows_part
        .split('|')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<u64>().map_err(|_| format!("bad row `{t}`")))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(MvLine {
        constraint: c.parse().map_err(|_| format!("bad constraint `{c}`"))?,
        pattern: p.parse().map_err(|_| format!("bad pattern `{p}`"))?,
        key,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::Schema;

    #[test]
    fn escaping_round_trips_hostile_values() {
        for raw in [
            "",
            "plain",
            "Tree Ave.",
            "a,b;c:d|e@f",
            "+leading",
            "-leading",
            "100% done",
            "newline\nand\ttab",
            "Zürich 東京",
            "%e",
        ] {
            let encoded = encode_field(raw);
            assert!(!encoded.contains(' '), "`{encoded}` must be one token");
            assert_eq!(decode_field(&encoded).unwrap(), raw, "field `{raw}`");
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Ping,
            Request::Epoch,
            Request::Detect { fresh: false },
            Request::Detect { fresh: true },
            Request::Check,
            Request::Explain,
            Request::ExplainPlan,
            Request::Apply {
                ops: vec![
                    TupleOp::insert(["Albany", "518"]),
                    TupleOp::delete(["New York City", ""]),
                ],
            },
            Request::Sync,
            Request::RepairPlan,
            Request::Replay {
                cursor: 0,
                max: 256,
            },
            Request::Replay {
                cursor: 917,
                max: 16,
            },
            Request::Stats { prefix: None },
            Request::Stats {
                prefix: Some("wal.".into()),
            },
            Request::Info,
            Request::Quit,
        ];
        for request in requests {
            let line = request.render();
            assert_eq!(Request::parse(&line), Ok(request), "line `{line}`");
        }
        assert_eq!(
            Request::parse("REPLAY 5"),
            Ok(Request::Replay {
                cursor: 5,
                max: REPLAY_DEFAULT_MAX
            }),
            "max is optional"
        );
        assert!(Request::parse("NOPE").is_err());
        assert!(Request::parse("APPLY").is_err());
        assert!(Request::parse("DETECT SIDEWAYS").is_err());
        assert!(Request::parse("EXPLAIN SIDEWAYS").is_err());
        assert!(Request::parse("EXPLAIN PLAN EXTRA").is_err());
        assert!(Request::parse("PING PONG").is_err());
        assert!(Request::parse("REPLAY").is_err());
        assert!(Request::parse("REPLAY x").is_err());
        assert!(Request::parse("STATS wal. extra").is_err());
        assert!(Request::parse("INFO extra").is_err());
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Pong,
            Response::Epoch {
                epoch: 7,
                rows: 42,
                sv: 2,
                mv: 4,
                queued: 1,
                errors: 0,
            },
            Response::Report {
                epoch: 7,
                total: 42,
                sv: vec![1, 5],
                mv: vec![],
            },
            Response::Checked {
                epoch: 7,
                total: 42,
                sv: 2,
                mv: 0,
                consistent: true,
            },
            Response::Evidence {
                epoch: 7,
                total: 42,
                sv: vec![(3, 0, 1), (9, 1, 0)],
                mv: vec![
                    MvLine {
                        constraint: 0,
                        pattern: 0,
                        key: vec!["Albany".into(), "".into()],
                        rows: vec![0, 6],
                    },
                    MvLine {
                        constraint: 2,
                        pattern: 1,
                        key: vec!["New York City".into()],
                        rows: vec![4],
                    },
                ],
            },
            Response::Evidence {
                epoch: 1,
                total: 0,
                sv: vec![],
                mv: vec![],
            },
            Response::Ack {
                ticket: 12,
                epoch: 7,
            },
            Response::Synced { epoch: 9 },
            Response::Plan {
                epoch: 7,
                deletions: 2,
                modifications: 1,
                cost: 3.5,
            },
            Response::Replayed {
                records: vec![
                    ReplayRecord::Checkpoint {
                        epoch: 2,
                        last_ticket: 0,
                        report_hash: u64::MAX,
                    },
                    ReplayRecord::Delta {
                        ticket: 1,
                        ops: vec![
                            TupleOp::insert(["Tree Ave.", ""]),
                            TupleOp::delete(["a@b|c;d", "518"]),
                        ],
                    },
                    ReplayRecord::Delta {
                        ticket: 2,
                        ops: vec![],
                    },
                ],
                next: 3,
            },
            Response::Replayed {
                records: vec![],
                next: 0,
            },
            Response::Metrics {
                text: "ingest.accepted 3\nserve.requests{verb=\"APPLY\"} 3\n".into(),
            },
            Response::Metrics {
                text: String::new(),
            },
            Response::PlanText {
                text: "plan table=cust mode=fused singles=3 scans=1\nscan[0] x=[CT]\n  flag c0.p0 check=[AC] group=[AC]\n".into(),
            },
            Response::PlanText {
                text: String::new(),
            },
            Response::Info {
                version: "0.1.0".into(),
                epoch: 9,
                accepted: 12,
                applied: 12,
                wal: "recovered".into(),
                follower: false,
            },
            Response::Bye,
            Response::Err {
                message: "tuple has 1 fields, schema `cust` has 2".into(),
            },
        ];
        for response in responses {
            let line = response.render();
            assert_eq!(Response::parse(&line), Ok(response), "line `{line}`");
        }
        assert!(Response::parse("REPORT EPOCH x").is_err());
        assert!(Response::parse("PONG PONG").is_err());
        assert!(
            Response::parse("REPLAYED RECORDS 2 D@1 NEXT 2").is_err(),
            "record count must match the list"
        );
        assert!(
            Response::parse("METRICS LINES 2 a%201").is_err(),
            "line count must match the payload"
        );
        assert!(
            Response::parse("PLANTEXT LINES 3 one%0Aline%0A").is_err(),
            "plan line count must match the payload"
        );
    }

    #[test]
    fn replayed_deltas_reassemble_through_ops_to_delta() {
        let schema = Schema::builder("t")
            .attr("CT", ecfd_relation::DataType::Str)
            .attr("N", ecfd_relation::DataType::Int)
            .build();
        let delta = Delta {
            insertions: vec![Tuple::new(vec![
                Value::str("Tree Ave., #2"),
                Value::Int(-7),
            ])],
            deletions: vec![Tuple::new(vec![Value::Null, Value::Int(0)])],
        };
        let ops = delta_to_ops(&delta);
        // Over the wire and back.
        let line = Response::Replayed {
            records: vec![ReplayRecord::Delta { ticket: 9, ops }],
            next: 1,
        }
        .render();
        let Ok(Response::Replayed { records, .. }) = Response::parse(&line) else {
            panic!("round trip failed for `{line}`");
        };
        let ReplayRecord::Delta { ticket, ops } = &records[0] else {
            panic!("wrong record kind");
        };
        assert_eq!(*ticket, 9);
        let rebuilt = Request::ops_to_delta(ops, &schema).unwrap();
        assert_eq!(rebuilt, delta, "typed delta survives the wire");
    }

    #[test]
    fn ops_become_typed_deltas_against_the_schema() {
        let schema = Schema::builder("t")
            .attr("CT", ecfd_relation::DataType::Str)
            .attr("N", ecfd_relation::DataType::Int)
            .attr("OK", ecfd_relation::DataType::Bool)
            .build();
        let ops = vec![
            TupleOp::insert(["Albany", "7", "true"]),
            TupleOp::delete(["NYC", "NULL", "false"]),
        ];
        let delta = Request::ops_to_delta(&ops, &schema).unwrap();
        assert_eq!(delta.insertions.len(), 1);
        assert_eq!(delta.deletions.len(), 1);
        assert_eq!(delta.insertions[0].values()[1], Value::Int(7));
        assert_eq!(delta.deletions[0].values()[1], Value::Null);
        assert_eq!(delta.deletions[0].values()[2], Value::Bool(false));

        let wrong_arity = vec![TupleOp::insert(["x"])];
        assert!(Request::ops_to_delta(&wrong_arity, &schema)
            .unwrap_err()
            .contains("fields"));
        let wrong_type = vec![TupleOp::insert(["x", "seven", "true"])];
        assert!(Request::ops_to_delta(&wrong_type, &schema)
            .unwrap_err()
            .contains("integer"));
    }
}
