//! The Arc-swapped snapshot store: publication point of the serving layer.

use ecfd_session::Snapshot;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Holds the currently published [`Snapshot`] behind one swappable `Arc`.
///
/// The store is the *only* synchronisation point between the writer and the
/// readers, and the lock inside it is held exactly as long as it takes to
/// clone or replace one pointer — never across a scan, a decode or any other
/// query work. A reader that obtained its `Arc<Snapshot>` proceeds entirely
/// lock-free: every byte it will touch is immutable.
///
/// Epochs are strictly monotonic: [`SnapshotStore::publish`] refuses to move
/// backwards (a stale writer republishing an old epoch is a no-op), so
/// `current().epoch()` never decreases between two reads.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotStore {
    /// Creates a store publishing `initial` as the first epoch.
    pub fn new(initial: Snapshot) -> Self {
        SnapshotStore {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, Arc<Snapshot>> {
        self.current.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Arc<Snapshot>> {
        self.current.write().unwrap_or_else(|e| e.into_inner())
    }

    /// The currently published snapshot. Two pointer operations under a read
    /// lock; the returned handle stays valid (and unchanged) for as long as
    /// the caller keeps it, regardless of later publications.
    pub fn current(&self) -> Arc<Snapshot> {
        self.read().clone()
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.read().epoch()
    }

    /// Publishes a new snapshot, returning its epoch. Publishing an epoch at
    /// or below the current one is ignored (the newer state wins) and returns
    /// the retained epoch.
    pub fn publish(&self, snapshot: Snapshot) -> u64 {
        let mut slot = self.write();
        if snapshot.epoch() > slot.epoch() {
            *slot = Arc::new(snapshot);
        }
        slot.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{DataType, Relation, Schema, Tuple};
    use ecfd_session::Session;

    fn snapshot_at(extra_rows: usize) -> (Session, Snapshot) {
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        let mut rows = vec![
            Tuple::from_iter(["Albany", "718"]),
            Tuple::from_iter(["NYC", "212"]),
        ];
        rows.extend((0..extra_rows).map(|i| Tuple::from_iter(["Troy", &format!("5{i:02}")])));
        let data = Relation::with_tuples(schema, rows).unwrap();
        let mut session = Session::new();
        session.load(data).unwrap();
        session
            .register_text("cust: [CT] -> [AC] | [], { {Albany} || {518} }")
            .unwrap();
        let snap = session.snapshot().unwrap();
        (session, snap)
    }

    #[test]
    fn publish_is_monotonic_and_current_is_stable() {
        let (mut session, first) = snapshot_at(0);
        let store = SnapshotStore::new(first);
        let held = store.current();
        let e0 = store.epoch();

        session
            .apply(&ecfd_relation::Delta::insert_only(vec![Tuple::from_iter(
                ["LI", "516"],
            )]))
            .unwrap();
        let second = session.snapshot().unwrap();
        let e1 = store.publish(second.clone());
        assert!(e1 > e0);
        assert_eq!(store.current().num_rows(), 3);
        // Republishing the old epoch is a no-op.
        assert_eq!(store.publish(second), e1);
        // The handle taken before the publish still reads epoch 0 state.
        assert_eq!(held.epoch(), e0);
        assert_eq!(held.num_rows(), 2);
    }
}
