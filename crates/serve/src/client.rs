//! A small blocking client for the serving protocol.

use crate::protocol::{ReplayRecord, Request, Response, TupleOp};
use crate::{Result, ServeError};
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

/// One protocol connection: sends a [`Request`] line, reads the [`Response`]
/// line. Used by the examples, the workspace tests and anything speaking to
/// the `serve` binary from Rust.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads the matching response.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        self.writer.write_all(request.render().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        Response::parse(line.trim_end()).map_err(ServeError::Protocol)
    }

    /// `PING` → expects `PONG`.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("PONG", &other)),
        }
    }

    /// `EPOCH` → the raw response (epoch + counters).
    pub fn epoch(&mut self) -> Result<Response> {
        self.request(&Request::Epoch)
    }

    /// `DETECT` / `DETECT FRESH` → the report response.
    pub fn detect(&mut self, fresh: bool) -> Result<Response> {
        self.request(&Request::Detect { fresh })
    }

    /// `CHECK` → `(epoch, consistent)`.
    pub fn check(&mut self) -> Result<(u64, bool)> {
        match self.request(&Request::Check)? {
            Response::Checked {
                epoch, consistent, ..
            } => Ok((epoch, consistent)),
            other => Err(unexpected("CHECKED", &other)),
        }
    }

    /// `EXPLAIN` → the evidence response.
    pub fn explain(&mut self) -> Result<Response> {
        self.request(&Request::Explain)
    }

    /// `EXPLAIN PLAN` → the rendered detection plan for the served
    /// constraint set (deterministic `ecfd_plan::Plan::render` text).
    pub fn explain_plan(&mut self) -> Result<String> {
        match self.request(&Request::ExplainPlan)? {
            Response::PlanText { text } => Ok(text),
            Response::Err { message } => Err(ServeError::Protocol(message)),
            other => Err(unexpected("PLANTEXT", &other)),
        }
    }

    /// `APPLY` → the acknowledged ticket.
    pub fn apply(&mut self, ops: Vec<TupleOp>) -> Result<u64> {
        match self.request(&Request::Apply { ops })? {
            Response::Ack { ticket, .. } => Ok(ticket),
            Response::Err { message } => Err(ServeError::Protocol(message)),
            other => Err(unexpected("ACK", &other)),
        }
    }

    /// `SYNC` → the epoch after the barrier.
    pub fn sync(&mut self) -> Result<u64> {
        match self.request(&Request::Sync)? {
            Response::Synced { epoch } => Ok(epoch),
            Response::Err { message } => Err(ServeError::Protocol(message)),
            other => Err(unexpected("SYNCED", &other)),
        }
    }

    /// `REPAIR-PLAN` → the plan response.
    pub fn repair_plan(&mut self) -> Result<Response> {
        self.request(&Request::RepairPlan)
    }

    /// `REPLAY` → one page of the leader's WAL plus the next cursor.
    pub fn replay(&mut self, cursor: u64, max: usize) -> Result<(Vec<ReplayRecord>, u64)> {
        match self.request(&Request::Replay { cursor, max })? {
            Response::Replayed { records, next } => Ok((records, next)),
            Response::Err { message } => Err(ServeError::Protocol(message)),
            other => Err(unexpected("REPLAYED", &other)),
        }
    }

    /// `STATS [<prefix>]` → the metrics exposition text (sorted `name value`
    /// lines with a trailing newline; empty when `prefix` matched nothing).
    /// Parse it back into pairs with [`ecfd_obs::parse_exposition`].
    pub fn stats(&mut self, prefix: Option<&str>) -> Result<String> {
        let request = Request::Stats {
            prefix: prefix.map(str::to_string),
        };
        match self.request(&request)? {
            Response::Metrics { text } => Ok(text),
            Response::Err { message } => Err(ServeError::Protocol(message)),
            other => Err(unexpected("METRICS", &other)),
        }
    }

    /// `INFO` → the liveness-probe response ([`Response::Info`]).
    pub fn info(&mut self) -> Result<Response> {
        match self.request(&Request::Info)? {
            info @ Response::Info { .. } => Ok(info),
            Response::Err { message } => Err(ServeError::Protocol(message)),
            other => Err(unexpected("INFO", &other)),
        }
    }

    /// `QUIT` → expects `BYE` and drops the connection.
    pub fn quit(mut self) -> Result<()> {
        match self.request(&Request::Quit)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("BYE", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected {wanted}, got `{}`", got.render()))
}
