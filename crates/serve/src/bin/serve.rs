//! `serve`: the eCFD constraint server.
//!
//! Starts a TCP server speaking the line protocol of
//! [`ecfd_serve::protocol`] over a demo instance (Fig. 1's `cust` relation
//! with the paper's φ1 / φ2 constraints), or over a CSV file with constraints
//! from a text file.
//!
//! ```text
//! cargo run --release -p ecfd_serve --bin serve -- --addr 127.0.0.1:7878
//! cargo run --release -p ecfd_serve --bin serve -- \
//!     --csv data.csv --table cust --constraints rules.ecfd
//! ```
//!
//! Talk to it with anything line-based:
//!
//! ```text
//! $ printf 'EPOCH\nDETECT\nAPPLY +519,7,Zoe,Pine%%20St.,Albany,12239\nSYNC\nDETECT\nQUIT\n' | nc 127.0.0.1 7878
//! ```

use ecfd_serve::{Client, Follower, ServeConfig, Server, ShardedConfig, ShardedServer};
use ecfd_session::Session;
use std::path::Path;
use std::time::Duration;

struct Args {
    addr: String,
    queue: usize,
    batch: usize,
    csv: Option<String>,
    table: String,
    constraints: Option<String>,
    wal_dir: Option<String>,
    recover: bool,
    follow: Option<String>,
    shards: Option<usize>,
    shard_key: Option<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            addr: "127.0.0.1:7878".to_string(),
            queue: 64,
            batch: 32,
            csv: None,
            table: "cust".to_string(),
            constraints: None,
            wal_dir: None,
            recover: false,
            follow: None,
            shards: None,
            shard_key: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match flag.as_str() {
                "--addr" => args.addr = value("--addr")?,
                "--queue" => args.queue = parse_num(&value("--queue")?)?,
                "--batch" => args.batch = parse_num(&value("--batch")?)?,
                "--csv" => args.csv = Some(value("--csv")?),
                "--table" => args.table = value("--table")?,
                "--constraints" => args.constraints = Some(value("--constraints")?),
                "--wal-dir" => args.wal_dir = Some(value("--wal-dir")?),
                "--recover" => args.recover = true,
                "--follow" => args.follow = Some(value("--follow")?),
                "--shards" => args.shards = Some(parse_num(&value("--shards")?)?),
                "--shard-key" => args.shard_key = Some(value("--shard-key")?),
                "--help" | "-h" => {
                    println!(
                        "usage: serve [--addr HOST:PORT] [--queue N] [--batch N]\n\
                         \x20            [--csv PATH --table NAME [--constraints PATH]]\n\
                         \x20            [--wal-dir DIR [--recover]] [--follow HOST:PORT]\n\
                         \x20            [--shards N --shard-key ATTR]\n\
                         Without --csv, serves the paper's demo instance (Fig. 1 + φ1/φ2).\n\
                         --wal-dir makes writes durable; --recover replays an existing log;\n\
                         --follow replicates a durable leader into this server;\n\
                         --shards partitions rows by the hashed --shard-key value into N\n\
                         independent writers behind a cross-shard merge layer."
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.recover && args.wal_dir.is_none() {
            return Err("--recover needs --wal-dir".to_string());
        }
        match (&args.shards, &args.shard_key) {
            (Some(n), _) if *n == 0 => return Err("--shards must be at least 1".to_string()),
            (Some(_), None) => return Err("--shards needs --shard-key ATTR".to_string()),
            (None, Some(_)) => return Err("--shard-key needs --shards N".to_string()),
            _ => {}
        }
        if args.shards.is_some() && args.follow.is_some() {
            return Err("--follow cannot combine with --shards (follow a single \
                        shard's log instead)"
                .to_string());
        }
        Ok(args)
    }
}

fn parse_num(text: &str) -> Result<usize, String> {
    text.trim()
        .parse::<usize>()
        .map_err(|_| format!("`{text}` is not a number"))
}

/// Fig. 1's `cust` instance and the two constraints of Fig. 2, in the textual
/// syntax (`docs/ecfd-syntax.md`).
fn demo_session() -> Session {
    use ecfd_relation::{DataType, Relation, Schema, Tuple};
    let schema = Schema::builder("cust")
        .attr("AC", DataType::Str)
        .attr("PN", DataType::Str)
        .attr("NM", DataType::Str)
        .attr("STR", DataType::Str)
        .attr("CT", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build();
    let data = Relation::with_tuples(
        schema,
        [
            Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
            Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
            Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
            Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
            Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
            Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
        ],
    )
    .expect("demo data fits the demo schema");
    let mut session = Session::new();
    session.load(data).expect("demo data loads");
    session
        .register_text(
            "cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }\n\
             cust: [CT] -> []   | [AC], { {NYC} || {212, 718, 646, 347, 917} }",
        )
        .expect("demo constraints compile");
    session
}

fn csv_session(csv: &str, table: &str, constraints: Option<&str>) -> Result<Session, String> {
    let text = std::fs::read_to_string(csv).map_err(|e| format!("reading {csv}: {e}"))?;
    let relation = ecfd_relation::csv::from_csv_infer(table, &text)
        .map_err(|e| format!("parsing {csv}: {e}"))?;
    let mut session = Session::new();
    session
        .load(relation)
        .map_err(|e| format!("loading {csv}: {e}"))?;
    let rules = match constraints {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
        None => return Err("--csv needs --constraints (a file of textual eCFDs)".to_string()),
    };
    session
        .register_text(&rules)
        .map_err(|e| format!("registering constraints: {e}"))?;
    Ok(session)
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve: {msg}");
            std::process::exit(2);
        }
    };
    let session = match &args.csv {
        Some(csv) => match csv_session(csv, &args.table, args.constraints.as_deref()) {
            Ok(session) => session,
            Err(msg) => {
                eprintln!("serve: {msg}");
                std::process::exit(2);
            }
        },
        None => demo_session(),
    };

    let config = ServeConfig {
        addr: args.addr.clone(),
        queue_capacity: args.queue,
        batch_max: args.batch,
        ..ServeConfig::default()
    };
    let sync_timeout = config.sync_timeout;

    if let Some(shards) = args.shards {
        run_sharded(&args, shards, session, config);
        return;
    }

    let server = match &args.wal_dir {
        Some(dir) => {
            let dir = Path::new(dir);
            if !args.recover && wal_has_records(dir) {
                eprintln!(
                    "serve: {} already holds a WAL with records; pass --recover to \
                     replay it (or point --wal-dir at an empty directory)",
                    dir.display()
                );
                std::process::exit(2);
            }
            match Server::bind_durable(session, config, dir) {
                Ok((server, recovery)) => {
                    println!(
                        "recovered {} delta(s) to ticket {} ({} checkpoint(s) verified, \
                         {} apply error(s), {} torn byte(s) dropped)",
                        recovery.deltas_applied,
                        recovery.last_ticket,
                        recovery.checkpoints_verified,
                        recovery.apply_errors,
                        recovery.truncated_bytes,
                    );
                    server
                }
                Err(e) => {
                    eprintln!("serve: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => match Server::bind(session, config) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("serve: {e}");
                std::process::exit(1);
            }
        },
    };
    let addr = server.local_addr().expect("bound listener has an address");
    println!("serving on {addr}");
    println!("protocol: PING | EPOCH | DETECT [FRESH] | CHECK | EXPLAIN [PLAN] | APPLY +f,… -f,… | SYNC | REPLAY c [n] | REPAIR-PLAN | STATS [prefix] | INFO | QUIT");

    if let Some(leader) = args.follow.clone() {
        let hub = server.handle().hub().clone();
        std::thread::spawn(move || {
            let client = match Client::connect(&leader) {
                Ok(client) => client,
                Err(e) => {
                    eprintln!("serve: connecting to leader {leader}: {e}");
                    return;
                }
            };
            println!("following {leader}");
            let mut follower = Follower::new(client, hub);
            loop {
                match follower.catch_up(sync_timeout) {
                    Ok(progress) => {
                        if progress.records > 0 {
                            println!(
                                "replayed {} record(s) from {leader}; epoch {}",
                                progress.records, progress.epoch
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("serve: replication from {leader} stopped: {e}");
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(200));
            }
        });
    }

    let hub = server.handle().hub().clone();
    match server.run() {
        Ok(_session) => {
            println!("shut down cleanly; final metrics:");
            print!("{}", hub.metrics().render());
        }
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

/// The sharded serving path behind `--shards N --shard-key ATTR`.
fn run_sharded(args: &Args, shards: usize, session: Session, config: ServeConfig) {
    let shard_key = args.shard_key.as_deref().expect("validated by Args::parse");
    let sharding = ShardedConfig::new(shards, shard_key);
    let server = match &args.wal_dir {
        Some(dir) => {
            let dir = Path::new(dir);
            if !args.recover && sharded_wal_has_records(dir, shards) {
                eprintln!(
                    "serve: {} already holds shard WALs with records; pass --recover to \
                     replay them (or point --wal-dir at an empty directory)",
                    dir.display()
                );
                std::process::exit(2);
            }
            match ShardedServer::bind_durable(session, config, &sharding, dir) {
                Ok((server, recoveries)) => {
                    for (s, recovery) in recoveries.iter().enumerate() {
                        println!(
                            "shard {s}: recovered {} delta(s) to ticket {} ({} checkpoint(s) \
                             verified, {} apply error(s), {} torn byte(s) dropped)",
                            recovery.deltas_applied,
                            recovery.last_ticket,
                            recovery.checkpoints_verified,
                            recovery.apply_errors,
                            recovery.truncated_bytes,
                        );
                    }
                    server
                }
                Err(e) => {
                    eprintln!("serve: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => match ShardedServer::bind(session, config, &sharding) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("serve: {e}");
                std::process::exit(1);
            }
        },
    };
    let addr = server.local_addr().expect("bound listener has an address");
    println!("serving on {addr} ({shards} shard(s) by {shard_key})");
    println!("protocol: PING | EPOCH | DETECT [FRESH] | CHECK | EXPLAIN [PLAN] | APPLY +f,… -f,… | SYNC | REPAIR-PLAN | STATS [prefix] | INFO | QUIT");
    match server.run() {
        Ok(_sessions) => {
            println!("shut down cleanly; final metrics:");
            print!("{}", ecfd_obs::registry().render());
        }
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

/// True when `dir` already holds a WAL file with at least one record (a
/// bare magic header counts as empty, as does a missing file).
fn wal_has_records(dir: &Path) -> bool {
    let path = dir.join(ecfd_wal::WAL_FILE_NAME);
    match ecfd_wal::read_records(&path) {
        Ok(records) => !records.is_empty(),
        Err(_) => false,
    }
}

/// [`wal_has_records`] over every `shard-N/` segment of a sharded WAL dir.
fn sharded_wal_has_records(dir: &Path, shards: usize) -> bool {
    (0..shards).any(|s| wal_has_records(&dir.join(format!("shard-{s}"))))
}
