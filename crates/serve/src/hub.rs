//! The hub: shared state connecting producers, the writer and readers.

use crate::durable::WalSink;
use crate::ingest::{IngestQueue, PushError, Ticket};
use crate::store::SnapshotStore;
use crate::{Result, ServeError};
use ecfd_relation::{Delta, RowId};
use ecfd_session::Snapshot;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A point-in-time view of the hub's counters, as reported by `EPOCH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
    /// Deltas waiting in the ingest queue.
    pub queued: usize,
    /// Apply errors the writer has swallowed (bad deltas are skipped, not
    /// fatal — see [`Hub::last_error`] for the most recent message).
    pub write_errors: u64,
}

/// The shared core of a serving deployment: the [`SnapshotStore`] readers
/// poll, the [`IngestQueue`] producers feed, and the shutdown/error
/// bookkeeping that ties the threads together. The TCP [`Server`] is a thin
/// wrapper around a `Hub`; benchmarks and in-process embedders use it
/// directly.
///
/// [`Server`]: crate::Server
pub struct Hub {
    store: SnapshotStore,
    queue: IngestQueue,
    shutdown: AtomicBool,
    write_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
    /// Present in durable mode: the ticket-ordered WAL sink plus the log
    /// path the `REPLAY` verb reads from.
    durable: Option<DurableState>,
    /// Set when this hub is fed by a [`Follower`](crate::Follower) replaying
    /// a leader's WAL, as reported by `INFO`.
    follower: AtomicBool,
}

struct DurableState {
    sink: WalSink,
    wal_path: PathBuf,
    /// Whether the log held records at bootstrap (i.e. this run recovered
    /// history rather than starting fresh) — `INFO` reports `recovered`.
    recovered: bool,
}

impl std::fmt::Debug for Hub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hub")
            .field("epoch", &self.epoch())
            .field("queued", &self.queue.pending())
            .field("durable", &self.durable.is_some())
            .finish_non_exhaustive()
    }
}

impl Hub {
    /// Creates a hub publishing `initial` with an ingest queue of
    /// `queue_capacity` pending deltas.
    pub fn new(initial: Snapshot, queue_capacity: usize) -> Arc<Self> {
        Hub::with_queue(initial, IngestQueue::new(queue_capacity))
    }

    /// [`Hub::new`] with a caller-built queue (e.g. one whose metric series
    /// carry a shard label).
    pub(crate) fn with_queue(initial: Snapshot, queue: IngestQueue) -> Arc<Self> {
        Arc::new(Hub {
            store: SnapshotStore::new(initial),
            queue,
            shutdown: AtomicBool::new(false),
            write_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
            durable: None,
            follower: AtomicBool::new(false),
        })
    }

    /// Creates a durable hub: a custom queue (its ticket sequence continues
    /// the recovered log) and the WAL sink every submit must go through.
    /// Built by [`Writer::bootstrap_durable`](crate::Writer::bootstrap_durable).
    pub(crate) fn new_durable(
        initial: Snapshot,
        queue: IngestQueue,
        sink: WalSink,
        wal_path: PathBuf,
        recovered: bool,
    ) -> Arc<Self> {
        Arc::new(Hub {
            store: SnapshotStore::new(initial),
            queue,
            shutdown: AtomicBool::new(false),
            write_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
            durable: Some(DurableState {
                sink,
                wal_path,
                recovered,
            }),
            follower: AtomicBool::new(false),
        })
    }

    /// Whether submits are logged to a WAL before acknowledgement.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The WAL mode string `INFO` reports: `off` (in-memory), `durable`
    /// (fresh log), or `recovered` (the log held history at bootstrap).
    pub fn wal_mode(&self) -> &'static str {
        match &self.durable {
            None => "off",
            Some(state) if state.recovered => "recovered",
            Some(_) => "durable",
        }
    }

    /// Marks this hub as follower-fed (set by [`Follower`](crate::Follower));
    /// reported by `INFO`.
    pub(crate) fn mark_follower(&self) {
        self.follower.store(true, Ordering::SeqCst);
    }

    /// Whether a [`Follower`](crate::Follower) replays a leader's WAL into
    /// this hub.
    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::SeqCst)
    }

    /// The process-wide metrics registry every serving component reports
    /// into — the in-process equivalent of the `STATS` verb. Render it with
    /// [`Registry::render`](ecfd_obs::Registry::render); counters are
    /// monotone, so embedders scope a measurement by diffing two readings.
    pub fn metrics(&self) -> &'static ecfd_obs::Registry {
        ecfd_obs::registry()
    }

    /// Path of the WAL file in durable mode (what `REPLAY` streams from).
    pub fn wal_path(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.wal_path.as_path())
    }

    /// The snapshot store (reader side).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The ingest queue (producer/writer side).
    pub fn queue(&self) -> &IngestQueue {
        &self.queue
    }

    /// The currently published snapshot — the entry point of every reader
    /// query. Lock held for one pointer clone; everything after is lock-free.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.current()
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Submits a delta for the writer, blocking while the queue is full
    /// (backpressure). Returns the ticket to [`Hub::sync_to`] on.
    ///
    /// In durable mode the delta is appended to the WAL and fsynced under
    /// its ticket **before** this returns — the ACK a client sees implies
    /// the delta survives a crash. The capacity wait happens first and holds
    /// no WAL lock, so backpressure and logging cannot deadlock each other.
    pub fn submit(&self, delta: Delta) -> Result<Ticket> {
        let Some(durable) = &self.durable else {
            return self.enqueue(delta);
        };
        let ticket = self.enqueue(delta.clone())?;
        durable.sink.log_delta(ticket, &delta)?;
        Ok(ticket)
    }

    fn enqueue(&self, delta: Delta) -> Result<Ticket> {
        self.queue.push(delta).map_err(|e| match e {
            PushError::Closed => ServeError::QueueClosed,
            PushError::Full => unreachable!("blocking push never reports Full"),
        })
    }

    /// Enqueues a shard-routed sub-delta with globally pre-assigned
    /// insertion row ids, *without* logging it — the sharded router calls
    /// this under its serialization lock and follows up with
    /// [`Hub::log_scheduled`] after releasing it, so WAL fsyncs never run
    /// under the router lock.
    pub(crate) fn enqueue_scheduled(&self, delta: Delta, insert_ids: Vec<RowId>) -> Result<Ticket> {
        self.queue
            .push_scheduled(delta, insert_ids)
            .map_err(|e| match e {
                PushError::Closed => ServeError::QueueClosed,
                PushError::Full => unreachable!("blocking push never reports Full"),
            })
    }

    /// Logs (and fsyncs) a scheduled sub-delta under its shard-local ticket.
    /// No-op when the hub is not durable. The WAL sink tolerates
    /// out-of-order arrival, so callers may invoke this in any order after
    /// [`Hub::enqueue_scheduled`].
    pub(crate) fn log_scheduled(
        &self,
        ticket: Ticket,
        delta: &Delta,
        insert_ids: &[RowId],
    ) -> Result<()> {
        match &self.durable {
            Some(durable) => durable.sink.log_scheduled(ticket, delta, insert_ids),
            None => Ok(()),
        }
    }

    /// Appends an epoch-boundary checkpoint to the WAL (no-op when not
    /// durable). Called by the writer after publishing each snapshot.
    pub(crate) fn log_checkpoint(
        &self,
        epoch: u64,
        last_ticket: Ticket,
        report_hash: u64,
    ) -> Result<()> {
        match &self.durable {
            Some(durable) => durable.sink.log_checkpoint(epoch, last_ticket, report_hash),
            None => Ok(()),
        }
    }

    /// Blocks until every delta submitted to the hub — by *any* producer —
    /// before this call has been applied and its snapshot published (or
    /// `timeout` elapses). This is the global barrier for in-process
    /// embedders; the protocol's `SYNC` verb barriers per connection via
    /// [`Hub::sync_to`] on that connection's last ACKed ticket.
    pub fn sync(&self, timeout: Duration) -> Result<u64> {
        self.sync_to(self.queue.last_ticket(), timeout)
    }

    /// Blocks until `ticket` is applied and published, then returns the
    /// current epoch.
    pub fn sync_to(&self, ticket: Ticket, timeout: Duration) -> Result<u64> {
        if self.queue.wait_applied(ticket, timeout) {
            Ok(self.epoch())
        } else {
            Err(ServeError::SyncTimeout)
        }
    }

    /// Requests shutdown: closes the queue (pending deltas still drain) and
    /// flips the flag the accept and connection loops poll.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Whether shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Shutdown because the writer is gone: like [`Hub::shutdown`], but the
    /// queue is closed in *aborted* mode, so blocked producers get
    /// `PushError::Closed` immediately and `SYNC` barriers on never-applied
    /// tickets fail fast instead of timing out.
    pub fn abort(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close_aborted();
    }

    /// Records a writer-side apply failure (the batch is skipped).
    pub(crate) fn record_write_error(&self, message: String) {
        self.write_errors.fetch_add(1, Ordering::SeqCst);
        ecfd_obs::registry().counter("serve.write.errors").inc();
        *self.last_error.lock().unwrap_or_else(|e| e.into_inner()) = Some(message);
    }

    /// The most recent writer-side apply failure, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Current counters, as reported by the `EPOCH` verb.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            epoch: self.epoch(),
            queued: self.queue.pending(),
            write_errors: self.write_errors.load(Ordering::SeqCst),
        }
    }
}
