//! Durability plumbing: the ticket-ordered WAL sink, the canonical report
//! hash, and crash-recovery replay.
//!
//! The invariant everything here leans on: ticket order *is* the
//! serialization order, and [`Session`] bumps its version by exactly one per
//! `apply_on` call — success or skip-on-error alike. Logging each accepted
//! delta in ticket order before its ACK therefore captures enough to rebuild
//! the table *and its epochs*: replaying the log over the same base data
//! through the same apply path reproduces every published epoch number, and
//! the checkpoint records' report hashes let recovery prove it did.

use crate::ingest::Ticket;
use crate::{Result, ServeError};
use ecfd_detect::DetectionReport;
use ecfd_obs::{Counter, Histogram};
use ecfd_relation::{Delta, RowId};
use ecfd_session::Session;
use ecfd_wal::{Wal, WalRecord};
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// Handles into the process-wide registry for the WAL sink's metrics.
struct SinkMetrics {
    /// `wal.append.count` — records appended (deltas and checkpoints).
    appends: Counter,
    /// `wal.bytes` — frame bytes written to the log.
    bytes: Counter,
    /// `wal.fsync.count` — `fdatasync` calls issued.
    fsyncs: Counter,
    /// `wal.fsync.ns` — `fdatasync` latency.
    fsync_latency: Histogram,
}

impl SinkMetrics {
    /// Fetches the sink's metric handles; in a sharded deployment every
    /// series carries a `shard` label (one WAL segment per shard).
    fn fetch(shard: Option<u32>) -> Self {
        let registry = ecfd_obs::registry();
        match shard {
            None => SinkMetrics {
                appends: registry.counter("wal.append.count"),
                bytes: registry.counter("wal.bytes"),
                fsyncs: registry.counter("wal.fsync.count"),
                fsync_latency: registry.histogram("wal.fsync.ns"),
            },
            Some(shard) => {
                let shard = shard.to_string();
                let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
                SinkMetrics {
                    appends: registry.counter_with("wal.append.count", labels),
                    bytes: registry.counter_with("wal.bytes", labels),
                    fsyncs: registry.counter_with("wal.fsync.count", labels),
                    fsync_latency: registry.histogram_with("wal.fsync.ns", labels),
                }
            }
        }
    }

    /// One timed, counted fsync.
    fn sync(&self, wal: &mut Wal) -> ecfd_wal::Result<()> {
        self.fsyncs.inc();
        self.fsync_latency.time(|| wal.sync())
    }
}

/// Canonical 64-bit hash (FNV-1a) of a detection report: total rows, then
/// the SV row ids, then the MV row ids, all as little-endian `u64`s with
/// length prefixes. Two reports hash equal iff they are `==` — this is the
/// divergence-detection anchor stamped into checkpoint records and compared
/// by recovery and followers.
pub fn report_hash(report: &DetectionReport) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |n: u64| {
        for byte in n.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(report.total_rows as u64);
    eat(report.sv_rows.len() as u64);
    for row in &report.sv_rows {
        eat(row.as_u64());
    }
    eat(report.mv_rows.len() as u64);
    for row in &report.mv_rows {
        eat(row.as_u64());
    }
    hash
}

struct SinkState {
    wal: Wal,
    metrics: SinkMetrics,
    /// Records that arrived ahead of their turn, keyed by ticket: the delta
    /// plus, in sharded mode, the globally pre-assigned insertion row ids.
    pending: BTreeMap<Ticket, (Delta, Option<Vec<u64>>)>,
    /// Highest ticket whose record is on disk and fsynced.
    durable: Ticket,
    /// A write/sync failure poisons the sink: every current and future
    /// caller gets the error instead of hanging on a log that cannot grow.
    failed: Option<String>,
}

/// Serializes concurrent producers' WAL appends into strict ticket order.
///
/// Producers hold no lock while they wait for queue capacity (that happens
/// in `IngestQueue::push`, before this type is involved); they only contend
/// here, after a ticket is assigned. A producer whose ticket is next appends
/// its own record *and* any consecutive successors that arrived early, syncs
/// once for the whole run, and wakes the rest — so an out-of-order arrival
/// costs a condvar wait, not a busy loop, and fsyncs batch up naturally
/// under load.
pub(crate) struct WalSink {
    state: Mutex<SinkState>,
    advanced: Condvar,
}

impl WalSink {
    /// Wraps an opened log whose records end at `durable` (the recovered
    /// last ticket; 0 for a fresh log). `shard` labels the sink's metric
    /// series in sharded deployments.
    pub(crate) fn new(wal: Wal, durable: Ticket, shard: Option<u32>) -> Self {
        WalSink {
            state: Mutex::new(SinkState {
                wal,
                metrics: SinkMetrics::fetch(shard),
                pending: BTreeMap::new(),
                durable,
                failed: None,
            }),
            advanced: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SinkState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Logs the delta under its ticket and returns once every record up to
    /// and including `ticket` is fsynced — the fsync-before-ACK half of the
    /// durability contract.
    pub(crate) fn log_delta(&self, ticket: Ticket, delta: &Delta) -> Result<()> {
        self.log_item(ticket, delta, None)
    }

    /// [`WalSink::log_delta`] for a shard-routed delta with globally
    /// pre-assigned insertion row ids — logged as a
    /// [`WalRecord::ScheduledDelta`] so recovery replay hands out the same
    /// ids.
    pub(crate) fn log_scheduled(
        &self,
        ticket: Ticket,
        delta: &Delta,
        insert_ids: &[RowId],
    ) -> Result<()> {
        let ids = insert_ids.iter().map(|id| id.0).collect();
        self.log_item(ticket, delta, Some(ids))
    }

    fn log_item(&self, ticket: Ticket, delta: &Delta, insert_ids: Option<Vec<u64>>) -> Result<()> {
        let mut state = self.lock();
        if ticket <= state.durable {
            // Already on disk (a follower replaying records it was handed
            // twice, or a retry) — nothing to add.
            return fail_or(&state, ());
        }
        state.pending.insert(ticket, (delta.clone(), insert_ids));
        loop {
            drain(&mut state)?;
            if state.durable >= ticket {
                self.advanced.notify_all();
                return Ok(());
            }
            // A predecessor's record has not arrived yet; wait for whoever
            // completes it to drain past us.
            state = self.advanced.wait(state).unwrap_or_else(|e| e.into_inner());
            fail_or(&state, ())?;
        }
    }

    /// Appends an epoch-boundary checkpoint once everything up to
    /// `last_ticket` is durable (producers past `push` are guaranteed to be
    /// on their way here, so the wait terminates).
    pub(crate) fn log_checkpoint(
        &self,
        epoch: u64,
        last_ticket: Ticket,
        report_hash: u64,
    ) -> Result<()> {
        let mut state = self.lock();
        while state.durable < last_ticket {
            fail_or(&state, ())?;
            drain(&mut state)?;
            if state.durable >= last_ticket {
                break;
            }
            state = self.advanced.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        fail_or(&state, ())?;
        let record = WalRecord::Checkpoint {
            epoch,
            last_ticket,
            report_hash,
        };
        let state = &mut *state;
        let result = state
            .wal
            .append(&record)
            .and_then(|bytes| {
                state.metrics.appends.inc();
                state.metrics.bytes.add(bytes as u64);
                state.metrics.sync(&mut state.wal)
            })
            .map_err(ServeError::from);
        if let Err(e) = &result {
            state.failed = Some(e.to_string());
            self.advanced.notify_all();
        }
        result
    }
}

/// Appends and syncs the maximal consecutive run of pending records starting
/// at `durable + 1`. Called with the state lock held.
fn drain(state: &mut SinkState) -> Result<()> {
    fail_or(state, ())?;
    let mut appended = false;
    while let Some((delta, insert_ids)) = state.pending.remove(&(state.durable + 1)) {
        let ticket = state.durable + 1;
        let record = match insert_ids {
            Some(insert_ids) => WalRecord::ScheduledDelta {
                ticket,
                delta,
                insert_ids,
            },
            None => WalRecord::Delta { ticket, delta },
        };
        match state.wal.append(&record) {
            Ok(bytes) => {
                state.metrics.appends.inc();
                state.metrics.bytes.add(bytes as u64);
            }
            Err(e) => {
                let e = ServeError::from(e);
                state.failed = Some(e.to_string());
                return Err(e);
            }
        }
        state.durable = ticket;
        appended = true;
    }
    if appended {
        let state = &mut *state;
        if let Err(e) = state.metrics.sync(&mut state.wal) {
            let e = ServeError::from(e);
            state.failed = Some(e.to_string());
            return Err(e);
        }
    }
    Ok(())
}

fn fail_or<T>(state: &SinkState, value: T) -> Result<T> {
    match &state.failed {
        Some(message) => Err(ServeError::Wal(ecfd_wal::WalError::Io(
            std::io::Error::other(message.clone()),
        ))),
        None => Ok(value),
    }
}

/// What [`recover_session`] replayed and proved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Highest delta ticket in the log (0 when the log held none) — the
    /// recovered ingest queue continues numbering after it.
    pub last_ticket: Ticket,
    /// Delta records replayed through `Session::apply_on`.
    pub deltas_applied: usize,
    /// Replayed deltas that failed to apply — these were skipped (and
    /// counted) by the original writer too, so a nonzero value here is
    /// history repeating, not new damage.
    pub apply_errors: usize,
    /// Checkpoint records whose epoch and report hash were re-derived and
    /// matched.
    pub checkpoints_verified: usize,
    /// Torn-tail bytes dropped when the log was opened.
    pub truncated_bytes: u64,
}

impl RecoveryReport {
    /// Publishes the replay stats as `wal.recovery.*` gauges in the
    /// process-wide registry, so `STATS` (and the crash-recovery CI job) can
    /// see what a `--recover` boot actually replayed. When `shard` is set,
    /// every gauge carries a `shard` label — one recovery per WAL segment.
    pub(crate) fn export_metrics(&self, shard: Option<u32>) {
        let registry = ecfd_obs::registry();
        let shard = shard.map(|s| s.to_string());
        let gauge = |name: &str| match &shard {
            None => registry.gauge(name),
            Some(s) => registry.gauge_with(name, &[("shard", s.as_str())]),
        };
        gauge("wal.recovery.deltas").set(self.deltas_applied as i64);
        gauge("wal.recovery.apply.errors").set(self.apply_errors as i64);
        gauge("wal.recovery.checkpoints.verified").set(self.checkpoints_verified as i64);
        gauge("wal.recovery.truncated.bytes").set(self.truncated_bytes as i64);
        gauge("wal.recovery.last.ticket").set(self.last_ticket as i64);
    }
}

/// Replays a WAL over a freshly prepared base session (same data loaded,
/// same constraints registered as when the log was written), re-applying
/// every delta through the normal `Session::apply_on` path and re-verifying
/// checkpoints: the session's version must equal the checkpoint epoch and
/// the re-detected report must hash to the logged `report_hash`. Any
/// mismatch is a [`ServeError::Replication`] — the base data or constraints
/// differ from what the log was written against.
///
/// Deltas are ACKed (and logged) independently of the writer's checkpoint
/// appends, so a checkpoint for ticket *t* can sit *after* delta *t+1* in
/// the log. Replay therefore verifies a checkpoint only when its
/// `last_ticket` equals the replay high-water mark — checkpoints the replay
/// has already moved past describe epochs that no longer exist and are
/// skipped (not counted). Every quiescent epoch boundary, including the
/// bootstrap anchor and the final checkpoint, still verifies.
pub fn recover_session(
    session: &mut Session,
    table: &str,
    records: &[WalRecord],
) -> Result<RecoveryReport> {
    let mut report = RecoveryReport {
        last_ticket: 0,
        deltas_applied: 0,
        apply_errors: 0,
        checkpoints_verified: 0,
        truncated_bytes: 0,
    };
    for record in records {
        match record {
            WalRecord::Delta { ticket, delta } => {
                // Mirror the writer's skip-on-error discipline exactly: a
                // failed apply still bumps the session version (and drops its
                // caches), so epochs line up even across poisoned tickets.
                if session.apply_on(table, delta).is_err() {
                    report.apply_errors += 1;
                }
                report.deltas_applied += 1;
                report.last_ticket = report.last_ticket.max(*ticket);
            }
            WalRecord::ScheduledDelta {
                ticket,
                delta,
                insert_ids,
            } => {
                // A shard's logged delta: replay with the same globally
                // pre-assigned row ids the original run handed out.
                let ids: Vec<RowId> = insert_ids.iter().copied().map(RowId).collect();
                if session.apply_scheduled_on(table, delta, &ids).is_err() {
                    report.apply_errors += 1;
                }
                report.deltas_applied += 1;
                report.last_ticket = report.last_ticket.max(*ticket);
            }
            WalRecord::Checkpoint {
                epoch,
                last_ticket,
                report_hash: expected,
            } => {
                if *last_ticket < report.last_ticket {
                    // Replay already applied a later ticket: this checkpoint's
                    // epoch is in the past and cannot be re-derived.
                    continue;
                }
                let version = session.version();
                if version != *epoch {
                    return Err(ServeError::Replication(format!(
                        "recovery diverged: log checkpoint is epoch {epoch} but replay reached \
                         version {version} — base data or constraints differ from the logged run"
                    )));
                }
                let detected = session.detect_on(table)?;
                let actual = report_hash(&detected);
                if actual != *expected {
                    return Err(ServeError::Replication(format!(
                        "recovery diverged at epoch {epoch}: logged report hash \
                         {expected:#018x}, replayed report hashes to {actual:#018x}"
                    )));
                }
                report.checkpoints_verified += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::RowId;
    use std::collections::BTreeSet;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ecfd-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rows(ids: &[u64]) -> BTreeSet<RowId> {
        ids.iter().copied().map(RowId).collect()
    }

    #[test]
    fn report_hash_separates_fields_and_orders() {
        let a = DetectionReport {
            sv_rows: rows(&[1, 2]),
            mv_rows: rows(&[]),
            total_rows: 5,
        };
        let b = DetectionReport {
            sv_rows: rows(&[]),
            mv_rows: rows(&[1, 2]),
            total_rows: 5,
        };
        let c = DetectionReport {
            sv_rows: rows(&[1]),
            mv_rows: rows(&[2]),
            total_rows: 5,
        };
        assert_ne!(report_hash(&a), report_hash(&b), "sv vs mv must differ");
        assert_ne!(report_hash(&a), report_hash(&c), "split point matters");
        assert_eq!(report_hash(&a), report_hash(&a.clone()));
    }

    #[test]
    fn sink_serializes_out_of_order_tickets() {
        let dir = temp_dir("sink");
        let wal = Wal::open(&dir).unwrap().wal;
        let path = wal.path().to_path_buf();
        let sink = Arc::new(WalSink::new(wal, 0, None));
        let delta =
            |tag: &str| Delta::insert_only(vec![ecfd_relation::Tuple::from_iter([tag, "518"])]);

        // Tickets logged from separate threads in scrambled order: the file
        // must come out strictly 1, 2, 3, 4.
        std::thread::scope(|s| {
            for ticket in [3u64, 1, 4, 2] {
                let sink = Arc::clone(&sink);
                let delta = delta(&format!("t{ticket}"));
                s.spawn(move || sink.log_delta(ticket, &delta).unwrap());
            }
        });
        sink.log_checkpoint(7, 4, 99).unwrap();

        let records = ecfd_wal::read_records(&path).unwrap();
        let tickets: Vec<u64> = records
            .iter()
            .map(|r| match r {
                WalRecord::Delta { ticket, .. } => *ticket,
                WalRecord::ScheduledDelta { ticket, .. } => *ticket,
                WalRecord::Checkpoint { last_ticket, .. } => *last_ticket,
            })
            .collect();
        assert_eq!(tickets, vec![1, 2, 3, 4, 4]);
        assert!(matches!(
            records.last(),
            Some(WalRecord::Checkpoint { epoch: 7, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
