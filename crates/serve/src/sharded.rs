//! Sharded multi-writer serving: row partitioning, the global-id router,
//! and the cross-shard merge layer.
//!
//! A sharded deployment partitions one relation's rows over `N` independent
//! per-shard serving stacks — each with its own [`Session`], [`Writer`],
//! ingest queue, WAL segment and snapshot store — by hashing the value of a
//! configured **shard attribute** ([`shard_of_value`]). Routing hashes
//! *values*, never dictionary codes, so placement is stable across restarts
//! and across the shards' independently grown dictionaries.
//!
//! Correctness hinges on one invariant, asserted end-to-end by the sharded
//! differential suite: **the merged report is byte-identical to what a
//! single unsharded session fed the same deltas would publish.** Two
//! mechanisms make that hold:
//!
//! * **Global row-id pre-assignment.** The router owns the global row-id
//!   counter. Every submitted delta's insertions receive consecutive global
//!   ids under the router lock — exactly the ids a single session's
//!   insertion counter would hand out — and each shard's writer applies its
//!   sub-delta with those ids scheduled
//!   ([`Session::apply_scheduled_on`](ecfd_session::Session::apply_scheduled_on)).
//!   Reports and evidence are keyed by row id, so id equality is what turns
//!   "same violations" into "same bytes".
//! * **The merge layer.** Constraints whose `X` contains the shard key are
//!   *aligned*: every enforcement group lives entirely on one shard, and its
//!   violations are final locally. The rest leave their groups **open**;
//!   [`ShardedHub::merged`] decodes the per-shard group keys back to values
//!   (per-shard dictionaries assign different codes to the same value) and
//!   merges the open groups across shards before deciding violations — see
//!   [`SemanticDetector::merge_partials`](ecfd_detect::SemanticDetector::merge_partials).
//!
//! Durability composes per shard: each shard logs its sub-deltas (with
//! their pre-assigned ids, as [`ScheduledDelta`](ecfd_wal::WalRecord)
//! records) into `wal_dir/shard-N/`, and recovery replays every shard then
//! re-verifies the merged report hash against `wal_dir/merged.ckpt`.

use crate::durable::{report_hash, RecoveryReport};
use crate::hub::{Hub, ServeStats};
use crate::ingest::Ticket;
use crate::writer::Writer;
use crate::{Result, ServeError};
use ecfd_detect::{DetectionReport, EvidenceReport, ShardPartial};
use ecfd_relation::{shard_of_value, AttrId, Delta, Relation, RowId, Schema, Tuple};
use ecfd_session::{Session, SessionError, Snapshot};
use ecfd_wal::WalRecord;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tuning knobs of a sharded deployment.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (clamped to at least 1).
    pub num_shards: usize,
    /// Name of the attribute whose value routes each row to its shard.
    pub shard_key: String,
    /// Per-shard ingest-queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Per-shard writer batch cap (deltas applied per published epoch).
    pub batch_max: usize,
    /// Worker fan-out for the merge layer's partition scans (`None` lets
    /// each scan auto-size, the default).
    pub detect_workers: Option<usize>,
}

impl ShardedConfig {
    /// A config with the default queue capacity (64), batch cap (32) and
    /// auto-sized detect workers.
    pub fn new(num_shards: usize, shard_key: &str) -> Self {
        ShardedConfig {
            num_shards: num_shards.max(1),
            shard_key: shard_key.to_string(),
            queue_capacity: 64,
            batch_max: 32,
            detect_workers: None,
        }
    }
}

/// What one [`ShardedHub::submit`] produced: the global ticket (the delta's
/// position in the router's serialization order) and the per-shard tickets
/// of its non-empty sub-deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// Position in the global serialization order (starting at 1).
    pub global: Ticket,
    /// `(shard, shard-local ticket)` for every shard that received work.
    pub shard_tickets: Vec<(usize, Ticket)>,
}

/// A merged cross-shard view: the global report and evidence over one cut
/// of per-shard snapshots.
#[derive(Debug, Clone)]
pub struct MergedView {
    /// The per-shard snapshot epochs this view was merged from.
    pub epochs: Vec<u64>,
    /// The merged detection report — byte-identical to a from-scratch
    /// single-session detection over the union of the shards' rows.
    pub report: DetectionReport,
    /// The merged evidence behind [`MergedView::report`].
    pub evidence: EvidenceReport,
    /// The per-shard snapshots the view was computed from.
    pub snapshots: Vec<Arc<Snapshot>>,
}

impl MergedView {
    /// The global epoch: the sum of the shard epochs. Monotone, because
    /// every shard's epoch is.
    pub fn epoch(&self) -> u64 {
        self.epochs.iter().sum()
    }
}

struct RouterState {
    /// Next global row id to hand to an insertion.
    next_row_id: u64,
    /// Next global ticket to issue.
    next_global: Ticket,
    /// Highest global ticket whose every shard part is applied+published.
    applied_global: Ticket,
    /// Per-shard tickets of global tickets not yet fully applied.
    inflight: BTreeMap<Ticket, Vec<(usize, Ticket)>>,
}

/// The shared core of a sharded deployment: `N` per-shard [`Hub`]s behind
/// one router (global tickets + global row-id pre-assignment) and one merge
/// layer. The sharded analogue of [`Hub`] — the TCP front end and
/// in-process embedders drive this type directly.
pub struct ShardedHub {
    table: String,
    schema: Schema,
    shard_key: String,
    shard_attr: AttrId,
    /// Per split constraint: does its `X` contain the shard key?
    aligned: Vec<bool>,
    hubs: Vec<Arc<Hub>>,
    router: Mutex<RouterState>,
    merged_cache: Mutex<Option<Arc<MergedView>>>,
    detect_workers: Option<usize>,
    /// Present in durable mode: where the merged checkpoint is persisted.
    merged_ckpt: Option<PathBuf>,
}

impl std::fmt::Debug for ShardedHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHub")
            .field("table", &self.table)
            .field("shards", &self.hubs.len())
            .field("shard_key", &self.shard_key)
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

impl ShardedHub {
    /// Bootstraps a sharded deployment from a prepared template session
    /// (data loaded, constraints registered): partitions the template's rows
    /// by the shard key's value, builds one independent session + writer +
    /// hub per shard (rows keep their global ids), and returns the per-shard
    /// writers alongside the hub. Run each writer against its hub
    /// (`writers[s].run(&hub.shard_hubs()[s])`) — or step them manually in
    /// tests.
    pub fn bootstrap(
        template: Session,
        config: &ShardedConfig,
    ) -> Result<(Vec<Writer>, Arc<Self>)> {
        let parts = PartitionedTemplate::build(template, config)?;
        let mut writers = Vec::with_capacity(parts.sessions.len());
        let mut hubs = Vec::with_capacity(parts.sessions.len());
        for (s, session) in parts.sessions.into_iter().enumerate() {
            let (writer, hub) = Writer::bootstrap_shard(
                session,
                config.queue_capacity,
                config.batch_max,
                Some(s as u32),
            )?;
            writers.push(writer);
            hubs.push(hub);
        }
        let hub = parts.meta.into_hub(hubs, config, None);
        Ok((writers, hub))
    }

    /// [`ShardedHub::bootstrap`], durable: each shard opens (or recovers)
    /// its own WAL segment in `wal_dir/shard-N/`, the global row-id counter
    /// continues past every id any shard's log ever assigned, and the merged
    /// report is re-verified against `wal_dir/merged.ckpt` when the
    /// recovered epochs match the checkpointed ones (gauge
    /// `wal.recovery.merged.verified`). Returns the per-shard recovery
    /// reports.
    pub fn bootstrap_durable(
        template: Session,
        config: &ShardedConfig,
        wal_dir: &Path,
    ) -> Result<(Vec<Writer>, Arc<Self>, Vec<RecoveryReport>)> {
        let parts = PartitionedTemplate::build(template, config)?;
        let mut writers = Vec::with_capacity(parts.sessions.len());
        let mut hubs = Vec::with_capacity(parts.sessions.len());
        let mut recoveries = Vec::with_capacity(parts.sessions.len());
        let mut next_row_id = parts.meta.next_row_id;
        for (s, session) in parts.sessions.into_iter().enumerate() {
            let shard_dir = wal_dir.join(format!("shard-{s}"));
            let (writer, hub, recovery) = Writer::bootstrap_durable_shard(
                session,
                config.queue_capacity,
                config.batch_max,
                &shard_dir,
                Some(s as u32),
            )?;
            // The global id sequence must continue past every id this
            // shard's log ever assigned — surviving rows alone understate it
            // when logged insertions were later deleted.
            if let Some(path) = hub.wal_path() {
                for record in ecfd_wal::read_records(path)? {
                    if let WalRecord::ScheduledDelta { insert_ids, .. } = record {
                        for id in insert_ids {
                            next_row_id = next_row_id.max(id + 1);
                        }
                    }
                }
            }
            writers.push(writer);
            hubs.push(hub);
            recoveries.push(recovery);
        }
        let mut meta = parts.meta;
        meta.next_row_id = next_row_id;
        let hub = meta.into_hub(hubs, config, Some(wal_dir.join("merged.ckpt")));
        hub.verify_recovered_merged()?;
        Ok((writers, hub, recoveries))
    }

    // ── accessors ─────────────────────────────────────────────────────────

    /// Name of the served relation.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The relation's base schema (shared by every shard).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Name of the routing attribute.
    pub fn shard_key(&self) -> &str {
        &self.shard_key
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.hubs.len()
    }

    /// The per-shard hubs, indexed by shard.
    pub fn shard_hubs(&self) -> &[Arc<Hub>] {
        &self.hubs
    }

    /// The global epoch: sum of the shard epochs (each shard's epoch is
    /// monotone, so the sum is too).
    pub fn epoch(&self) -> u64 {
        self.hubs.iter().map(|h| h.epoch()).sum()
    }

    /// Whether submits are WAL-logged before acknowledgement.
    pub fn is_durable(&self) -> bool {
        self.merged_ckpt.is_some()
    }

    /// The WAL mode string `INFO` reports (`off` / `durable` / `recovered`);
    /// a deployment counts as recovered when *any* shard's log held history.
    pub fn wal_mode(&self) -> &'static str {
        if self.hubs.iter().any(|h| h.wal_mode() == "recovered") {
            "recovered"
        } else {
            self.hubs[0].wal_mode()
        }
    }

    /// Aggregated counters across the shards, as reported by `EPOCH`.
    pub fn stats(&self) -> ServeStats {
        let mut total = ServeStats {
            epoch: self.epoch(),
            queued: 0,
            write_errors: 0,
        };
        for hub in &self.hubs {
            let stats = hub.stats();
            total.queued += stats.queued;
            total.write_errors += stats.write_errors;
        }
        total
    }

    /// The most recent writer-side apply failure on any shard, if any.
    pub fn last_error(&self) -> Option<String> {
        self.hubs.iter().find_map(|h| h.last_error())
    }

    // ── the router: submit / sync / progress ──────────────────────────────

    /// Which shard a tuple routes to. Tuples too short to reach the shard
    /// attribute go to shard 0, whose writer records the apply failure.
    pub fn shard_of_tuple(&self, tuple: &Tuple) -> usize {
        match tuple.get(self.shard_attr) {
            Some(value) => shard_of_value(value, self.hubs.len()),
            None => 0,
        }
    }

    fn lock_router(&self) -> MutexGuard<'_, RouterState> {
        self.router.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Submits a delta: routes every tuple to its shard, pre-assigns global
    /// row ids to the insertions **in submission order** (the router lock
    /// defines the global serialization — concurrent submitters' id blocks
    /// never interleave), enqueues the non-empty sub-deltas, and — in
    /// durable mode — logs each sub-delta to its shard's WAL (fsynced
    /// before this returns, *outside* the router lock).
    pub fn submit(&self, delta: Delta) -> Result<SubmitReceipt> {
        let shards = self.hubs.len();
        let mut parts: Vec<Delta> = std::iter::repeat_with(Delta::new).take(shards).collect();
        let mut ids: Vec<Vec<RowId>> = vec![Vec::new(); shards];
        // Route outside the lock — hashing needs no shared state.
        let targets: Vec<usize> = delta
            .insertions
            .iter()
            .map(|t| self.shard_of_tuple(t))
            .collect();
        for (tuple, &s) in delta.insertions.iter().zip(&targets) {
            parts[s].insertions.push(tuple.clone());
        }
        for tuple in &delta.deletions {
            // All rows equal to this tuple share its shard-key value, hence
            // its shard — deleting there deletes every global duplicate.
            parts[self.shard_of_tuple(tuple)]
                .deletions
                .push(tuple.clone());
        }

        let mut router = self.lock_router();
        for &s in &targets {
            ids[s].push(RowId(router.next_row_id));
            router.next_row_id += 1;
        }
        let mut shard_tickets = Vec::new();
        for s in 0..shards {
            if parts[s].is_empty() {
                continue;
            }
            let ticket = self.hubs[s].enqueue_scheduled(parts[s].clone(), ids[s].clone())?;
            shard_tickets.push((s, ticket));
        }
        let global = router.next_global;
        router.next_global += 1;
        router.inflight.insert(global, shard_tickets.clone());
        drop(router);

        // WAL appends (and their fsyncs) happen outside the router lock; the
        // sink reorders out-of-order arrivals into strict ticket order.
        for &(s, ticket) in &shard_tickets {
            self.hubs[s].log_scheduled(ticket, &parts[s], &ids[s])?;
        }
        Ok(SubmitReceipt {
            global,
            shard_tickets,
        })
    }

    /// The highest global ticket issued so far (0 before the first submit).
    pub fn accepted_global(&self) -> Ticket {
        self.lock_router().next_global - 1
    }

    /// The highest global ticket whose every shard part has been applied
    /// and published — the global applied watermark `INFO` reports.
    pub fn applied_global(&self) -> Ticket {
        let mut router = self.lock_router();
        while let Some((_, shard_tickets)) = router.inflight.first_key_value() {
            let done = shard_tickets
                .iter()
                .all(|&(s, t)| self.hubs[s].queue().is_applied(t));
            if !done {
                break;
            }
            let (global, _) = router.inflight.pop_first().expect("non-empty");
            router.applied_global = global;
        }
        router.applied_global
    }

    /// Blocks until every shard has applied and published the per-shard
    /// tickets in `tickets` (one entry per shard; 0 skips a shard), then
    /// returns the global epoch. The per-connection `SYNC` barrier: a shard
    /// whose writer died fails the wait fast instead of hanging.
    pub fn sync_tickets(&self, tickets: &[Ticket], timeout: Duration) -> Result<u64> {
        let deadline = Instant::now() + timeout;
        for (s, &ticket) in tickets.iter().enumerate() {
            if ticket == 0 {
                continue;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            self.hubs[s].sync_to(ticket, remaining)?;
        }
        Ok(self.epoch())
    }

    /// Blocks until everything submitted to *any* shard before this call is
    /// applied and published — the global barrier for in-process embedders.
    pub fn sync(&self, timeout: Duration) -> Result<u64> {
        let tickets: Vec<Ticket> = self.hubs.iter().map(|h| h.queue().last_ticket()).collect();
        self.sync_tickets(&tickets, timeout)
    }

    /// Requests shutdown on every shard (pending deltas still drain).
    pub fn shutdown(&self) {
        for hub in &self.hubs {
            hub.shutdown();
        }
    }

    /// Whether any shard has begun shutting down.
    pub fn is_shutdown(&self) -> bool {
        self.hubs.iter().any(|h| h.is_shutdown())
    }

    // ── the merge layer ───────────────────────────────────────────────────

    /// The merged cross-shard view of the current per-shard snapshots,
    /// cached by epoch vector: repeated reads at an unchanged cut are free.
    /// In durable mode a fresh merge also persists the merged checkpoint
    /// (`merged.ckpt`: epoch vector + report hash) for the next recovery to
    /// verify against.
    pub fn merged(&self) -> Result<Arc<MergedView>> {
        let snapshots: Vec<Arc<Snapshot>> = self.hubs.iter().map(|h| h.snapshot()).collect();
        let epochs: Vec<u64> = snapshots.iter().map(|s| s.epoch()).collect();
        {
            let cache = self.merged_cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(view) = cache.as_ref() {
                if view.epochs == epochs {
                    return Ok(Arc::clone(view));
                }
            }
        }
        let view = Arc::new(self.merge(snapshots)?);
        self.persist_merged(&view)?;
        *self.merged_cache.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&view));
        Ok(view)
    }

    /// A from-scratch merge of the current per-shard snapshots, bypassing
    /// (and not updating) the cache — the `DETECT FRESH` path readers use to
    /// *verify* the published merged state rather than trust it.
    pub fn merged_fresh(&self) -> Result<MergedView> {
        let snapshots: Vec<Arc<Snapshot>> = self.hubs.iter().map(|h| h.snapshot()).collect();
        self.merge(snapshots)
    }

    fn merge(&self, snapshots: Vec<Arc<Snapshot>>) -> Result<MergedView> {
        let epochs: Vec<u64> = snapshots.iter().map(|s| s.epoch()).collect();
        let partials: Vec<ShardPartial> = snapshots
            .iter()
            .map(|snap| match self.detect_workers {
                Some(workers) => snap.detect_partition_with(&self.aligned, workers),
                None => snap.detect_partition(&self.aligned),
            })
            .collect::<std::result::Result<_, SessionError>>()?;
        let (report, evidence) = snapshots[0].merge_partials(partials);
        Ok(MergedView {
            epochs,
            report,
            evidence,
            snapshots,
        })
    }

    /// Composes the current per-shard snapshots into one self-contained
    /// single-session snapshot over the union of the shards' rows — the
    /// oracle path behind `CHECK` and `REPAIR-PLAN`.
    pub fn compose(&self) -> Result<Snapshot> {
        let snapshots: Vec<Arc<Snapshot>> = self.hubs.iter().map(|h| h.snapshot()).collect();
        let refs: Vec<&Snapshot> = snapshots.iter().map(Arc::as_ref).collect();
        Ok(Snapshot::compose(&refs)?)
    }

    // ── merged checkpoint persistence ─────────────────────────────────────

    fn persist_merged(&self, view: &MergedView) -> Result<()> {
        let Some(path) = &self.merged_ckpt else {
            return Ok(());
        };
        let text = render_merged_ckpt(&view.epochs, report_hash(&view.report));
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// At durable bootstrap: if the persisted merged checkpoint describes
    /// exactly the recovered epoch vector, the recovered merge must hash to
    /// it — anything else is a [`ServeError::Replication`]. A checkpoint for
    /// a different epoch vector is stale (the crash happened between a
    /// shard's publish and the next merged read) and is skipped, not an
    /// error. Either way the gauge `wal.recovery.merged.verified` records
    /// what happened and a fresh checkpoint is persisted.
    fn verify_recovered_merged(&self) -> Result<()> {
        let stored = self
            .merged_ckpt
            .as_ref()
            .and_then(|path| std::fs::read_to_string(path).ok())
            .and_then(|text| parse_merged_ckpt(&text));
        let view = self.merged_fresh()?;
        let verified = match stored {
            Some((epochs, expected)) if epochs == view.epochs => {
                let actual = report_hash(&view.report);
                if actual != expected {
                    return Err(ServeError::Replication(format!(
                        "sharded recovery diverged: merged checkpoint hashes to \
                         {expected:#018x} at epochs {epochs:?}, replayed merge hashes to \
                         {actual:#018x}"
                    )));
                }
                true
            }
            _ => false,
        };
        ecfd_obs::registry()
            .gauge("wal.recovery.merged.verified")
            .set(i64::from(verified));
        self.persist_merged(&view)?;
        *self.merged_cache.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(view));
        Ok(())
    }
}

fn render_merged_ckpt(epochs: &[u64], hash: u64) -> String {
    let epochs = epochs
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("epochs {epochs}\nhash {hash:#018x}\n")
}

fn parse_merged_ckpt(text: &str) -> Option<(Vec<u64>, u64)> {
    let mut lines = text.lines();
    let epochs = lines
        .next()?
        .strip_prefix("epochs ")?
        .split(',')
        .map(|part| part.trim().parse::<u64>().ok())
        .collect::<Option<Vec<u64>>>()?;
    let hash_text = lines.next()?.strip_prefix("hash ")?.trim();
    let hash = u64::from_str_radix(hash_text.strip_prefix("0x")?, 16).ok()?;
    Some((epochs, hash))
}

/// The shard-independent metadata extracted from a template session, plus
/// the per-shard sessions built from its rows.
struct PartitionedTemplate {
    meta: PartitionMeta,
    sessions: Vec<Session>,
}

struct PartitionMeta {
    table: String,
    schema: Schema,
    shard_key: String,
    shard_attr: AttrId,
    aligned: Vec<bool>,
    next_row_id: u64,
}

impl PartitionMeta {
    fn into_hub(
        self,
        hubs: Vec<Arc<Hub>>,
        config: &ShardedConfig,
        merged_ckpt: Option<PathBuf>,
    ) -> Arc<ShardedHub> {
        Arc::new(ShardedHub {
            table: self.table,
            schema: self.schema,
            shard_key: self.shard_key,
            shard_attr: self.shard_attr,
            aligned: self.aligned,
            hubs,
            router: Mutex::new(RouterState {
                next_row_id: self.next_row_id,
                next_global: 1,
                applied_global: 0,
                inflight: BTreeMap::new(),
            }),
            merged_cache: Mutex::new(None),
            detect_workers: config.detect_workers,
            merged_ckpt,
        })
    }
}

impl PartitionedTemplate {
    /// Partitions a prepared template session's rows by the shard key's
    /// hashed value into one fresh session per shard. Rows keep their global
    /// ids, and the global id counter continues after the highest existing
    /// id — exactly where the template's own insertion counter stood for
    /// freshly loaded data.
    fn build(mut template: Session, config: &ShardedConfig) -> Result<PartitionedTemplate> {
        let num_shards = config.num_shards.max(1);
        let snapshot = template.snapshot()?;
        let table = snapshot.table().to_string();
        let schema = snapshot.schema().clone();
        let shard_attr = schema
            .require_attr(&config.shard_key)
            .map_err(SessionError::from)?;
        let aligned = snapshot.aligned_mask(&config.shard_key)?;

        let mut rows: Vec<Vec<(RowId, Tuple)>> = vec![Vec::new(); num_shards];
        let mut next_row_id = 0u64;
        for (id, values) in snapshot.frozen().decode_rows() {
            let shard = shard_of_value(&values[shard_attr.index()], num_shards);
            next_row_id = next_row_id.max(id.0 + 1);
            rows[shard].push((id, Tuple::new(values)));
        }

        let source = snapshot.constraints().source();
        let mut sessions = Vec::with_capacity(num_shards);
        for shard_rows in rows {
            let relation =
                Relation::with_rows(schema.clone(), shard_rows).map_err(SessionError::from)?;
            let mut session = Session::new();
            session.load(relation)?;
            session.register(source)?;
            sessions.push(session);
        }
        Ok(PartitionedTemplate {
            meta: PartitionMeta {
                table,
                schema,
                shard_key: config.shard_key.clone(),
                shard_attr,
                aligned,
                next_row_id,
            },
            sessions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{DataType, Schema};
    use std::time::Duration;

    fn template() -> Session {
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        let data = Relation::with_tuples(
            schema,
            [
                Tuple::from_iter(["Albany", "718"]), // SV: wrong area code
                Tuple::from_iter(["NYC", "212"]),
                Tuple::from_iter(["Troy", "518"]),
            ],
        )
        .unwrap();
        let mut session = Session::new();
        session.load(data).unwrap();
        session
            .register_text(
                "cust: [CT] -> [AC] | [], { {Albany} || {518} }\n\
                 cust: [AC] -> [CT] | [], { {_} || {_} }",
            )
            .unwrap();
        session
    }

    /// The unsharded oracle: the same base and constraints in one session.
    fn oracle() -> Session {
        template()
    }

    fn drive(writers: &mut [Writer], hub: &ShardedHub) {
        for (s, writer) in writers.iter_mut().enumerate() {
            while hub.shard_hubs()[s].queue().pending() > 0 {
                writer
                    .step(&hub.shard_hubs()[s], Duration::from_millis(10))
                    .unwrap();
            }
        }
    }

    #[test]
    fn sharded_merge_matches_unsharded_oracle_after_deltas() {
        for shards in [1usize, 2, 4] {
            let config = ShardedConfig::new(shards, "AC");
            let (mut writers, hub) = ShardedHub::bootstrap(template(), &config).unwrap();
            let mut oracle = oracle();

            let deltas = [
                Delta::insert_only(vec![
                    Tuple::from_iter(["Albany", "519"]),
                    Tuple::from_iter(["Utica", "315"]),
                ]),
                // A cross-shard MV conflict for [AC] -> [CT]: same area code,
                // two cities. Also delete an original row.
                Delta {
                    insertions: vec![Tuple::from_iter(["Watervliet", "518"])],
                    deletions: vec![Tuple::from_iter(["NYC", "212"])],
                },
                Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])]),
            ];
            for delta in &deltas {
                hub.submit(delta.clone()).unwrap();
                oracle.apply_on("cust", delta).unwrap();
            }
            drive(&mut writers, &hub);

            let merged = hub.merged().unwrap();
            let expected = oracle.detect_on("cust").unwrap();
            assert_eq!(
                merged.report, expected,
                "{shards}-shard merged report differs from the oracle"
            );
            let snapshot = oracle.snapshot().unwrap();
            assert_eq!(merged.evidence, *snapshot.evidence());

            // DETECT FRESH bypasses the cache and re-derives identically.
            let fresh = hub.merged_fresh().unwrap();
            assert_eq!(fresh.report, expected);

            // The composed single-session snapshot agrees too.
            let composed = hub.compose().unwrap();
            assert_eq!(*composed.report(), expected);

            // Cached reads at the same cut are the same Arc.
            let again = hub.merged().unwrap();
            assert!(Arc::ptr_eq(&merged, &again));
        }
    }

    #[test]
    fn router_tracks_global_progress() {
        let config = ShardedConfig::new(2, "CT");
        let (mut writers, hub) = ShardedHub::bootstrap(template(), &config).unwrap();
        assert_eq!(hub.accepted_global(), 0);
        assert_eq!(hub.applied_global(), 0);

        let r1 = hub
            .submit(Delta::insert_only(vec![
                Tuple::from_iter(["Albany", "519"]),
                Tuple::from_iter(["NYC", "999"]),
            ]))
            .unwrap();
        assert_eq!(r1.global, 1);
        let r2 = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter(["Utica", "315"])]))
            .unwrap();
        assert_eq!(r2.global, 2);
        assert_eq!(hub.accepted_global(), 2);
        assert_eq!(hub.applied_global(), 0);

        drive(&mut writers, &hub);
        assert_eq!(hub.sync(Duration::from_secs(5)).unwrap(), hub.epoch());
        assert_eq!(hub.applied_global(), 2);

        // Row ids were assigned globally in submission order: 3 base rows,
        // then 3 insertions.
        let composed = hub.compose().unwrap();
        let ids: Vec<u64> = composed
            .to_relation()
            .unwrap()
            .row_ids()
            .into_iter()
            .map(|id| id.0)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn merged_ckpt_round_trips() {
        let rendered = render_merged_ckpt(&[3, 0, 7], 0xdead_beef_0123_4567);
        assert_eq!(
            parse_merged_ckpt(&rendered),
            Some((vec![3, 0, 7], 0xdead_beef_0123_4567))
        );
        assert_eq!(parse_merged_ckpt("garbage"), None);
    }
}
