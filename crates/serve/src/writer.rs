//! The single writer: drain the queue, apply, snapshot, publish.

use crate::hub::Hub;
use crate::Result;
use ecfd_session::Session;
use std::sync::Arc;
use std::time::Duration;

/// What one [`Writer::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A batch of this many deltas was applied and a new epoch published.
    Applied(usize),
    /// Nothing was pending within the timeout.
    Idle,
    /// The queue is closed and fully drained — the writer loop should exit.
    Drained,
}

/// The sole owner of the mutable [`Session`] in a serving deployment.
///
/// The writer enforces the single-writer discipline by construction: it
/// *consumes* the session, so no other code can touch it while serving, and
/// [`Writer::run`] hands it back when the hub shuts down. Each cycle pops up
/// to `batch_max` pending deltas and applies them **one at a time, in ticket
/// order** — ticket order *is* the serialization order, and `+X` then `-X`
/// from different clients always means X ends up deleted, regardless of how
/// the deltas landed in batches. Each delta routes through the session's
/// policy (incremental maintenance below the delta-size threshold, a fresh
/// pass above it); one epoch-stamped snapshot is published per cycle, after
/// the whole batch.
///
/// A failing delta (e.g. tuples that no longer fit the schema) is counted
/// and skipped rather than wedging the loop — the blast radius is that one
/// ticket; later tickets in the same batch still apply. Skipped tickets are
/// still marked applied so `SYNC` barriers cannot hang on a poisoned delta
/// (the error is observable via the `ERRORS` counter of `EPOCH` and
/// [`Hub::last_error`]).
#[derive(Debug)]
pub struct Writer {
    session: Session,
    table: String,
    batch_max: usize,
}

impl Writer {
    /// Builds the writer around a prepared session (data loaded, constraints
    /// registered) and publishes the initial snapshot into a fresh [`Hub`]
    /// with the given ingest-queue capacity. Returns the writer and the hub
    /// to share with producers and readers.
    pub fn bootstrap(
        mut session: Session,
        queue_capacity: usize,
        batch_max: usize,
    ) -> Result<(Writer, Arc<Hub>)> {
        let snapshot = session.snapshot()?;
        let table = snapshot.table().to_string();
        let hub = Hub::new(snapshot, queue_capacity);
        Ok((
            Writer {
                session,
                table,
                batch_max: batch_max.max(1),
            },
            hub,
        ))
    }

    /// Name of the served relation.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Read access to the owned session (e.g. for pre-run inspection).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Runs one cycle: wait up to `timeout` for pending deltas, apply them
    /// in ticket order, publish one new snapshot covering the whole batch.
    pub fn step(&mut self, hub: &Hub, timeout: Duration) -> Result<StepOutcome> {
        let Some(batch) = hub.queue().pop_batch(self.batch_max, timeout) else {
            return Ok(StepOutcome::Drained);
        };
        if batch.is_empty() {
            return Ok(StepOutcome::Idle);
        }
        let max_ticket = batch.iter().map(|(t, _)| *t).max().expect("non-empty");
        let count = batch.len();
        for (ticket, delta) in batch {
            // One failing ticket is skipped (and recorded) on its own; a
            // failed apply drops the session's caches, so the snapshot below
            // still describes the actual table contents.
            if let Err(e) = self.session.apply_on(&self.table, &delta) {
                hub.record_write_error(format!("ticket {ticket}: {e}"));
            }
        }
        let snapshot = self.session.snapshot_of(&self.table)?;
        hub.store().publish(snapshot);
        hub.queue().mark_applied(max_ticket);
        Ok(StepOutcome::Applied(count))
    }

    /// The writer loop: steps until the hub shuts down and the queue drains,
    /// then returns the session to the caller.
    pub fn run(mut self, hub: &Hub) -> Result<Session> {
        loop {
            match self.step(hub, Duration::from_millis(20))? {
                StepOutcome::Drained => return Ok(self.session),
                StepOutcome::Applied(_) | StepOutcome::Idle => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{DataType, Delta, Relation, Schema, Tuple};

    fn ready_session() -> Session {
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        let data = Relation::with_tuples(
            schema,
            [
                Tuple::from_iter(["Albany", "718"]),
                Tuple::from_iter(["NYC", "212"]),
            ],
        )
        .unwrap();
        let mut session = Session::new();
        session.load(data).unwrap();
        session
            .register_text("cust: [CT] -> [AC] | [], { {Albany} || {518} }")
            .unwrap();
        session
    }

    #[test]
    fn steps_apply_merge_publish_and_mark_applied() {
        let (mut writer, hub) = Writer::bootstrap(ready_session(), 8, 4).unwrap();
        assert_eq!(writer.table(), "cust");
        let e0 = hub.epoch();
        assert_eq!(hub.snapshot().report().num_sv(), 1);

        let t1 = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter([
                "Albany", "519",
            ])]))
            .unwrap();
        let t2 = hub
            .submit(Delta::delete_only(vec![Tuple::from_iter(["NYC", "212"])]))
            .unwrap();
        assert_eq!(
            writer.step(&hub, Duration::from_millis(10)).unwrap(),
            StepOutcome::Applied(2),
            "both deltas apply in one cycle"
        );
        assert!(hub.queue().is_applied(t2));
        assert!(hub.epoch() > e0);
        let snap = hub.snapshot();
        assert_eq!(snap.num_rows(), 2);
        assert!(hub.queue().is_applied(t1));
        assert_eq!(&snap.detect_fresh().unwrap(), snap.report());

        assert_eq!(
            writer.step(&hub, Duration::from_millis(5)).unwrap(),
            StepOutcome::Idle
        );
        hub.shutdown();
        assert_eq!(
            writer.step(&hub, Duration::from_millis(5)).unwrap(),
            StepOutcome::Drained
        );
    }

    #[test]
    fn tickets_apply_in_submission_order_within_a_batch() {
        let (mut writer, hub) = Writer::bootstrap(ready_session(), 8, 8).unwrap();
        // +X then -X from two producers, popped as ONE batch: ticket order
        // must win, so X ends up deleted (a merged delete-then-insert replay
        // would resurrect it).
        hub.submit(Delta::insert_only(vec![Tuple::from_iter(["Utica", "315"])]))
            .unwrap();
        hub.submit(Delta::delete_only(vec![Tuple::from_iter(["Utica", "315"])]))
            .unwrap();
        assert_eq!(
            writer.step(&hub, Duration::from_millis(10)).unwrap(),
            StepOutcome::Applied(2)
        );
        let snap = hub.snapshot();
        assert_eq!(snap.num_rows(), 2, "the inserted row was deleted again");
        assert!(!snap
            .to_relation()
            .unwrap()
            .tuples()
            .any(|t| t == &Tuple::from_iter(["Utica", "315"])));
        assert_eq!(hub.stats().write_errors, 0);
    }

    #[test]
    fn bad_deltas_are_skipped_not_fatal() {
        let (mut writer, hub) = Writer::bootstrap(ready_session(), 8, 4).unwrap();
        let before = hub.snapshot();
        // An insertion with the wrong arity cannot be applied — and a valid
        // delta behind it in the same batch must still land.
        let ticket = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter(["only-one"])]))
            .unwrap();
        let good = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])]))
            .unwrap();
        writer.step(&hub, Duration::from_millis(10)).unwrap();
        assert!(hub.queue().is_applied(ticket), "SYNC must not hang");
        assert!(hub.queue().is_applied(good));
        assert_eq!(hub.stats().write_errors, 1);
        assert!(hub.last_error().unwrap().starts_with("ticket 1:"));
        let after = hub.snapshot();
        assert_eq!(after.num_rows(), 3, "the good ticket landed");
        assert_eq!(
            after.report().sv_rows,
            before.report().sv_rows,
            "the clean Troy insert changed no flags"
        );
        assert_eq!(&after.detect_fresh().unwrap(), after.report());
    }
}
