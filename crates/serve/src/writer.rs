//! The single writer: drain the queue, apply, snapshot, publish.

use crate::durable::{recover_session, report_hash, RecoveryReport, WalSink};
use crate::hub::Hub;
use crate::ingest::{IngestQueue, Ticket};
use crate::{Result, ServeError};
use ecfd_obs::{Counter, Histogram};
use ecfd_session::Session;
use ecfd_wal::Wal;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handles into the process-wide registry for the writer's metrics.
#[derive(Debug)]
struct WriterMetrics {
    /// `writer.apply.ns` — per-ticket apply latency.
    apply: Histogram,
    /// `writer.apply.failed` — deltas that failed to apply and were skipped.
    apply_failed: Counter,
    /// `writer.batch.size` — deltas per writer cycle.
    batch_size: Histogram,
    /// `writer.publish.ns` — snapshot extraction + publish (+ checkpoint).
    publish: Histogram,
    /// `writer.epochs` — snapshots published.
    epochs: Counter,
}

impl WriterMetrics {
    /// Fetches the writer's metric handles; in a sharded deployment every
    /// series carries a `shard` label (one writer per shard).
    fn fetch(shard: Option<u32>) -> Self {
        let registry = ecfd_obs::registry();
        match shard {
            None => WriterMetrics {
                apply: registry.histogram("writer.apply.ns"),
                apply_failed: registry.counter("writer.apply.failed"),
                batch_size: registry.histogram("writer.batch.size"),
                publish: registry.histogram("writer.publish.ns"),
                epochs: registry.counter("writer.epochs"),
            },
            Some(shard) => {
                let shard = shard.to_string();
                let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
                WriterMetrics {
                    apply: registry.histogram_with("writer.apply.ns", labels),
                    apply_failed: registry.counter_with("writer.apply.failed", labels),
                    batch_size: registry.histogram_with("writer.batch.size", labels),
                    publish: registry.histogram_with("writer.publish.ns", labels),
                    epochs: registry.counter_with("writer.epochs", labels),
                }
            }
        }
    }
}

/// What one [`Writer::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A batch of this many deltas was applied and a new epoch published.
    Applied(usize),
    /// Nothing was pending within the timeout.
    Idle,
    /// The queue is closed and fully drained — the writer loop should exit.
    Drained,
}

/// The sole owner of the mutable [`Session`] in a serving deployment.
///
/// The writer enforces the single-writer discipline by construction: it
/// *consumes* the session, so no other code can touch it while serving, and
/// [`Writer::run`] hands it back when the hub shuts down. Each cycle pops up
/// to `batch_max` pending deltas and applies them **one at a time, in ticket
/// order** — ticket order *is* the serialization order, and `+X` then `-X`
/// from different clients always means X ends up deleted, regardless of how
/// the deltas landed in batches. Each delta routes through the session's
/// policy (incremental maintenance below the delta-size threshold, a fresh
/// pass above it); one epoch-stamped snapshot is published per cycle, after
/// the whole batch.
///
/// A failing delta (e.g. tuples that no longer fit the schema) is counted
/// and skipped rather than wedging the loop — the blast radius is that one
/// ticket; later tickets in the same batch still apply. Skipped tickets are
/// still marked applied so `SYNC` barriers cannot hang on a poisoned delta
/// (the error is observable via the `ERRORS` counter of `EPOCH` and
/// [`Hub::last_error`]).
#[derive(Debug)]
pub struct Writer {
    session: Session,
    table: String,
    batch_max: usize,
    metrics: WriterMetrics,
    /// Test-only fault injection: fail this many upcoming snapshot
    /// extractions, to exercise the publish-error path (a genuine
    /// `snapshot_of` failure is unreachable from a healthy session).
    #[cfg(test)]
    fail_next_snapshots: usize,
}

impl Writer {
    /// Builds the writer around a prepared session (data loaded, constraints
    /// registered) and publishes the initial snapshot into a fresh [`Hub`]
    /// with the given ingest-queue capacity. Returns the writer and the hub
    /// to share with producers and readers.
    pub fn bootstrap(
        session: Session,
        queue_capacity: usize,
        batch_max: usize,
    ) -> Result<(Writer, Arc<Hub>)> {
        Writer::bootstrap_shard(session, queue_capacity, batch_max, None)
    }

    /// [`Writer::bootstrap`] for one shard of a sharded deployment: the
    /// writer's (and its queue's) metric series carry a `shard` label so the
    /// per-shard apply latencies stay separable.
    pub fn bootstrap_shard(
        mut session: Session,
        queue_capacity: usize,
        batch_max: usize,
        shard: Option<u32>,
    ) -> Result<(Writer, Arc<Hub>)> {
        let snapshot = session.snapshot()?;
        let table = snapshot.table().to_string();
        let queue = IngestQueue::starting_at_sharded(queue_capacity, 0, shard);
        let hub = Hub::with_queue(snapshot, queue);
        Ok((
            Writer {
                session,
                table,
                batch_max: batch_max.max(1),
                metrics: WriterMetrics::fetch(shard),
                #[cfg(test)]
                fail_next_snapshots: 0,
            },
            hub,
        ))
    }

    /// Durable bootstrap: open (or create) the WAL in `wal_dir`, replay its
    /// records over the freshly prepared `session` — which must hold the
    /// same base data and constraints the log was written against — and
    /// wire the hub so every future submit is logged and fsynced before its
    /// ACK and every published epoch stamps a checkpoint record.
    ///
    /// Replay goes through the normal `Session::apply_on` path and
    /// re-verifies every logged checkpoint (epoch and report hash), so the
    /// recovered snapshot's detect report is byte-identical to what was
    /// published before the crash. The returned [`RecoveryReport`] says how
    /// much history was replayed; it is all zeros for a fresh log. The
    /// recovered queue continues the log's ticket numbering, and a fresh
    /// checkpoint for the recovered epoch is stamped immediately, giving
    /// followers an anchor even before the first new delta.
    pub fn bootstrap_durable(
        session: Session,
        queue_capacity: usize,
        batch_max: usize,
        wal_dir: &Path,
    ) -> Result<(Writer, Arc<Hub>, RecoveryReport)> {
        Writer::bootstrap_durable_shard(session, queue_capacity, batch_max, wal_dir, None)
    }

    /// [`Writer::bootstrap_durable`] for one shard of a sharded deployment:
    /// `wal_dir` is the shard's own log directory, and every metric series
    /// (writer, queue, WAL sink, recovery gauges) carries a `shard` label.
    pub fn bootstrap_durable_shard(
        mut session: Session,
        queue_capacity: usize,
        batch_max: usize,
        wal_dir: &Path,
        shard: Option<u32>,
    ) -> Result<(Writer, Arc<Hub>, RecoveryReport)> {
        let opened = Wal::open(wal_dir)?;
        let table = match session.registered_tables().as_slice() {
            [sole] => sole.to_string(),
            _ => {
                return Err(ServeError::Protocol(
                    "durable bootstrap needs exactly one registered relation".into(),
                ))
            }
        };
        let recovered = !opened.records.is_empty();
        let mut recovery = recover_session(&mut session, &table, &opened.records)?;
        recovery.truncated_bytes = opened.truncated_bytes;
        recovery.export_metrics(shard);

        let snapshot = session.snapshot_of(&table)?;
        let epoch = snapshot.epoch();
        let hash = report_hash(snapshot.report());
        let wal_path = opened.wal.path().to_path_buf();
        let sink = WalSink::new(opened.wal, recovery.last_ticket, shard);
        // Anchor the recovered (or initial) epoch in the log before serving.
        sink.log_checkpoint(epoch, recovery.last_ticket, hash)?;

        let queue = IngestQueue::starting_at_sharded(queue_capacity, recovery.last_ticket, shard);
        let hub = Hub::new_durable(snapshot, queue, sink, wal_path, recovered);
        Ok((
            Writer {
                session,
                table,
                batch_max: batch_max.max(1),
                metrics: WriterMetrics::fetch(shard),
                #[cfg(test)]
                fail_next_snapshots: 0,
            },
            hub,
            recovery,
        ))
    }

    /// Name of the served relation.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Read access to the owned session (e.g. for pre-run inspection).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Runs one cycle: wait up to `timeout` for pending deltas, apply them
    /// in ticket order, publish one new snapshot covering the whole batch.
    pub fn step(&mut self, hub: &Hub, timeout: Duration) -> Result<StepOutcome> {
        let Some(batch) = hub.queue().pop_batch(self.batch_max, timeout) else {
            return Ok(StepOutcome::Drained);
        };
        if batch.is_empty() {
            return Ok(StepOutcome::Idle);
        }
        let max_ticket = batch.iter().map(|(t, _)| *t).max().expect("non-empty");
        let count = batch.len();
        self.metrics.batch_size.record(count as u64);
        for (ticket, item) in batch {
            // One failing ticket is skipped (and recorded) on its own; a
            // failed apply drops the session's caches, so the snapshot below
            // still describes the actual table contents.
            let applied_at = Instant::now();
            let applied = match &item.insert_ids {
                Some(ids) => self
                    .session
                    .apply_scheduled_on(&self.table, &item.delta, ids),
                None => self.session.apply_on(&self.table, &item.delta),
            };
            if let Err(e) = applied {
                self.metrics.apply_failed.inc();
                hub.record_write_error(format!("ticket {ticket}: {e}"));
            }
            self.metrics.apply.record_duration(applied_at.elapsed());
        }
        let published_at = Instant::now();
        let published = self.publish_epoch(hub, max_ticket);
        self.metrics.publish.record_duration(published_at.elapsed());
        if published.is_ok() {
            self.metrics.epochs.inc();
        }
        // The watermark advances no matter how publication went: a failed
        // snapshot must not leave `SYNC` barriers waiting forever on tickets
        // that were consumed from the queue.
        hub.queue().mark_applied(max_ticket);
        if let Err(e) = &published {
            hub.record_write_error(format!("publish after ticket {max_ticket}: {e}"));
        }
        published.map(|()| StepOutcome::Applied(count))
    }

    /// Extracts the batch's snapshot, publishes it, and (in durable mode)
    /// stamps the epoch-boundary checkpoint into the WAL.
    fn publish_epoch(&mut self, hub: &Hub, max_ticket: Ticket) -> Result<()> {
        #[cfg(test)]
        if self.fail_next_snapshots > 0 {
            self.fail_next_snapshots -= 1;
            return Err(
                ecfd_session::SessionError::NotLoaded("injected snapshot failure".into()).into(),
            );
        }
        let snapshot = self.session.snapshot_of(&self.table)?;
        let epoch = snapshot.epoch();
        let hash = report_hash(snapshot.report());
        hub.store().publish(snapshot);
        hub.log_checkpoint(epoch, max_ticket, hash)
    }

    /// The writer loop: steps until the hub shuts down and the queue drains,
    /// then returns the session to the caller.
    ///
    /// Exiting on an error (or a panic in a step) *aborts* the hub first:
    /// the queue closes so producers blocked in backpressure wake with
    /// `PushError::Closed` and barrier waiters fail fast, instead of
    /// deadlocking against a writer that no longer exists.
    pub fn run(mut self, hub: &Hub) -> Result<Session> {
        struct AbortOnExit<'a> {
            hub: &'a Hub,
            armed: bool,
        }
        impl Drop for AbortOnExit<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.hub.abort();
                }
            }
        }
        let mut guard = AbortOnExit { hub, armed: true };
        loop {
            match self.step(hub, Duration::from_millis(20))? {
                StepOutcome::Drained => {
                    // Clean exit: the hub was already shut down gracefully.
                    guard.armed = false;
                    return Ok(self.session);
                }
                StepOutcome::Applied(_) | StepOutcome::Idle => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{DataType, Delta, Relation, Schema, Tuple};
    use std::path::PathBuf;

    fn ready_session() -> Session {
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        let data = Relation::with_tuples(
            schema,
            [
                Tuple::from_iter(["Albany", "718"]),
                Tuple::from_iter(["NYC", "212"]),
            ],
        )
        .unwrap();
        let mut session = Session::new();
        session.load(data).unwrap();
        session
            .register_text("cust: [CT] -> [AC] | [], { {Albany} || {518} }")
            .unwrap();
        session
    }

    #[test]
    fn steps_apply_merge_publish_and_mark_applied() {
        let (mut writer, hub) = Writer::bootstrap(ready_session(), 8, 4).unwrap();
        assert_eq!(writer.table(), "cust");
        let e0 = hub.epoch();
        assert_eq!(hub.snapshot().report().num_sv(), 1);

        let t1 = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter([
                "Albany", "519",
            ])]))
            .unwrap();
        let t2 = hub
            .submit(Delta::delete_only(vec![Tuple::from_iter(["NYC", "212"])]))
            .unwrap();
        assert_eq!(
            writer.step(&hub, Duration::from_millis(10)).unwrap(),
            StepOutcome::Applied(2),
            "both deltas apply in one cycle"
        );
        assert!(hub.queue().is_applied(t2));
        assert!(hub.epoch() > e0);
        let snap = hub.snapshot();
        assert_eq!(snap.num_rows(), 2);
        assert!(hub.queue().is_applied(t1));
        assert_eq!(&snap.detect_fresh().unwrap(), snap.report());

        assert_eq!(
            writer.step(&hub, Duration::from_millis(5)).unwrap(),
            StepOutcome::Idle
        );
        hub.shutdown();
        assert_eq!(
            writer.step(&hub, Duration::from_millis(5)).unwrap(),
            StepOutcome::Drained
        );
    }

    #[test]
    fn tickets_apply_in_submission_order_within_a_batch() {
        let (mut writer, hub) = Writer::bootstrap(ready_session(), 8, 8).unwrap();
        // +X then -X from two producers, popped as ONE batch: ticket order
        // must win, so X ends up deleted (a merged delete-then-insert replay
        // would resurrect it).
        hub.submit(Delta::insert_only(vec![Tuple::from_iter(["Utica", "315"])]))
            .unwrap();
        hub.submit(Delta::delete_only(vec![Tuple::from_iter(["Utica", "315"])]))
            .unwrap();
        assert_eq!(
            writer.step(&hub, Duration::from_millis(10)).unwrap(),
            StepOutcome::Applied(2)
        );
        let snap = hub.snapshot();
        assert_eq!(snap.num_rows(), 2, "the inserted row was deleted again");
        assert!(!snap
            .to_relation()
            .unwrap()
            .tuples()
            .any(|t| t == &Tuple::from_iter(["Utica", "315"])));
        assert_eq!(hub.stats().write_errors, 0);
    }

    #[test]
    fn bad_deltas_are_skipped_not_fatal() {
        let (mut writer, hub) = Writer::bootstrap(ready_session(), 8, 4).unwrap();
        let before = hub.snapshot();
        // An insertion with the wrong arity cannot be applied — and a valid
        // delta behind it in the same batch must still land.
        let ticket = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter(["only-one"])]))
            .unwrap();
        let good = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])]))
            .unwrap();
        writer.step(&hub, Duration::from_millis(10)).unwrap();
        assert!(hub.queue().is_applied(ticket), "SYNC must not hang");
        assert!(hub.queue().is_applied(good));
        assert_eq!(hub.stats().write_errors, 1);
        assert!(hub.last_error().unwrap().starts_with("ticket 1:"));
        let after = hub.snapshot();
        assert_eq!(after.num_rows(), 3, "the good ticket landed");
        assert_eq!(
            after.report().sv_rows,
            before.report().sv_rows,
            "the clean Troy insert changed no flags"
        );
        assert_eq!(&after.detect_fresh().unwrap(), after.report());
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ecfd-writer-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Regression (writer hang): a failed snapshot used to return from
    /// `step` *before* `mark_applied`, so `SYNC` barriers on that batch
    /// waited out their full timeout for a watermark that never moved.
    #[test]
    fn failed_snapshot_still_marks_batch_applied() {
        let (mut writer, hub) = Writer::bootstrap(ready_session(), 8, 4).unwrap();
        writer.fail_next_snapshots = 1;
        let ticket = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])]))
            .unwrap();
        assert!(
            writer.step(&hub, Duration::from_millis(10)).is_err(),
            "the injected snapshot failure propagates"
        );
        // Pre-fix this wait burned its whole deadline and returned false.
        assert!(
            hub.queue().wait_applied(ticket, Duration::from_millis(50)),
            "the batch must be marked applied despite the publish failure"
        );
        assert_eq!(hub.stats().write_errors, 1);
        assert!(hub.last_error().unwrap().contains("publish after ticket"));

        // The writer is still usable: the next batch publishes normally.
        let next = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter([
                "Colonie", "518",
            ])]))
            .unwrap();
        assert_eq!(
            writer.step(&hub, Duration::from_millis(10)).unwrap(),
            StepOutcome::Applied(1)
        );
        assert!(hub.queue().is_applied(next));
        assert_eq!(hub.snapshot().num_rows(), 4, "both inserts landed");
    }

    /// Regression (producer deadlock): `run` used to propagate a step error
    /// without closing the queue, leaving producers blocked in backpressure
    /// forever. Now any writer exit aborts the hub, so this join completes.
    #[test]
    fn writer_death_releases_blocked_producers() {
        let (mut writer, hub) = Writer::bootstrap(ready_session(), 1, 1).unwrap();
        writer.fail_next_snapshots = 1;
        let accepted = std::thread::scope(|s| {
            let hub = &hub;
            // Keep one producer pushing until the queue refuses: with
            // capacity 1 and a dead writer it inevitably ends up blocked in
            // `push`, and only the abort path can release it. Pre-fix, this
            // thread never finished and the test hung.
            let producer = s.spawn(move || {
                let mut accepted = 0u64;
                loop {
                    match hub.submit(Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])])) {
                        Ok(_) => accepted += 1,
                        Err(e) => return (accepted, e),
                    }
                }
            });
            let result = writer.run(hub);
            assert!(result.is_err(), "the injected failure kills the writer");
            let (accepted, error) = producer.join().unwrap();
            assert!(
                matches!(error, crate::ServeError::QueueClosed),
                "blocked producer was woken with a closed-queue error, got {error}"
            );
            accepted
        });
        // If a ticket slipped in after the writer's last batch it will never
        // be applied — barriers on it must fail fast, not burn the timeout.
        if accepted > hub.queue().applied_ticket() {
            let start = std::time::Instant::now();
            assert!(!hub.queue().wait_applied(accepted, Duration::from_secs(30)));
            assert!(start.elapsed() < Duration::from_secs(5));
        }
    }

    #[test]
    fn durable_bootstrap_logs_recovers_and_verifies() {
        let dir = temp_dir("durable");

        // First run: bootstrap fresh, apply two batches, drain cleanly.
        let (mut writer, hub, recovery) =
            Writer::bootstrap_durable(ready_session(), 8, 4, &dir).unwrap();
        assert_eq!(recovery, RecoveryReport::default());
        assert!(hub.is_durable());
        let first_epoch = hub.epoch();
        hub.submit(Delta::insert_only(vec![Tuple::from_iter([
            "Albany", "519",
        ])]))
        .unwrap();
        writer.step(&hub, Duration::from_millis(10)).unwrap();
        hub.submit(Delta::delete_only(vec![Tuple::from_iter(["NYC", "212"])]))
            .unwrap();
        writer.step(&hub, Duration::from_millis(10)).unwrap();
        let crashed_epoch = hub.epoch();
        let crashed_report = hub.snapshot().report().clone();
        drop((writer, hub)); // "crash": nothing flushed beyond the per-ACK fsyncs

        // Second run: same base session, recovered from the log.
        let (writer, hub, recovery) =
            Writer::bootstrap_durable(ready_session(), 8, 4, &dir).unwrap();
        assert_eq!(recovery.deltas_applied, 2);
        assert_eq!(recovery.last_ticket, 2);
        assert!(
            recovery.checkpoints_verified >= 3,
            "bootstrap + two epochs, got {}",
            recovery.checkpoints_verified
        );
        assert_eq!(recovery.apply_errors, 0);
        assert_eq!(hub.epoch(), crashed_epoch, "epochs reproduce exactly");
        assert!(hub.epoch() > first_epoch);
        let snap = hub.snapshot();
        assert_eq!(snap.report(), &crashed_report, "report is byte-identical");
        assert_eq!(&snap.detect_fresh().unwrap(), snap.report());
        // New tickets continue the logged numbering.
        let t = hub
            .submit(Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])]))
            .unwrap();
        assert_eq!(t, 3);
        drop(writer);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A divergent base (different constraints than the log was written
    /// against) must be refused at recovery, not served silently.
    #[test]
    fn durable_bootstrap_detects_divergent_base() {
        let dir = temp_dir("diverge");
        let (mut writer, hub, _) = Writer::bootstrap_durable(ready_session(), 8, 4, &dir).unwrap();
        hub.submit(Delta::insert_only(vec![Tuple::from_iter([
            "Albany", "519",
        ])]))
        .unwrap();
        writer.step(&hub, Duration::from_millis(10)).unwrap();
        drop((writer, hub));

        // Same data, different constraint set → different report hashes.
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        let data = Relation::with_tuples(
            schema,
            [
                Tuple::from_iter(["Albany", "718"]),
                Tuple::from_iter(["NYC", "212"]),
            ],
        )
        .unwrap();
        let mut other = Session::new();
        other.load(data).unwrap();
        other
            .register_text("cust: [CT] -> [AC] | [], { {NYC} || {212} }")
            .unwrap();
        let err = Writer::bootstrap_durable(other, 8, 4, &dir).unwrap_err();
        assert!(
            matches!(err, crate::ServeError::Replication(_)),
            "expected divergence, got {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
