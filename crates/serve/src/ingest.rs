//! The bounded ingest queue: how deltas reach the writer, with backpressure.

use ecfd_obs::{Counter, Gauge, Histogram};
use ecfd_relation::{Delta, RowId};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Handles into the process-wide registry for the queue's metrics; fetched
/// once at construction so the hot path never touches the registry lock.
#[derive(Debug)]
struct QueueMetrics {
    /// `ingest.queue.depth` — deltas currently waiting for the writer.
    depth: Gauge,
    /// `ingest.accepted` — deltas that received a ticket.
    accepted: Counter,
    /// `ingest.rejected` — pushes refused (queue full or closed).
    rejected: Counter,
    /// `ingest.backpressure.wait.ns` — time producers spent blocked on a
    /// full queue (recorded only when a push actually waited).
    backpressure: Histogram,
    /// `writer.epoch.lag` — accepted minus applied-and-published tickets.
    lag: Gauge,
}

impl QueueMetrics {
    /// Fetches the queue's metric handles; in a sharded deployment every
    /// series carries a `shard` label so per-shard queues stay separable.
    fn fetch(shard: Option<u32>) -> Self {
        let registry = ecfd_obs::registry();
        match shard {
            None => QueueMetrics {
                depth: registry.gauge("ingest.queue.depth"),
                accepted: registry.counter("ingest.accepted"),
                rejected: registry.counter("ingest.rejected"),
                backpressure: registry.histogram("ingest.backpressure.wait.ns"),
                lag: registry.gauge("writer.epoch.lag"),
            },
            Some(shard) => {
                let shard = shard.to_string();
                let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
                QueueMetrics {
                    depth: registry.gauge_with("ingest.queue.depth", labels),
                    accepted: registry.counter_with("ingest.accepted", labels),
                    rejected: registry.counter_with("ingest.rejected", labels),
                    backpressure: registry.histogram_with("ingest.backpressure.wait.ns", labels),
                    lag: registry.gauge_with("writer.epoch.lag", labels),
                }
            }
        }
    }
}

/// One queued unit of work: the submitted delta plus, in sharded
/// deployments, the globally pre-assigned row ids of its insertions
/// (`insert_ids[k]` is the id insertion `k` must receive at apply time, so
/// every shard hands out exactly the ids a single-session run would have).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestItem {
    /// The insertions and deletions, exactly as submitted (or as routed to
    /// this shard).
    pub delta: Delta,
    /// Pre-assigned row ids parallel to `delta.insertions`, or `None` in
    /// unsharded deployments where the relation assigns ids itself.
    pub insert_ids: Option<Vec<RowId>>,
}

/// Sequence number assigned to a submitted delta. Tickets are issued in
/// submission order starting at 1; [`IngestQueue::is_applied`] /
/// [`IngestQueue::wait_applied`] answer whether the writer has applied *and
/// published* everything up to a ticket.
pub type Ticket = u64;

/// Why a non-blocking push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` pending deltas; the producer should retry
    /// (or use the blocking [`IngestQueue::push`] and let backpressure work).
    Full,
    /// The queue was closed — the server is shutting down.
    Closed,
}

#[derive(Debug)]
struct Inner {
    items: VecDeque<(Ticket, IngestItem)>,
    next_ticket: Ticket,
    /// Highest ticket whose delta has been applied and whose snapshot has
    /// been published.
    applied: Ticket,
    closed: bool,
    /// Closed because the writer died (not a graceful drain): pending items
    /// will never be applied, so barriers should give up immediately instead
    /// of burning their full timeout.
    aborted: bool,
}

/// A bounded multi-producer / single-consumer queue of [`Delta`] batches.
///
/// Producers (connection handlers, in-process embedders) push; the single
/// [`Writer`](crate::Writer) pops. The capacity bound is the serving layer's
/// backpressure mechanism: when the writer falls behind, blocking producers
/// wait instead of growing an unbounded backlog — over TCP that wait
/// propagates naturally to the client, which sees its `APPLY` acknowledged
/// only once the queue accepted the delta.
///
/// The queue also tracks application progress so `SYNC`-style barriers need
/// no extra channel: every push returns a [`Ticket`], and the writer calls
/// [`IngestQueue::mark_applied`] after publishing the snapshot that covers
/// it.
#[derive(Debug)]
pub struct IngestQueue {
    inner: Mutex<Inner>,
    not_full: Condvar,
    progress: Condvar,
    capacity: usize,
    metrics: QueueMetrics,
}

impl IngestQueue {
    /// Creates a queue holding at most `capacity` pending deltas
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        IngestQueue::starting_at(capacity, 0)
    }

    /// Creates a queue whose ticket sequence continues after `last_ticket`
    /// (which is also the initial applied watermark). Crash recovery uses
    /// this so tickets issued after a restart extend the WAL's numbering
    /// instead of colliding with logged history.
    pub fn starting_at(capacity: usize, last_ticket: Ticket) -> Self {
        IngestQueue::starting_at_sharded(capacity, last_ticket, None)
    }

    /// Like [`IngestQueue::starting_at`], but tagging every metric series
    /// with the owning shard's index — per-shard queues in a sharded
    /// deployment report `ingest.*{shard=N}`.
    pub fn starting_at_sharded(capacity: usize, last_ticket: Ticket, shard: Option<u32>) -> Self {
        IngestQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                next_ticket: last_ticket + 1,
                applied: last_ticket,
                closed: false,
                aborted: false,
            }),
            not_full: Condvar::new(),
            progress: Condvar::new(),
            capacity: capacity.max(1),
            metrics: QueueMetrics::fetch(shard),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of deltas waiting to be applied.
    pub fn pending(&self) -> usize {
        self.lock().items.len()
    }

    /// The most recently issued ticket (0 before the first push).
    pub fn last_ticket(&self) -> Ticket {
        self.lock().next_ticket - 1
    }

    /// Whether everything up to and including `ticket` has been applied and
    /// published.
    pub fn is_applied(&self, ticket: Ticket) -> bool {
        self.lock().applied >= ticket
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Highest ticket applied and published so far (0 before the first).
    pub fn applied_ticket(&self) -> Ticket {
        self.lock().applied
    }

    /// Enqueues a delta, blocking while the queue is full (backpressure).
    /// Returns the delta's ticket, or `Err(PushError::Closed)` once the
    /// queue is shut down.
    pub fn push(&self, delta: Delta) -> Result<Ticket, PushError> {
        self.push_item(IngestItem {
            delta,
            insert_ids: None,
        })
    }

    /// [`IngestQueue::push`] with globally pre-assigned row ids for the
    /// delta's insertions — the sharded router's entry point.
    pub fn push_scheduled(
        &self,
        delta: Delta,
        insert_ids: Vec<RowId>,
    ) -> Result<Ticket, PushError> {
        self.push_item(IngestItem {
            delta,
            insert_ids: Some(insert_ids),
        })
    }

    fn push_item(&self, item: IngestItem) -> Result<Ticket, PushError> {
        let mut inner = self.lock();
        if inner.items.len() >= self.capacity && !inner.closed {
            let blocked = Instant::now();
            while inner.items.len() >= self.capacity && !inner.closed {
                inner = self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
            self.metrics.backpressure.record_duration(blocked.elapsed());
        }
        if inner.closed {
            self.metrics.rejected.inc();
            return Err(PushError::Closed);
        }
        Ok(self.enqueue(&mut inner, item))
    }

    /// Enqueues a delta without blocking, failing with [`PushError::Full`]
    /// when the queue is at capacity.
    pub fn try_push(&self, delta: Delta) -> Result<Ticket, PushError> {
        let mut inner = self.lock();
        if inner.closed {
            self.metrics.rejected.inc();
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            self.metrics.rejected.inc();
            return Err(PushError::Full);
        }
        Ok(self.enqueue(
            &mut inner,
            IngestItem {
                delta,
                insert_ids: None,
            },
        ))
    }

    fn enqueue(&self, inner: &mut Inner, item: IngestItem) -> Ticket {
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.items.push_back((ticket, item));
        self.metrics.accepted.inc();
        self.metrics.depth.set(inner.items.len() as i64);
        self.metrics.lag.set((ticket - inner.applied) as i64);
        self.progress.notify_all();
        ticket
    }

    /// Pops up to `max` pending deltas for the writer, blocking up to
    /// `timeout` for the first one. Returns:
    ///
    /// * `Some(batch)` with 1..=`max` deltas when work arrived;
    /// * `Some(vec![])` when the timeout elapsed with nothing pending;
    /// * `None` when the queue is closed **and** fully drained — the writer's
    ///   signal to exit.
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Option<Vec<(Ticket, IngestItem)>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        while inner.items.is_empty() {
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(Vec::new());
            }
            let (guard, _) = self
                .progress
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
        let take = max.max(1).min(inner.items.len());
        let batch: Vec<(Ticket, IngestItem)> = inner.items.drain(..take).collect();
        self.metrics.depth.set(inner.items.len() as i64);
        self.not_full.notify_all();
        Some(batch)
    }

    /// Records that every delta up to and including `ticket` has been applied
    /// and its snapshot published, waking `SYNC` waiters.
    pub fn mark_applied(&self, ticket: Ticket) {
        let mut inner = self.lock();
        if ticket > inner.applied {
            inner.applied = ticket;
            self.metrics
                .lag
                .set((inner.next_ticket - 1 - inner.applied) as i64);
            self.progress.notify_all();
        }
    }

    /// Blocks until everything up to `ticket` is applied and published, the
    /// queue is closed with the ticket unreachable, or `timeout` elapses.
    /// Returns whether the ticket was reached.
    pub fn wait_applied(&self, ticket: Ticket, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if inner.applied >= ticket {
                return true;
            }
            // The writer died: whatever is pending will never be applied.
            if inner.aborted {
                return false;
            }
            // Closed with nothing left to drain: the ticket will never come.
            if inner.closed && inner.items.is_empty() {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .progress
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Closes the queue: pending deltas stay poppable (the writer drains
    /// them), new pushes fail, and every blocked producer or waiter wakes.
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        self.not_full.notify_all();
        self.progress.notify_all();
    }

    /// Closes the queue because the writer is gone: like [`IngestQueue::close`],
    /// but additionally tells barrier waiters that pending deltas will never
    /// be applied, so [`IngestQueue::wait_applied`] fails fast instead of
    /// waiting out its timeout on tickets that cannot make progress.
    pub fn close_aborted(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        inner.aborted = true;
        self.not_full.notify_all();
        self.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::Tuple;
    use std::time::Duration;

    fn delta(tag: &str) -> Delta {
        Delta::insert_only(vec![Tuple::from_iter([tag, "x"])])
    }

    #[test]
    fn backpressure_blocks_and_try_push_refuses() {
        let q = IngestQueue::new(1);
        let t1 = q.try_push(delta("a")).unwrap();
        assert_eq!(t1, 1);
        assert_eq!(q.try_push(delta("b")), Err(PushError::Full));
        assert_eq!(q.pending(), 1);

        // A blocked producer proceeds as soon as the consumer drains.
        let out = std::thread::scope(|s| {
            let producer = s.spawn(|| q.push(delta("c")));
            std::thread::sleep(Duration::from_millis(20));
            let batch = q.pop_batch(8, Duration::from_millis(100)).unwrap();
            assert_eq!(batch.len(), 1, "only the first delta was in yet");
            producer.join().unwrap()
        });
        assert_eq!(out, Ok(2));
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn pop_batch_times_out_empty_and_drains_after_close() {
        let q = IngestQueue::new(4);
        assert_eq!(
            q.pop_batch(8, Duration::from_millis(5)),
            Some(Vec::new()),
            "timeout with nothing pending"
        );
        q.push(delta("a")).unwrap();
        q.push(delta("b")).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push(delta("c")), Err(PushError::Closed));
        let batch = q.pop_batch(8, Duration::from_millis(5)).unwrap();
        assert_eq!(batch.len(), 2, "pending work survives close");
        assert_eq!(q.pop_batch(8, Duration::from_millis(5)), None, "drained");
    }

    #[test]
    fn tickets_track_application_progress() {
        let q = IngestQueue::new(4);
        let t1 = q.push(delta("a")).unwrap();
        let t2 = q.push(delta("b")).unwrap();
        assert_eq!(q.last_ticket(), t2);
        assert!(!q.is_applied(t1));
        assert!(!q.wait_applied(t1, Duration::from_millis(5)));

        let batch = q.pop_batch(8, Duration::from_millis(5)).unwrap();
        let max_ticket = batch.iter().map(|(t, _)| *t).max().unwrap();
        q.mark_applied(max_ticket);
        assert!(q.is_applied(t1));
        assert!(q.is_applied(t2));
        assert!(q.wait_applied(t2, Duration::from_millis(5)));
    }

    #[test]
    fn scheduled_pushes_carry_their_row_ids() {
        let q = IngestQueue::new(4);
        q.push(delta("a")).unwrap();
        q.push_scheduled(delta("b"), vec![RowId(7), RowId(9)])
            .unwrap();
        let batch = q.pop_batch(8, Duration::from_millis(5)).unwrap();
        assert_eq!(batch[0].1.insert_ids, None);
        assert_eq!(batch[1].1.insert_ids, Some(vec![RowId(7), RowId(9)]));
        assert_eq!(batch[1].1.delta, delta("b"));
    }

    #[test]
    fn starting_at_continues_ticket_sequence() {
        let q = IngestQueue::starting_at(4, 41);
        assert_eq!(q.applied_ticket(), 41);
        assert!(q.is_applied(41), "recovered history counts as applied");
        assert_eq!(q.push(delta("a")).unwrap(), 42);
        assert_eq!(q.last_ticket(), 42);
    }

    #[test]
    fn close_aborted_fails_waiters_fast_with_items_pending() {
        let q = IngestQueue::new(4);
        let t = q.push(delta("a")).unwrap();
        q.close_aborted();
        // The item is still pending (never popped), yet the waiter returns
        // immediately — a plain close would burn the whole timeout here.
        let start = Instant::now();
        assert!(!q.wait_applied(t, Duration::from_secs(30)));
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(q.push(delta("b")), Err(PushError::Closed));
    }

    #[test]
    fn wait_applied_gives_up_when_closed_and_drained() {
        let q = IngestQueue::new(4);
        let t = q.push(delta("a")).unwrap();
        q.close();
        // Drain without applying: the waiter must not hang.
        q.pop_batch(8, Duration::from_millis(5)).unwrap();
        assert!(!q.wait_applied(t, Duration::from_millis(50)));
    }
}
