//! # ecfd-serve
//!
//! A concurrent, snapshot-isolated serving layer over
//! [`ecfd_session::Session`]: one writer, any number of lock-free readers,
//! and a line-delimited request/response protocol over TCP.
//!
//! ## Why
//!
//! A [`Session`](ecfd_session::Session) is deliberately single-owner: every
//! call takes `&mut self`, so a process that wants to answer `detect` /
//! `explain` queries *while* update batches stream in has nowhere to stand.
//! This crate adds that place to stand without giving up the session's
//! correctness story:
//!
//! * **Single-writer discipline.** Exactly one [`Writer`] thread owns the
//!   mutable [`Session`](ecfd_session::Session). It drains
//!   [`Delta`](ecfd_relation::Delta) batches
//!   from a bounded [`IngestQueue`] (producers block when the queue is full —
//!   backpressure, not unbounded memory), applies them through the session's
//!   routed backends (incremental maintenance for small batches), and
//!   extracts an epoch-stamped [`Snapshot`](ecfd_session::Snapshot).
//! * **Arc-swapped publication.** The snapshot — frozen
//!   [`ColumnarView`](ecfd_relation::ColumnarView) + dictionary + cached
//!   report/evidence — is published into a [`SnapshotStore`]. Publication
//!   swaps one `Arc` pointer; readers clone the `Arc` and from then on touch
//!   no shared mutable state at all: cached answers are field reads, and a
//!   from-scratch re-detection
//!   ([`Snapshot::detect_fresh`](ecfd_session::Snapshot::detect_fresh)) is a
//!   pure scan over the frozen codes.
//! * **Snapshot isolation.** Every query a reader runs against one snapshot
//!   observes one internally consistent epoch: the data, the constraint set,
//!   the report and the evidence all describe the same instant, no matter how
//!   many deltas the writer has applied since. The serving tests assert the
//!   strong form: a reader's from-scratch detect over the snapshot is
//!   byte-identical to the published report at that epoch.
//!
//! ```text
//!   clients ──APPLY──▶ IngestQueue ──▶ Writer (owns Session)
//!                      (bounded,          │ apply(Δ) → snapshot()
//!                       backpressure)     ▼
//!                                    SnapshotStore ──Arc-swap──▶ epoch N
//!   clients ◀─DETECT/EXPLAIN/…── reader threads ──current()──────┘
//! ```
//!
//! ## Pieces
//!
//! * [`Hub`] — the shared core: [`SnapshotStore`] + [`IngestQueue`] +
//!   shutdown/error bookkeeping. Everything else is wiring around it, and
//!   embedders (benchmarks, in-process readers) can use it without TCP.
//! * [`Writer`] — the apply→snapshot→publish loop.
//! * [`Server`] — a [`std::net::TcpListener`] front end: one
//!   [`std::thread::scope`] worker per connection speaking the
//!   [`protocol`]. No async runtime is involved (or available offline);
//!   blocking I/O plus scoped threads keeps the whole crate dependency-free.
//! * [`Client`] — a small blocking client for the protocol, used by the
//!   examples, tests and the `serve` binary's peers.
//!
//! ## Example (in-process, no TCP)
//!
//! ```
//! use ecfd_relation::{DataType, Delta, Relation, Schema, Tuple};
//! use ecfd_serve::{Hub, Writer};
//! use ecfd_session::Session;
//!
//! let schema = Schema::builder("cust")
//!     .attr("CT", DataType::Str)
//!     .attr("AC", DataType::Str)
//!     .build();
//! let data = Relation::with_tuples(schema, [
//!     Tuple::from_iter(["Albany", "718"]), // wrong area code
//!     Tuple::from_iter(["NYC", "212"]),
//! ]).unwrap();
//! let mut session = Session::new();
//! session.load(data).unwrap();
//! session.register_text("cust: [CT] -> [AC] | [], { {Albany} || {518} }").unwrap();
//!
//! let (mut writer, hub) = Writer::bootstrap(session, 16, 8).unwrap();
//! // A reader grabs the published snapshot — and can keep it forever.
//! let snap = hub.snapshot();
//! assert_eq!(snap.report().num_sv(), 1);
//!
//! // A producer enqueues a delta; the writer applies and republishes.
//! let ticket = hub.submit(Delta::insert_only(vec![
//!     Tuple::from_iter(["Albany", "999"]), // another wrong area code
//! ])).unwrap();
//! writer.step(&hub, std::time::Duration::from_millis(10)).unwrap();
//! assert!(hub.queue().is_applied(ticket));
//! let newer = hub.snapshot();
//! assert!(newer.epoch() > snap.epoch());
//! assert_eq!(newer.report().num_sv(), 2);
//! // The old snapshot still answers for its own epoch, byte-identically.
//! assert_eq!(&snap.detect_fresh().unwrap(), snap.report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod durable;
mod hub;
mod ingest;
pub mod protocol;
mod replica;
mod server;
mod sharded;
mod store;
mod writer;

pub use client::Client;
pub use durable::{recover_session, report_hash, RecoveryReport};
pub use hub::{Hub, ServeStats};
pub use ingest::{IngestItem, IngestQueue, PushError, Ticket};
pub use protocol::{Request, Response};
pub use replica::{Follower, FollowerProgress};
pub use server::{ServeConfig, Server, ServerHandle, ShardedHandle, ShardedServer};
pub use sharded::{MergedView, ShardedConfig, ShardedHub, SubmitReceipt};
pub use store::SnapshotStore;
pub use writer::{StepOutcome, Writer};

use std::fmt;

/// Result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors produced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// Error from the session layer (apply, snapshot extraction, …).
    Session(ecfd_session::SessionError),
    /// Socket / stream error.
    Io(std::io::Error),
    /// A request or response line did not follow the protocol.
    Protocol(String),
    /// The ingest queue was closed (server shutting down) while submitting.
    QueueClosed,
    /// A `SYNC` wait elapsed before the enqueued deltas were applied.
    SyncTimeout,
    /// Error from the write-ahead log (durable mode).
    Wal(ecfd_wal::WalError),
    /// Recovery or follower replay diverged from the logged run: an epoch or
    /// report hash did not match what the leader recorded.
    Replication(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Session(e) => write!(f, "session error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::QueueClosed => write!(f, "ingest queue is closed"),
            ServeError::SyncTimeout => write!(f, "timed out waiting for enqueued deltas"),
            ServeError::Wal(e) => write!(f, "wal error: {e}"),
            ServeError::Replication(msg) => write!(f, "replication divergence: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ecfd_wal::WalError> for ServeError {
    fn from(e: ecfd_wal::WalError) -> Self {
        ServeError::Wal(e)
    }
}

impl From<ecfd_session::SessionError> for ServeError {
    fn from(e: ecfd_session::SessionError) -> Self {
        ServeError::Session(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
