//! The follower: replicate a durable leader by replaying its WAL stream.
//!
//! A [`Follower`] connects a local serving stack (its own [`Hub`] + writer,
//! built from the *same base data and constraints* as the leader's) to a
//! remote durable leader via the `REPLAY` verb. Each poll fetches a page of
//! leader WAL records and pushes them through the follower's completely
//! ordinary ingest path:
//!
//! * a **delta** record is submitted to the local hub, and its local ticket
//!   must come back equal to the leader's — both sides number accepted
//!   deltas from 1 in the same order, so any mismatch means the streams
//!   have diverged and replication stops rather than papering over it;
//! * a **checkpoint** record is a proof obligation: the follower barriers
//!   until its own writer has applied and published everything up to the
//!   checkpoint's ticket, then compares its published epoch and canonical
//!   report hash against the leader's. The comparison is strict — the
//!   session bumps its version exactly once per applied delta, so a healthy
//!   follower lands on the *same epoch numbers* as the leader, not merely
//!   the same data.
//!
//! Records are processed strictly in log order. Because the leader ACKs
//! (and logs) deltas independently of its writer's checkpoint appends, a
//! checkpoint for ticket *t* can sit after delta *t+1* in the log; such a
//! checkpoint describes an epoch the follower has already replayed past and
//! is skipped rather than verified — every quiescent epoch boundary
//! (including the log's final checkpoint) still verifies strictly. Polls
//! are idempotent: deltas at or below the follower's high-water ticket are
//! skipped, so overlapping pages (a cursor reset, a leader restart
//! re-anchoring its epoch) re-verify rather than re-apply.

use crate::client::Client;
use crate::durable::report_hash;
use crate::hub::Hub;
use crate::ingest::Ticket;
use crate::protocol::{ReplayRecord, Request, REPLAY_DEFAULT_MAX};
use crate::{Result, ServeError};
use std::sync::Arc;
use std::time::Duration;

/// What one [`Follower::poll`] (or a whole [`Follower::catch_up`]) did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FollowerProgress {
    /// Leader WAL records consumed (including skipped duplicates).
    pub records: usize,
    /// Delta records newly applied locally.
    pub deltas_applied: usize,
    /// Checkpoint records whose epoch + report hash matched the local state.
    pub checkpoints_verified: usize,
    /// The follower's published epoch after the poll.
    pub epoch: u64,
}

/// A replication client: pulls a durable leader's WAL pages and feeds a
/// local hub, verifying every epoch checkpoint along the way. See the
/// module docs for the protocol and the divergence rules.
#[derive(Debug)]
pub struct Follower {
    client: Client,
    hub: Arc<Hub>,
    cursor: u64,
    /// Highest leader ticket applied locally — the idempotency watermark.
    /// Starts at the local hub's own applied ticket, so recovered history
    /// (already verified by recovery) is skipped, not re-applied.
    last_ticket: Ticket,
    page_max: usize,
}

impl Follower {
    /// Wraps an open connection to the leader and the local hub to feed.
    /// The hub must have been bootstrapped from the same base data and
    /// constraints as the leader's; a mismatch surfaces as a divergence
    /// error at the first checkpoint, not as silent drift.
    pub fn new(client: Client, hub: Arc<Hub>) -> Follower {
        hub.mark_follower();
        let last_ticket = hub.queue().applied_ticket();
        Follower {
            client,
            hub,
            cursor: 0,
            last_ticket,
            page_max: REPLAY_DEFAULT_MAX,
        }
    }

    /// The log position the next poll will request.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Highest leader ticket applied locally so far.
    pub fn last_ticket(&self) -> Ticket {
        self.last_ticket
    }

    /// Fetches and applies one page of leader records. `sync_timeout` bounds
    /// each checkpoint barrier (a wedged local writer surfaces as
    /// [`ServeError::SyncTimeout`] instead of hanging replication).
    pub fn poll(&mut self, sync_timeout: Duration) -> Result<FollowerProgress> {
        let (records, next) = self.client.replay(self.cursor, self.page_max)?;
        let mut progress = FollowerProgress {
            records: records.len(),
            ..FollowerProgress::default()
        };
        for record in records {
            match record {
                ReplayRecord::Delta { ticket, ops } => {
                    if ticket <= self.last_ticket {
                        continue; // already applied (overlapping page or recovered history)
                    }
                    let snap = self.hub.snapshot();
                    let delta =
                        Request::ops_to_delta(&ops, snap.schema()).map_err(ServeError::Protocol)?;
                    let local = self.hub.submit(delta)?;
                    if local != ticket {
                        return Err(ServeError::Replication(format!(
                            "leader streamed ticket {ticket} but the local queue issued \
                             {local} — the replicas have diverged"
                        )));
                    }
                    self.last_ticket = ticket;
                    progress.deltas_applied += 1;
                }
                ReplayRecord::Checkpoint {
                    epoch,
                    last_ticket,
                    report_hash: expected,
                } => {
                    if last_ticket < self.last_ticket {
                        // Local replay (or recovery) is already past this
                        // epoch; its state cannot be re-derived. The next
                        // aligned checkpoint re-verifies.
                        continue;
                    }
                    // Barrier: the local writer must have published exactly
                    // this far before the epoch comparison means anything.
                    self.hub.sync_to(last_ticket, sync_timeout)?;
                    let snap = self.hub.snapshot();
                    if snap.epoch() != epoch {
                        return Err(ServeError::Replication(format!(
                            "leader checkpoint is epoch {epoch} at ticket {last_ticket}, \
                             follower published epoch {} — base data or constraints differ",
                            snap.epoch()
                        )));
                    }
                    let actual = report_hash(snap.report());
                    if actual != expected {
                        return Err(ServeError::Replication(format!(
                            "epoch {epoch} report hash mismatch: leader {expected:#018x}, \
                             follower {actual:#018x}"
                        )));
                    }
                    progress.checkpoints_verified += 1;
                }
            }
        }
        self.cursor = next;
        progress.epoch = self.hub.epoch();
        if progress.deltas_applied > 0 || progress.checkpoints_verified > 0 {
            let registry = ecfd_obs::registry();
            registry
                .counter("replica.deltas.applied")
                .add(progress.deltas_applied as u64);
            registry
                .counter("replica.checkpoints.verified")
                .add(progress.checkpoints_verified as u64);
        }
        Ok(progress)
    }

    /// Polls until a page comes back empty — the follower has seen every
    /// record the leader had at that moment. Returns the accumulated
    /// progress across all pages.
    pub fn catch_up(&mut self, sync_timeout: Duration) -> Result<FollowerProgress> {
        let mut total = FollowerProgress::default();
        loop {
            let page = self.poll(sync_timeout)?;
            total.epoch = page.epoch;
            if page.records == 0 {
                return Ok(total);
            }
            total.records += page.records;
            total.deltas_applied += page.deltas_applied;
            total.checkpoints_verified += page.checkpoints_verified;
        }
    }
}
