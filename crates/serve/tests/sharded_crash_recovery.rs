//! Crash recovery of a sharded deployment, driving the real `serve` binary:
//! kill -9 a `--shards 4` server mid-stream, restart with `--recover`, and
//! the merged `DETECT FRESH` answer is byte-identical to an unsharded oracle
//! fed the same deltas — with every shard's `wal.recovery.*` gauges exposed
//! under its own `{shard=N}` label.

use ecfd_serve::protocol::TupleOp;
use ecfd_serve::{Client, Request, Response};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

const SHARD_FLAGS: [&str; 4] = ["--shards", "4", "--shard-key", "CT"];

/// Deltas over the demo instance (Fig. 1 + φ1/φ2) that spread across the
/// `CT`-hashed shards and keep the report non-trivial.
fn op(round: usize) -> TupleOp {
    let tag = format!("{:07}", 9000000 + round);
    match round % 4 {
        0 => TupleOp::insert(["519", &tag, "Gen", "Any St.", "Albany", "12239"]),
        1 => TupleOp::insert(["999", &tag, "Gen", "Any St.", "NYC", "10099"]),
        2 => TupleOp::insert(["518", &tag, "Gen", "Any St.", "Troy", "12181"]),
        _ => TupleOp::insert(["212", &tag, "Gen", "Any St.", "Colonie", "12205"]),
    }
}

struct Served {
    child: Child,
    addr: String,
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns the `serve` binary and waits for its "serving on {addr}" line
/// (sharded servers append a "(N shard(s) by KEY)" suffix after the addr).
fn spawn_serve(extra: &[&str]) -> Served {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("serve binary spawns");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve prints its address before EOF")
            .expect("serve stdout is readable");
        if let Some(rest) = line.strip_prefix("serving on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address after the prefix")
                .to_string();
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});
    Served { child, addr }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecfd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The violation content of a `DETECT FRESH` answer — everything after the
/// epoch, which legitimately differs between a sharded deployment (sum of
/// shard epochs) and an unsharded oracle.
fn detect_fresh_body(client: &mut Client) -> String {
    let response = client.request(&Request::Detect { fresh: true }).unwrap();
    assert!(matches!(response, Response::Report { .. }));
    let line = response.render();
    let at = line.find("TOTAL").expect("REPORT line carries TOTAL");
    line[at..].to_string()
}

#[test]
fn kill_nine_sharded_then_recover_matches_unsharded_oracle() {
    const PHASE_ONE: usize = 5;
    const PHASE_TWO: usize = 4;
    let dir = temp_dir("sharded-recover");
    let dir_flag = dir.to_str().unwrap().to_string();

    // Phase 1: a durable 4-shard server ACKs a delta stream.
    let leader = spawn_serve(&[&SHARD_FLAGS[..], &["--wal-dir", &dir_flag]].concat());
    let mut client = Client::connect(&leader.addr).unwrap();
    for round in 0..PHASE_ONE {
        client.apply(vec![op(round)]).unwrap();
    }
    client.sync().unwrap();
    let phase_one_body = detect_fresh_body(&mut client);

    // Phase 2: more ACKed deltas, then SIGKILL — no shutdown handshake.
    for round in PHASE_ONE..PHASE_ONE + PHASE_TWO {
        client.apply(vec![op(round)]).unwrap();
    }
    // Quiesce and take one cached DETECT: a merged read in durable mode
    // persists `merged.ckpt` at the current epoch vector, which is the cut
    // recovery replays back to — so the restart can re-verify the merged
    // report hash, not just the per-shard ones.
    client.sync().unwrap();
    let merged_pre_kill = detect_fresh_body(&mut client);
    let cached = client.request(&Request::Detect { fresh: false }).unwrap();
    assert!(matches!(cached, Response::Report { .. }));
    let pre_kill = client.stats(Some("wal.")).unwrap();
    let pre_kill: BTreeMap<String, i64> = ecfd_obs::parse_exposition(&pre_kill)
        .unwrap()
        .into_iter()
        .collect();
    assert!(
        pre_kill
            .iter()
            .any(|(name, v)| name.starts_with("wal.fsync.count{") && *v > 0),
        "ACKed sharded deltas imply per-shard fsyncs before the crash: {pre_kill:?}"
    );
    drop(leader); // SIGKILL, mid-everything.
    drop(client);

    // A sharded restart without --recover must refuse the non-empty logs.
    let refused = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--addr", "127.0.0.1:0"])
        .args(SHARD_FLAGS)
        .args(["--wal-dir", &dir_flag])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(
        refused.code(),
        Some(2),
        "non-empty shard WALs without --recover"
    );

    // Restart with --recover: CHECK passes (merged == composed re-detect)
    // and the merged answer is byte-identical to an unsharded oracle fed the
    // same ops from scratch.
    let recovered =
        spawn_serve(&[&SHARD_FLAGS[..], &["--wal-dir", &dir_flag, "--recover"]].concat());
    let mut client = Client::connect(&recovered.addr).unwrap();
    let (_, consistent) = client.check().unwrap();
    assert!(consistent, "recovered merged report must pass CHECK");

    let replay = client.stats(Some("wal.recovery.")).unwrap();
    let replay: BTreeMap<String, i64> = ecfd_obs::parse_exposition(&replay)
        .unwrap()
        .into_iter()
        .collect();
    // Every shard that received deltas reports its own labeled recovery
    // gauges, and the per-shard replay counts sum to the full ACKed stream.
    let replayed_total: i64 = replay
        .iter()
        .filter(|(name, _)| name.starts_with("wal.recovery.deltas{"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(
        replayed_total,
        (PHASE_ONE + PHASE_TWO) as i64,
        "per-shard wal.recovery.deltas must cover every ACKed delta: {replay:?}"
    );
    assert!(
        replay
            .keys()
            .filter(|name| name.starts_with("wal.recovery.deltas{shard="))
            .count()
            >= 2,
        "the CT-hashed stream spreads over multiple shards: {replay:?}"
    );
    for (name, value) in &replay {
        if name.starts_with("wal.recovery.apply.errors{") {
            assert_eq!(*value, 0, "{name} must be zero");
        }
    }
    // The merged checkpoint was re-verified against the replayed state.
    assert_eq!(
        replay.get("wal.recovery.merged.verified"),
        Some(&1),
        "merged.ckpt matches the recovered epochs, so its hash must verify: {replay:?}"
    );
    let recovered_body = detect_fresh_body(&mut client);
    assert_eq!(
        recovered_body, merged_pre_kill,
        "recovery reproduces the exact pre-kill merged answer"
    );

    // The unsharded oracle: a fresh in-memory demo server fed the same ops.
    let oracle = spawn_serve(&[]);
    let mut oracle_client = Client::connect(&oracle.addr).unwrap();
    for round in 0..PHASE_ONE + PHASE_TWO {
        oracle_client.apply(vec![op(round)]).unwrap();
    }
    oracle_client.sync().unwrap();
    let oracle_body = detect_fresh_body(&mut oracle_client);

    assert_eq!(
        recovered_body, oracle_body,
        "recovered merged DETECT FRESH must be byte-identical to the unsharded oracle"
    );
    assert_ne!(
        phase_one_body, recovered_body,
        "phase-two deltas are part of the recovered state"
    );

    // The recovered sharded server keeps accepting durable writes.
    client.apply(vec![op(100)]).unwrap();
    client.sync().unwrap();
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}
