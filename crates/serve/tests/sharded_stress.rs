//! Concurrency stress of the sharded serving layer: producer threads race
//! APPLYs through the router while readers continuously take merged views,
//! and every observed cut must verify against a from-scratch re-detection.
//!
//! The router lock defines the global serialization order (global tickets),
//! so even under racing producers the final state is exactly "replay the
//! deltas in global-ticket order" — which is what the oracle comparison at
//! the end asserts, byte for byte.

use ecfd_datagen::constraints::workload_constraints;
use ecfd_datagen::{generate, generate_delta, CustConfig, UpdateConfig};
use ecfd_relation::{Delta, Relation, Tuple};
use ecfd_serve::{ShardedConfig, ShardedHub, Ticket};
use ecfd_session::{Session, Snapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const TABLE: &str = "cust";
const SHARDS: usize = 4;
const PRODUCERS: usize = 4;
const DELTAS_PER_PRODUCER: usize = 12;

fn base_instance() -> Relation {
    let (base, _) = generate(&CustConfig {
        size: 40,
        noise_percent: 15.0,
        seed: 1234,
        extra_cities: 4,
        num_items: 6,
    });
    base
}

fn workload_session(base: &Relation) -> Session {
    let mut session = Session::new();
    session.load(base.clone()).expect("base loads");
    session
        .register(&workload_constraints())
        .expect("constraints register");
    session
}

/// Pre-generates each producer's delta stream (so the racing threads do no
/// RNG work under load): mixed insertions and deletions against the base.
fn producer_streams(base: &Relation) -> Vec<Vec<Delta>> {
    (0..PRODUCERS)
        .map(|p| {
            let mut mirror = base.clone();
            (0..DELTAS_PER_PRODUCER)
                .map(|round| {
                    let delta = generate_delta(
                        &mirror,
                        &UpdateConfig {
                            insertions: 5,
                            deletions: 3,
                            noise_percent: 30.0,
                            seed: (p * 1000 + round) as u64,
                            extra_cities: 4,
                            num_items: 6,
                        },
                    );
                    let _ = delta.apply(&mut mirror);
                    delta
                })
                .collect()
        })
        .collect()
}

#[test]
fn racing_producers_and_readers_agree_with_serial_replay() {
    let base = base_instance();
    let streams = producer_streams(&base);
    let config = ShardedConfig::new(SHARDS, "CT");
    let (writers, hub) =
        ShardedHub::bootstrap(workload_session(&base), &config).expect("bootstrap");

    // (global ticket, delta) pairs in whatever order the router issued them.
    let submitted: Mutex<Vec<(Ticket, Delta)>> = Mutex::new(Vec::new());
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for (s, writer) in writers.into_iter().enumerate() {
            let shard_hub = hub.shard_hubs()[s].clone();
            scope.spawn(move || writer.run(&shard_hub));
        }

        // Readers: take merged views while the producers race. Each observed
        // cut must (a) never move the global epoch backwards and (b) verify
        // against a from-scratch single-session detection over the *same*
        // per-shard snapshots the view was merged from.
        for _ in 0..2 {
            let hub = &hub;
            let done = &done;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut verified = 0usize;
                while !done.load(Ordering::SeqCst) {
                    let view = hub.merged().expect("merged view");
                    let epoch = view.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "global epoch went backwards: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    let refs: Vec<&Snapshot> = view.snapshots.iter().map(|s| s.as_ref()).collect();
                    let composed = Snapshot::compose(&refs).expect("compose cut");
                    assert_eq!(
                        *composed.report(),
                        view.report,
                        "merged view at epoch {epoch} fails re-detection"
                    );
                    verified += 1;
                }
                assert!(verified > 0, "reader never observed a cut");
            });
        }

        let producer_threads: Vec<_> = streams
            .iter()
            .map(|stream| {
                let hub = &hub;
                let submitted = &submitted;
                scope.spawn(move || {
                    for delta in stream {
                        let receipt = hub.submit(delta.clone()).expect("submit");
                        submitted
                            .lock()
                            .unwrap()
                            .push((receipt.global, delta.clone()));
                    }
                })
            })
            .collect();
        for thread in producer_threads {
            thread.join().expect("producer panicked");
        }

        // Quiesce: wait until everything submitted is applied + published.
        hub.sync(Duration::from_secs(30)).expect("global sync");
        done.store(true, Ordering::SeqCst);

        // The router serialized the racing submits under its lock; replaying
        // the deltas into one unsharded session in global-ticket order must
        // reproduce the merged report byte-for-byte (row ids included —
        // global pre-assignment hands out exactly the oracle's id sequence).
        let mut ordered = submitted.lock().unwrap().clone();
        ordered.sort_by_key(|(global, _)| *global);
        assert_eq!(ordered.len(), PRODUCERS * DELTAS_PER_PRODUCER);
        let mut oracle = workload_session(&base);
        for (_, delta) in &ordered {
            oracle.apply_on(TABLE, delta).expect("oracle apply");
        }
        let expected = oracle.detect_on(TABLE).expect("oracle detect");
        let merged = hub.merged().expect("final merge");
        assert_eq!(
            merged.report, expected,
            "post-race merged report differs from serial replay in ticket order"
        );
        let oracle_snap = oracle.snapshot().expect("oracle snapshot");
        assert_eq!(merged.evidence, *oracle_snap.evidence());
        assert_eq!(
            hub.applied_global(),
            (PRODUCERS * DELTAS_PER_PRODUCER) as u64
        );

        hub.shutdown();
    });
}

/// A SYNC barrier over a shard whose writer died must fail fast — aborted
/// queues report unappliable tickets immediately instead of timing out.
#[test]
fn sync_fails_fast_when_one_shard_writer_dies() {
    let base = base_instance();
    let config = ShardedConfig::new(2, "CT");
    let (mut writers, hub) =
        ShardedHub::bootstrap(workload_session(&base), &config).expect("bootstrap");

    // Submit enough distinct-city rows to hit both shards.
    let delta = Delta::insert_only(
        ["Albany", "Troy", "NYC", "LI", "Utica", "Colonie"]
            .iter()
            .map(|city| {
                Tuple::from_iter([
                    "518",
                    "0000000",
                    "Stress",
                    "1 Main St.",
                    *city,
                    "12000",
                    "Book0",
                    "book",
                ])
            })
            .collect(),
    );
    hub.submit(delta).expect("submit");

    // Shard 0's writer services its queue; shard 1's writer "dies" (abort
    // closes its queue the way Writer::run's exit guard does).
    let shard0 = hub.shard_hubs()[0].clone();
    while shard0.queue().pending() > 0 {
        writers[0]
            .step(&shard0, Duration::from_millis(50))
            .expect("shard 0 step");
    }
    hub.shard_hubs()[1].abort();

    let started = Instant::now();
    let result = hub.sync(Duration::from_secs(30));
    assert!(
        result.is_err(),
        "sync over a dead shard writer must not succeed"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "sync hung on the dead shard instead of failing fast ({:?})",
        started.elapsed()
    );
}
