//! End-to-end tests of the observability surface: the `STATS` / `INFO`
//! protocol verbs against the real `serve` binary (each spawn gets its own
//! process, so its metrics registry starts from zero), plus the in-process
//! [`Hub::metrics`] handle.
//!
//! [`Hub::metrics`]: ecfd_serve::Hub

use ecfd_obs::parse_exposition;
use ecfd_serve::protocol::TupleOp;
use ecfd_serve::{Client, Request, Response, ServeConfig, Server};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, Command, Stdio};

fn op(round: usize) -> TupleOp {
    let tag = format!("{:07}", 8000000 + round);
    TupleOp::insert(["519", &tag, "Gen", "Any St.", "Albany", "12239"])
}

struct Served {
    child: Child,
    addr: String,
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_serve(extra: &[&str]) -> Served {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("serve binary spawns");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve prints its address before EOF")
            .expect("serve stdout is readable");
        if let Some(addr) = line.strip_prefix("serving on ") {
            break addr.to_string();
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});
    Served { child, addr }
}

/// Scrapes `STATS` into a key → value map.
fn scrape(client: &mut Client, prefix: Option<&str>) -> BTreeMap<String, i64> {
    let text = client.stats(prefix).unwrap();
    parse_exposition(&text).unwrap().into_iter().collect()
}

/// `STATS` counters move as APPLY / SYNC / DETECT traffic flows, the
/// exposition is sorted and prefix-filterable, and `INFO` reports the
/// in-memory mode.
#[test]
fn stats_counters_move_with_traffic() {
    let server = spawn_serve(&[]);
    let mut client = Client::connect(&server.addr).unwrap();

    // Baseline scrape (this STATS itself is counted from now on).
    let before = scrape(&mut client, None);

    client.apply(vec![op(0)]).unwrap();
    client.apply(vec![op(1)]).unwrap();
    client.sync().unwrap();
    let detect = client.detect(true).unwrap();
    assert!(matches!(detect, Response::Report { .. }));

    let text = client.stats(None).unwrap();
    // Deterministic: sorted lines, trailing newline, parseable, stable
    // across back-to-back scrapes of a quiesced server.
    assert!(text.ends_with('\n'));
    let mut sorted: Vec<&str> = text.lines().collect();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        text.lines().collect::<Vec<_>>(),
        "sorted exposition"
    );
    let after = scrape(&mut client, None);

    let delta =
        |key: &str| after.get(key).copied().unwrap_or(0) - before.get(key).copied().unwrap_or(0);
    // Ingest + writer pipeline.
    assert_eq!(delta("ingest.accepted"), 2);
    assert_eq!(delta("writer.apply.ns.count"), 2);
    assert!(delta("writer.epochs") >= 1);
    assert_eq!(after.get("writer.epoch.lag"), Some(&0), "synced ⇒ no lag");
    // Per-verb serving metrics.
    assert_eq!(delta(r#"serve.requests{verb="APPLY"}"#), 2);
    assert_eq!(delta(r#"serve.requests{verb="SYNC"}"#), 1);
    assert_eq!(delta(r#"serve.requests{verb="DETECT"}"#), 1);
    assert!(delta(r#"serve.request.ns.count{verb="APPLY"}"#) >= 2);
    assert!(after.contains_key(r#"serve.requests{verb="STATS"}"#));
    // DETECT FRESH ran a frozen semantic pass.
    assert!(delta(r#"detect.pass.ns.count{backend="semantic"}"#) >= 1);
    assert!(delta("detect.rows.scanned") > 0);
    // No WAL attached: the wal.* family never appears.
    assert!(!after.keys().any(|k| k.starts_with("wal.")));

    // Prefix filtering returns exactly the matching subset.
    let ingest_only = scrape(&mut client, Some("ingest."));
    assert!(!ingest_only.is_empty());
    assert!(ingest_only.keys().all(|k| k.starts_with("ingest.")));
    let full = scrape(&mut client, None);
    for (key, value) in &ingest_only {
        assert_eq!(full.get(key), Some(value), "prefix scrape is a subset");
    }
    let none = client.stats(Some("no.such.prefix.")).unwrap();
    assert_eq!(none, "", "unmatched prefix renders empty");

    // INFO on the in-memory server.
    let Response::Info {
        version,
        epoch,
        accepted,
        applied,
        wal,
        follower,
    } = client.info().unwrap()
    else {
        panic!("INFO response expected");
    };
    assert!(!version.is_empty());
    assert!(epoch >= 1);
    assert_eq!(accepted, 2);
    assert_eq!(applied, 2, "SYNC barriered on both tickets");
    assert_eq!(wal, "off");
    assert!(!follower);

    // A malformed line is answered with ERR and counted as INVALID.
    let mut raw = std::net::TcpStream::connect(&server.addr).unwrap();
    raw.write_all(b"BOGUS LINE\n").unwrap();
    let mut answer = String::new();
    BufReader::new(raw.try_clone().unwrap())
        .read_line(&mut answer)
        .unwrap();
    assert!(answer.starts_with("ERR "), "got `{answer}`");
    let after_invalid = scrape(&mut client, Some("serve.requests"));
    assert_eq!(
        after_invalid.get(r#"serve.requests{verb="INVALID"}"#),
        Some(&1)
    );

    client.quit().unwrap();
}

/// `EXPLAIN PLAN` against the real binary: the rendered plan survives the
/// wire (percent-escaped multi-line payload, `parse(render(x)) == x`), the
/// demo instance's φ1/φ2 fuse into one shared scan, and a malformed
/// `EXPLAIN` mode is answered with `ERR` and counted under `INVALID`.
#[test]
fn explain_plan_round_trips_over_the_wire() {
    let server = spawn_serve(&[]);
    let mut client = Client::connect(&server.addr).unwrap();

    // The typed client path.
    let text = client.explain_plan().unwrap();
    assert!(text.ends_with('\n'), "rendered plan ends with a newline");
    let lines: Vec<&str> = text.lines().collect();
    // φ1 and φ2 both scan on X = [CT], so the fused plan has one shared
    // scan feeding three flag operators (φ1's two patterns + φ2's one).
    assert!(
        lines[0].starts_with("plan table=cust mode=fused"),
        "header line, got `{}`",
        lines[0]
    );
    assert!(lines[0].ends_with("scans=1"), "φ1/φ2 share one scan");
    assert_eq!(lines[1], "scan[0] x=[CT]");
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.trim_start().starts_with("flag"))
            .count(),
        3,
        "three pattern tuples become three flag operators"
    );

    // The raw wire line is one PLANTEXT token that round-trips.
    let response = client.request(&Request::ExplainPlan).unwrap();
    let Response::PlanText { text: wire_text } = &response else {
        panic!("PLANTEXT response expected");
    };
    assert_eq!(*wire_text, text, "stable across requests");
    let line = response.render();
    assert!(line.starts_with("PLANTEXT LINES "), "got `{line}`");
    assert_eq!(Response::parse(&line), Ok(response), "wire round trip");

    // A bad EXPLAIN mode is rejected before dispatch and counted INVALID.
    let mut raw = std::net::TcpStream::connect(&server.addr).unwrap();
    raw.write_all(b"EXPLAIN SIDEWAYS\n").unwrap();
    let mut answer = String::new();
    BufReader::new(raw.try_clone().unwrap())
        .read_line(&mut answer)
        .unwrap();
    assert!(answer.starts_with("ERR "), "got `{answer}`");
    let counters = scrape(&mut client, Some("serve.requests"));
    assert_eq!(
        counters.get(r#"serve.requests{verb="INVALID"}"#),
        Some(&1),
        "EXPLAIN SIDEWAYS is counted under the INVALID pseudo-verb"
    );
    assert_eq!(
        counters.get(r#"serve.requests{verb="EXPLAIN-PLAN"}"#),
        Some(&2),
        "both EXPLAIN PLAN requests counted under their own verb"
    );

    client.quit().unwrap();
}

/// Durable serving reports WAL metrics, and a `--recover` restart exposes
/// the recovery-replay gauges and the `recovered` WAL mode over `INFO`.
#[test]
fn wal_metrics_survive_recover() {
    const DELTAS: usize = 5;
    let dir = std::env::temp_dir().join(format!("ecfd-it-stats-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_flag = dir.to_str().unwrap().to_string();

    let leader = spawn_serve(&["--wal-dir", &dir_flag]);
    let mut client = Client::connect(&leader.addr).unwrap();
    for round in 0..DELTAS {
        client.apply(vec![op(round)]).unwrap();
    }
    client.sync().unwrap();

    let stats = scrape(&mut client, Some("wal."));
    // Appends count deltas *and* epoch checkpoints.
    assert!(stats.get("wal.append.count").copied().unwrap_or(0) >= DELTAS as i64);
    assert!(stats.get("wal.fsync.count").copied().unwrap_or(0) > 0);
    assert!(stats.get("wal.bytes").copied().unwrap_or(0) > 0);
    assert!(
        stats.get("wal.fsync.ns.count").copied().unwrap_or(0) > 0,
        "fsync latency histogram populated"
    );
    let Response::Info { wal, .. } = client.info().unwrap() else {
        panic!("INFO response expected");
    };
    assert_eq!(wal, "durable", "fresh log");
    drop(leader); // SIGKILL mid-everything.
    drop(client);

    let recovered = spawn_serve(&["--wal-dir", &dir_flag, "--recover"]);
    let mut client = Client::connect(&recovered.addr).unwrap();
    let stats = scrape(&mut client, Some("wal.recovery."));
    assert_eq!(stats.get("wal.recovery.deltas"), Some(&(DELTAS as i64)));
    assert_eq!(stats.get("wal.recovery.apply.errors"), Some(&0));
    assert_eq!(
        stats.get("wal.recovery.last.ticket"),
        Some(&(DELTAS as i64))
    );
    let Response::Info {
        wal,
        accepted,
        applied,
        ..
    } = client.info().unwrap()
    else {
        panic!("INFO response expected");
    };
    assert_eq!(wal, "recovered");
    assert_eq!(accepted, DELTAS as u64, "ticket sequence continues the log");
    assert_eq!(applied, DELTAS as u64, "recovery replays everything");

    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The in-process handle: `Hub::metrics()` reads the same registry `STATS`
/// renders. Delta-based assertions only — the registry is process-wide and
/// other tests in this binary may be running concurrently.
#[test]
fn hub_metrics_is_the_stats_registry() {
    let mut session = ecfd_session::Session::new();
    session
        .load(
            ecfd_relation::Relation::with_tuples(
                ecfd_relation::Schema::builder("cust")
                    .attr("CT", ecfd_relation::DataType::Str)
                    .attr("AC", ecfd_relation::DataType::Str)
                    .build(),
                [ecfd_relation::Tuple::from_iter(["Albany", "518"])],
            )
            .unwrap(),
        )
        .unwrap();
    session
        .register_text("cust: [CT] -> [AC] | [], { {Albany} || {518} }")
        .unwrap();

    let server = Server::bind(session, ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let hub = handle.hub().clone();
    let thread = std::thread::spawn(move || server.run().unwrap());

    let accepted_before = hub.metrics().counter("ingest.accepted").get();
    let mut client = Client::connect(addr).unwrap();
    client
        .apply(vec![TupleOp::insert(["Troy", "518"])])
        .unwrap();
    client.sync().unwrap();
    assert!(
        hub.metrics().counter("ingest.accepted").get() > accepted_before,
        "the hub handle observes protocol traffic"
    );

    // The exposition the wire returns parses and contains the same counter.
    let text = client.stats(Some("ingest.accepted")).unwrap();
    let parsed: BTreeMap<String, i64> = parse_exposition(&text).unwrap().into_iter().collect();
    assert!(parsed.contains_key("ingest.accepted"));

    // The raw wire line carries the payload as one escaped token.
    let rendered = Request::Stats {
        prefix: Some("ingest.".into()),
    }
    .render();
    assert_eq!(rendered, "STATS ingest.");

    client.quit().unwrap();
    handle.shutdown();
    thread.join().unwrap();
}
