//! Crash-recovery and replication tests driving the real `serve` binary.
//!
//! The acceptance scenario for the durable serving stack: kill -9 a durable
//! server mid-stream, restart it with `--recover`, and the recovered
//! `DETECT FRESH` answer is byte-identical to a fresh oracle server fed the
//! same deltas — plus the follower path: a second server started with
//! `--follow` replays the leader's WAL and lands on the same epoch and
//! report.

use ecfd_serve::protocol::TupleOp;
use ecfd_serve::{report_hash, Client, Follower, Request, Response, ServeConfig, Server};
use ecfd_session::Session;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The same base instance the binary's demo mode serves (Fig. 1 + φ1/φ2),
/// for in-process oracles and followers.
fn ready_session() -> Session {
    use ecfd_relation::{DataType, Relation, Schema, Tuple};
    let schema = Schema::builder("cust")
        .attr("AC", DataType::Str)
        .attr("PN", DataType::Str)
        .attr("NM", DataType::Str)
        .attr("STR", DataType::Str)
        .attr("CT", DataType::Str)
        .attr("ZIP", DataType::Str)
        .build();
    let data = Relation::with_tuples(
        schema,
        [
            Tuple::from_iter(["718", "1111111", "Mike", "Tree Ave.", "Albany", "12238"]),
            Tuple::from_iter(["518", "2222222", "Joe", "Elm Str.", "Colonie", "12205"]),
            Tuple::from_iter(["518", "2222222", "Jim", "Oak Ave.", "Troy", "12181"]),
            Tuple::from_iter(["100", "1111111", "Rick", "8th Ave.", "NYC", "10001"]),
            Tuple::from_iter(["212", "3333333", "Ben", "5th Ave.", "NYC", "10016"]),
            Tuple::from_iter(["646", "4444444", "Ian", "High St.", "NYC", "10011"]),
        ],
    )
    .unwrap();
    let mut session = Session::new();
    session.load(data).unwrap();
    session
        .register_text(
            "cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }\n\
             cust: [CT] -> []   | [AC], { {NYC} || {212, 718, 646, 347, 917} }",
        )
        .unwrap();
    session
}

/// The delta stream both phases feed: rows that interact with φ1/φ2 so the
/// recovered report is not trivially empty.
fn op(round: usize) -> TupleOp {
    let tag = format!("{:07}", 9000000 + round);
    match round % 3 {
        0 => TupleOp::insert(["519", &tag, "Gen", "Any St.", "Albany", "12239"]),
        1 => TupleOp::insert(["999", &tag, "Gen", "Any St.", "NYC", "10099"]),
        _ => TupleOp::insert(["518", &tag, "Gen", "Any St.", "Troy", "12181"]),
    }
}

struct Served {
    child: Child,
    addr: String,
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns the `serve` binary with `extra` flags on an ephemeral port and
/// waits for its "serving on {addr}" line.
fn spawn_serve(extra: &[&str]) -> Served {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("serve binary spawns");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve prints its address before EOF")
            .expect("serve stdout is readable");
        if let Some(addr) = line.strip_prefix("serving on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    Served { child, addr }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecfd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn detect_fresh_line(client: &mut Client) -> String {
    let response = client.request(&Request::Detect { fresh: true }).unwrap();
    assert!(matches!(response, Response::Report { .. }));
    response.render()
}

/// kill -9 a durable server mid-stream; `--recover` reproduces a state whose
/// `DETECT FRESH` line is byte-identical to an oracle fed the same deltas.
#[test]
fn kill_nine_then_recover_matches_fresh_oracle() {
    const PHASE_ONE: usize = 4;
    const PHASE_TWO: usize = 3;
    let dir = temp_dir("recover");
    let dir_flag = dir.to_str().unwrap();

    // Phase 1: stream, barrier, remember the served answer.
    let leader = spawn_serve(&["--wal-dir", dir_flag]);
    let mut client = Client::connect(&leader.addr).unwrap();
    for round in 0..PHASE_ONE {
        client.apply(vec![op(round)]).unwrap();
    }
    client.sync().unwrap();
    let phase_one_line = detect_fresh_line(&mut client);

    // Phase 2: more ACKed deltas, then SIGKILL — no shutdown handshake. The
    // ACK is the durability contract: everything acknowledged must survive.
    for round in PHASE_ONE..PHASE_ONE + PHASE_TWO {
        client.apply(vec![op(round)]).unwrap();
    }
    // Every ACK above implies an fsync already happened — scrape the proof
    // before the kill.
    let pre_kill = client.stats(Some("wal.")).unwrap();
    let pre_kill: std::collections::BTreeMap<String, i64> = ecfd_obs::parse_exposition(&pre_kill)
        .unwrap()
        .into_iter()
        .collect();
    assert!(
        pre_kill.get("wal.fsync.count").copied().unwrap_or(0) > 0,
        "ACKed deltas imply fsyncs before the crash"
    );
    drop(leader); // Drop kills the child (SIGKILL), mid-everything.
    drop(client);

    // A restart without --recover must refuse the non-empty log.
    let refused = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--addr", "127.0.0.1:0", "--wal-dir", dir_flag])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(refused.code(), Some(2), "non-empty WAL without --recover");

    // Restart with --recover: consistent, and byte-identical to an oracle
    // server (no WAL) fed the same delta sequence from scratch.
    let recovered = spawn_serve(&["--wal-dir", dir_flag, "--recover"]);
    let mut client = Client::connect(&recovered.addr).unwrap();
    let (_, consistent) = client.check().unwrap();
    assert!(consistent, "the recovered report must match a fresh detect");
    // The restarted process exposes what recovery replayed.
    let replay = client.stats(Some("wal.recovery.")).unwrap();
    let replay: std::collections::BTreeMap<String, i64> = ecfd_obs::parse_exposition(&replay)
        .unwrap()
        .into_iter()
        .collect();
    assert_eq!(
        replay.get("wal.recovery.deltas"),
        Some(&((PHASE_ONE + PHASE_TWO) as i64)),
        "every ACKed delta is replayed"
    );
    assert_eq!(replay.get("wal.recovery.apply.errors"), Some(&0));
    assert_eq!(
        replay.get("wal.recovery.last.ticket"),
        Some(&((PHASE_ONE + PHASE_TWO) as i64))
    );
    let recovered_line = detect_fresh_line(&mut client);

    let oracle = spawn_serve(&[]);
    let mut oracle_client = Client::connect(&oracle.addr).unwrap();
    for round in 0..PHASE_ONE + PHASE_TWO {
        oracle_client.apply(vec![op(round)]).unwrap();
    }
    oracle_client.sync().unwrap();
    let oracle_line = detect_fresh_line(&mut oracle_client);

    assert_eq!(
        recovered_line, oracle_line,
        "recovered DETECT FRESH must be byte-identical to the oracle's"
    );
    assert_ne!(
        phase_one_line, recovered_line,
        "phase-two deltas are part of the recovered state"
    );

    // The recovered server keeps accepting writes durably.
    client.apply(vec![op(100)]).unwrap();
    client.sync().unwrap();
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A follower built on an in-process server replays the leader's WAL and
/// reaches the same epoch and report hash — then keeps up across more writes.
#[test]
fn follower_replays_to_the_leader_epoch() {
    let dir = temp_dir("follow");

    // Durable leader, in-process.
    let (leader, _recovery) =
        Server::bind_durable(ready_session(), ServeConfig::default(), &dir).unwrap();
    let leader_addr = leader.local_addr().unwrap();
    let leader_handle = leader.handle();
    let leader_thread = std::thread::spawn(move || leader.run().unwrap());

    let mut feed = Client::connect(leader_addr).unwrap();
    for round in 0..5 {
        feed.apply(vec![op(round)]).unwrap();
    }
    feed.sync().unwrap();

    // Follower: an ordinary in-memory server over the same base, fed by
    // replaying the leader's log.
    let follower_server = Server::bind(ready_session(), ServeConfig::default()).unwrap();
    let follower_hub = follower_server.handle().hub().clone();
    let follower_handle = follower_server.handle();
    let follower_thread = std::thread::spawn(move || follower_server.run().unwrap());

    let mut follower = Follower::new(Client::connect(leader_addr).unwrap(), follower_hub.clone());
    let progress = follower.catch_up(Duration::from_secs(30)).unwrap();
    assert_eq!(progress.deltas_applied, 5);
    assert!(progress.checkpoints_verified >= 1);

    let leader_snap = leader_handle.hub().snapshot();
    let follower_snap = follower_hub.snapshot();
    assert_eq!(follower_snap.epoch(), leader_snap.epoch());
    assert_eq!(follower_snap.report(), leader_snap.report());
    assert_eq!(
        report_hash(follower_snap.report()),
        report_hash(leader_snap.report())
    );

    // More leader writes; the follower catches up incrementally.
    for round in 5..9 {
        feed.apply(vec![op(round)]).unwrap();
    }
    feed.sync().unwrap();
    let progress = follower.catch_up(Duration::from_secs(30)).unwrap();
    assert_eq!(progress.deltas_applied, 4);
    assert_eq!(follower_hub.epoch(), leader_handle.hub().epoch());
    assert_eq!(
        follower_hub.snapshot().report(),
        leader_handle.hub().snapshot().report()
    );

    follower_handle.shutdown();
    leader_handle.shutdown();
    follower_thread.join().unwrap();
    leader_thread.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `--follow` flag end to end: a follower *process* replicates a durable
/// leader *process* and serves the leader's state to its own clients.
#[test]
fn follow_flag_replicates_between_processes() {
    let dir = temp_dir("follow-bin");
    let dir_flag = dir.to_str().unwrap();

    let leader = spawn_serve(&["--wal-dir", dir_flag]);
    let mut feed = Client::connect(&leader.addr).unwrap();
    for round in 0..6 {
        feed.apply(vec![op(round)]).unwrap();
    }
    feed.sync().unwrap();
    let leader_line = detect_fresh_line(&mut feed);

    let follower = spawn_serve(&["--follow", &leader.addr]);
    let mut observer = Client::connect(&follower.addr).unwrap();
    // The follower polls on a short interval; wait for it to converge.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let follower_line = loop {
        let line = detect_fresh_line(&mut observer);
        if line == leader_line {
            break line;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "follower never converged: leader `{leader_line}`, follower `{line}`"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(follower_line, leader_line);
    drop(follower);
    drop(leader);
    std::fs::remove_dir_all(&dir).unwrap();
}
