//! Criterion microbenchmarks for the static analyses of Sections III–IV:
//! exact satisfiability, exact implication, and the MAXGSAT-based MAXSS
//! approximation (including a comparison of the MAXGSAT solvers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecfd_core::{implication, maxss, satisfiability};
use ecfd_datagen::constraints::workload_constraints;
use ecfd_datagen::cust_schema;
use ecfd_logic::MaxGSatSolver;
use std::time::Duration;

fn bench_satisfiability(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfiability");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let schema = cust_schema();
    let constraints = workload_constraints();
    for n in [2usize, 5, 10] {
        let subset = &constraints[..n];
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| satisfiability::is_satisfiable(&schema, subset).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("maxgsat_approx", n), &n, |b, _| {
            b.iter(|| {
                maxss::approximate_max_satisfiable(
                    &schema,
                    subset,
                    MaxGSatSolver::LocalSearch {
                        restarts: 4,
                        max_flips: 100,
                    },
                    0.1,
                    42,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let schema = cust_schema();
    let constraints = workload_constraints();
    group.bench_function("workload_redundancy_check", |b| {
        b.iter(|| {
            // Is φ8 implied by the rest? (It is not.)
            let phi = &constraints[7];
            let rest: Vec<_> = constraints
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 7)
                .map(|(_, e)| e.clone())
                .collect();
            implication::implies(&schema, &rest, phi).unwrap()
        });
    });
    group.finish();
}

fn bench_maxgsat_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxgsat_solvers");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let schema = cust_schema();
    let constraints = workload_constraints();
    let encoding = maxss::MaxSsEncoding::build(&schema, &constraints).unwrap();
    for (name, solver) in [
        ("random", MaxGSatSolver::RandomSampling { samples: 50 }),
        ("greedy", MaxGSatSolver::GreedyConditional { samples: 20 }),
        (
            "local_search",
            MaxGSatSolver::LocalSearch {
                restarts: 4,
                max_flips: 100,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| encoding.instance().solve(solver, 42));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_satisfiability,
    bench_implication,
    bench_maxgsat_solvers
);
criterion_main!(benches);
