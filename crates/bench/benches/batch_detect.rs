//! Criterion microbenchmarks behind Figs. 5(a)–(c): SQL BATCHDETECT cost as a
//! function of |D|, noise% and |Tp|.
//!
//! Sizes are kept small (hundreds of tuples) because Criterion repeats every
//! measurement many times; the `experiments` binary runs the full sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecfd_bench::PreparedWorkload;
use ecfd_detect::BatchDetector;
use std::time::Duration;

fn bench_batch_scale_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_batch_scale_d");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for size in [100usize, 200, 400] {
        let workload = PreparedWorkload::new(size, 5.0, 42);
        let detector = BatchDetector::new(&workload.schema, &workload.constraints).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut catalog = workload.catalog();
                detector.detect(&mut catalog).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_batch_scale_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_batch_scale_noise");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for noise in [0.0f64, 5.0, 9.0] {
        let workload = PreparedWorkload::new(200, noise, 42);
        let detector = BatchDetector::new(&workload.schema, &workload.constraints).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(noise as u32), &noise, |b, _| {
            b.iter(|| {
                let mut catalog = workload.catalog();
                detector.detect(&mut catalog).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_batch_scale_tp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5c_batch_scale_tp");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for tp in [20usize, 40, 80] {
        let workload = PreparedWorkload::with_tableau_size(200, 5.0, 42, Some(tp));
        let detector = BatchDetector::new(&workload.schema, &workload.constraints).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(tp), &tp, |b, _| {
            b.iter(|| {
                let mut catalog = workload.catalog();
                detector.detect(&mut catalog).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_scale_d,
    bench_batch_scale_noise,
    bench_batch_scale_tp
);
criterion_main!(benches);
