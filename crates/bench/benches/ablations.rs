//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! the SQL detection path vs the native semantic detector, the single-pair
//! query strategy vs one query pair per constraint, and the cost of building
//! the tableau-as-data encoding as |Tp| grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecfd_bench::PreparedWorkload;
use ecfd_detect::{BatchDetector, Encoding, SemanticDetector};
use std::time::Duration;

fn bench_sql_vs_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sql_vs_native");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let workload = PreparedWorkload::new(200, 5.0, 42);
    let batch = BatchDetector::new(&workload.schema, &workload.constraints).unwrap();
    let native = SemanticDetector::new(&workload.schema, &workload.constraints).unwrap();
    group.bench_function("sql_batch", |b| {
        b.iter(|| {
            let mut catalog = workload.catalog();
            batch.detect(&mut catalog).unwrap()
        });
    });
    group.bench_function("native", |b| {
        b.iter(|| native.detect(&workload.data).unwrap());
    });
    group.finish();
}

fn bench_single_pair_vs_per_constraint(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_single_pair_vs_per_constraint");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let workload = PreparedWorkload::new(150, 5.0, 42);
    let detector = BatchDetector::new(&workload.schema, &workload.constraints).unwrap();
    group.bench_function("single_pair", |b| {
        b.iter(|| {
            let mut catalog = workload.catalog();
            detector.detect(&mut catalog).unwrap()
        });
    });
    group.bench_function("per_constraint", |b| {
        b.iter(|| {
            let mut catalog = workload.catalog();
            detector.detect_per_constraint(&mut catalog).unwrap()
        });
    });
    group.finish();
}

fn bench_encoding_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_encoding_build");
    for tp in [50usize, 200, 500] {
        let workload = PreparedWorkload::with_tableau_size(10, 0.0, 42, Some(tp));
        group.bench_with_input(BenchmarkId::from_parameter(tp), &tp, |b, _| {
            b.iter(|| Encoding::build(&workload.schema, &workload.constraints).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sql_vs_native,
    bench_single_pair_vs_per_constraint,
    bench_encoding_build
);
criterion_main!(benches);
