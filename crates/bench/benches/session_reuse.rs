//! The compiled-constraint-set win: register-once / detect-many through the
//! session vs today's construct-per-detect pattern.
//!
//! The low-level path re-validates, re-splits and re-encodes the constraint
//! workload every time a detector is constructed; a `Session` compiles the
//! set once at registration and reuses it for every detection pass. Two
//! effects separate `construct_per_detect` from `register_once_detect_many`:
//!
//! * the per-call construction overhead (measured in isolation by
//!   `register_once`) is paid once instead of per detection; and
//! * the compilation pipeline's merge + dedupe steps shrink sloppy
//!   workloads — the scaled 160-pattern tableau carries ~25% duplicate
//!   pattern tuples, and since detection cost grows with `|Tp|`, *every*
//!   session-side pass is proportionally cheaper than a pass over the raw
//!   set.
//!
//! Since the dictionary-encoded columnar refactor the session's default
//! full-pass backend is the native semantic detector (pattern constants
//! pre-resolved to codes at registration, coded group keys, sharded scan),
//! which turned the ~5s per-pass figure of the SQL default at `|Tp|` = 160
//! into low single-digit milliseconds on the reference machine — the
//! `bench_detect` binary records the trajectory in `BENCH_detect.json`.
//! `construct_per_detect` still measures the SQL path, so the gap between
//! the two groups now shows the backend swap *and* the compile reuse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecfd_bench::PreparedWorkload;
use ecfd_core::ConstraintSet;
use ecfd_detect::BatchDetector;
use ecfd_session::Session;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
}

/// The one-time cost the session pays at registration: compiling the
/// constraint workload into a `ConstraintSet`.
fn bench_register_once(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_reuse_register_once");
    configure(&mut group);
    for tp in [20usize, 80, 160] {
        let workload = PreparedWorkload::with_tableau_size(200, 5.0, 42, Some(tp));
        group.bench_with_input(BenchmarkId::from_parameter(tp), &tp, |b, _| {
            b.iter(|| ConstraintSet::compile(&workload.schema, &workload.constraints).unwrap());
        });
    }
    group.finish();
}

/// Today's low-level pattern: construct the detector (validate + split +
/// encode) for every detection pass.
fn bench_construct_per_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_reuse_construct_per_detect");
    configure(&mut group);
    for tp in [20usize, 80, 160] {
        let workload = PreparedWorkload::with_tableau_size(200, 5.0, 42, Some(tp));
        let mut catalog = workload.catalog();
        group.bench_with_input(BenchmarkId::from_parameter(tp), &tp, |b, _| {
            b.iter(|| {
                let detector = BatchDetector::new(&workload.schema, &workload.constraints).unwrap();
                detector.detect(&mut catalog).unwrap()
            });
        });
    }
    group.finish();
}

/// The session pattern: constraints compiled once at registration, every
/// detection pass reuses the compiled set (the cache is dropped between
/// iterations so each one runs a real detection, as after a mutation).
fn bench_register_once_detect_many(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_reuse_register_once_detect_many");
    configure(&mut group);
    for tp in [20usize, 80, 160] {
        let workload = PreparedWorkload::with_tableau_size(200, 5.0, 42, Some(tp));
        let mut session = Session::new();
        session.load(workload.data.clone()).unwrap();
        session.register(&workload.constraints).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(tp), &tp, |b, _| {
            b.iter(|| {
                session.invalidate();
                session.detect().unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_register_once,
    bench_construct_per_detect,
    bench_register_once_detect_many
);
criterion_main!(benches);
