//! Criterion microbenchmarks for the repair subsystem: greedy vs. exact
//! (MAXGSAT-backed) deletion planning and value-modification planning over
//! `datagen` workloads, plus the full verified repair loop.
//!
//! Sizes are kept small because Criterion repeats every measurement many
//! times; the shapes — greedy scaling with conflict count, exact being
//! exponential-but-fine on ≤ 12-node instances — are what matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecfd_bench::PreparedWorkload;
use ecfd_core::ECfdBuilder;
use ecfd_relation::{Catalog, DataType, Relation, Schema, Tuple};
use ecfd_repair::{
    repair_verified, DeletionSolver, EditDistanceCost, RepairEngine, RepairMode, RepairOptions,
};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
}

/// Deletion-only planning (greedy cover) on generated workloads of growing
/// size: explain + plan, no apply.
fn bench_greedy_deletion_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_greedy_deletion");
    configure(&mut group);
    for size in [100usize, 200, 400] {
        let workload = PreparedWorkload::new(size, 5.0, 42);
        let engine = RepairEngine::new(&workload.schema, &workload.constraints)
            .unwrap()
            .with_options(RepairOptions {
                mode: RepairMode::DeleteOnly,
                solver: DeletionSolver::Greedy,
                ..RepairOptions::default()
            });
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let evidence = engine.explain(&workload.data).unwrap();
                engine.plan(&workload.data, &evidence).unwrap()
            });
        });
    }
    group.finish();
}

/// A small FD-conflict instance with `rows` conflicting tuples (one group,
/// all-distinct area codes) — the regime where the exact MAXGSAT oracle is
/// applicable.
fn small_conflict_instance(rows: usize) -> (Schema, Relation, Vec<ecfd_core::ECfd>) {
    let schema = Schema::builder("cust")
        .attr("CT", DataType::Str)
        .attr("AC", DataType::Str)
        .build();
    let data = Relation::with_tuples(
        schema.clone(),
        (0..rows).map(|i| Tuple::from_iter(["Albany", &format!("5{i:02}")])),
    )
    .unwrap();
    let fd = ECfdBuilder::new("cust")
        .lhs(["CT"])
        .fd_rhs(["AC"])
        .pattern(|p| p)
        .build()
        .unwrap();
    (schema, data, vec![fd])
}

/// Greedy vs. exact deletion planning on conflict graphs small enough for the
/// exhaustive MAXGSAT oracle (≤ 12 nodes).
fn bench_exact_vs_greedy_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_exact_vs_greedy_small");
    configure(&mut group);
    for rows in [6usize, 9, 12] {
        let (schema, data, constraints) = small_conflict_instance(rows);
        for (label, solver) in [
            ("greedy", DeletionSolver::Greedy),
            ("exact", DeletionSolver::Exact { max_nodes: 12 }),
        ] {
            let engine = RepairEngine::new(&schema, &constraints)
                .unwrap()
                .with_options(RepairOptions {
                    mode: RepairMode::DeleteOnly,
                    solver,
                    ..RepairOptions::default()
                });
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, _| {
                b.iter(|| {
                    let evidence = engine.explain(&data).unwrap();
                    engine.plan(&data, &evidence).unwrap()
                });
            });
        }
    }
    group.finish();
}

/// Value-modification planning (modify-then-delete under the edit-distance
/// cost model) on generated workloads.
fn bench_value_modification_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_value_modification");
    configure(&mut group);
    for size in [100usize, 200, 400] {
        let workload = PreparedWorkload::new(size, 5.0, 42);
        let engine = RepairEngine::new(&workload.schema, &workload.constraints)
            .unwrap()
            .with_cost_model(EditDistanceCost::default())
            .with_options(RepairOptions {
                mode: RepairMode::ModifyThenDelete,
                solver: DeletionSolver::Greedy,
                ..RepairOptions::default()
            });
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let evidence = engine.explain(&workload.data).unwrap();
                engine.plan(&workload.data, &evidence).unwrap()
            });
        });
    }
    group.finish();
}

/// The full verified loop: plan, apply through the incremental detector,
/// re-verify clean.
fn bench_verified_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_verified_loop");
    configure(&mut group);
    for size in [100usize, 200] {
        let workload = PreparedWorkload::new(size, 5.0, 42);
        let engine = RepairEngine::new(&workload.schema, &workload.constraints)
            .unwrap()
            .with_options(RepairOptions {
                solver: DeletionSolver::Greedy,
                ..RepairOptions::default()
            });
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut catalog = Catalog::new();
                catalog.create(workload.data.clone()).unwrap();
                repair_verified(&engine, &mut catalog).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_deletion_plan,
    bench_exact_vs_greedy_small,
    bench_value_modification_plan,
    bench_verified_repair
);
criterion_main!(benches);
