//! The cost of the always-on observability hooks, measured two ways:
//!
//! * `semantic_pass` — the scaled 160-pattern semantic detection pass with
//!   its (always-on) per-pass instrumentation, as a denominator;
//! * `obs_ops_per_pass` — exactly the metric operations one detection pass
//!   performs (`Instant::now` + elapsed, three registry counter lookups +
//!   adds, one labelled histogram lookup + record), in isolation;
//! * `obs_hot_handles` — the hot-path pattern used by the serving layer
//!   (handles fetched once at construction, per-event cost is one atomic
//!   `fetch_add` / histogram record).
//!
//! Detection instrumentation is per *pass*, not per row, so the numerator is
//! a fixed few-hundred-nanosecond figure against a multi-millisecond pass —
//! comfortably inside the <2% budget this benchmark exists to guard. Compare
//! the two group outputs to verify the ratio.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecfd_bench::PreparedWorkload;
use ecfd_detect::SemanticDetector;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
}

/// The denominator: one full semantic detection pass over the scaled
/// workload (2000 rows, first tableau scaled to 160 pattern tuples). The
/// pass already includes its own `record_pass` hook, so this *is* the
/// instrumented figure.
fn bench_semantic_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead_semantic_pass");
    configure(&mut group);
    let workload = PreparedWorkload::with_tableau_size(2000, 5.0, 42, Some(160));
    let detector = SemanticDetector::new(&workload.schema, &workload.constraints).unwrap();
    group.bench_function("tp160", |b| {
        b.iter(|| detector.detect(black_box(&workload.data)).unwrap());
    });
    group.finish();
}

/// The numerator: the exact metric operations one detection pass performs.
fn bench_obs_ops_per_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead_obs_ops_per_pass");
    configure(&mut group);
    let registry = ecfd_obs::registry();
    group.bench_function("record_pass", |b| {
        b.iter(|| {
            let started = std::time::Instant::now();
            registry
                .histogram_with("bench.obs.pass.ns", &[("backend", "semantic")])
                .record_duration(started.elapsed());
            registry
                .counter("bench.obs.rows.scanned")
                .add(black_box(2000));
            registry
                .counter("bench.obs.groups.merged")
                .add(black_box(64));
            registry.counter("bench.obs.violations").add(black_box(12));
        });
    });
    group.finish();
}

/// The serving layer's hot-path pattern: metric handles resolved once, each
/// event costing one atomic op (what the ingest queue and writer do per
/// delta).
fn bench_obs_hot_handles(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead_hot_handles");
    configure(&mut group);
    let registry = ecfd_obs::registry();
    let counter = registry.counter("bench.obs.hot.counter");
    let histogram = registry.histogram("bench.obs.hot.ns");
    group.bench_function("counter_inc", |b| {
        b.iter(|| counter.inc());
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| histogram.record(black_box(1234)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_semantic_pass,
    bench_obs_ops_per_pass,
    bench_obs_hot_handles
);
criterion_main!(benches);
