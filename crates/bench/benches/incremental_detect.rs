//! Criterion microbenchmarks behind Figs. 6(a)–(c) and 7(a): incremental
//! detection vs batch recomputation under updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecfd_bench::PreparedWorkload;
use ecfd_detect::{BatchDetector, IncrementalDetector};
use std::time::Duration;

/// Fig. 6(a) analogue: fixed update size, growing |D|; measures one
/// incremental apply vs one batch recomputation.
fn bench_inc_vs_batch_d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_inc_vs_batch_d");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for size in [200usize, 400] {
        let workload = PreparedWorkload::new(size, 5.0, 42);
        let delta = workload.delta(20, 20, 7);

        group.bench_with_input(BenchmarkId::new("incdetect", size), &size, |b, _| {
            b.iter(|| {
                let mut catalog = workload.catalog();
                let mut inc = IncrementalDetector::initialize(
                    &workload.schema,
                    &workload.constraints,
                    &mut catalog,
                )
                .unwrap();
                inc.apply(&mut catalog, &delta).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("batchdetect", size), &size, |b, _| {
            let detector = BatchDetector::new(&workload.schema, &workload.constraints).unwrap();
            b.iter(|| {
                let mut updated = workload.data.clone();
                delta.apply(&mut updated).unwrap();
                let mut catalog = ecfd_relation::Catalog::new();
                catalog.create(updated).unwrap();
                detector.detect(&mut catalog).unwrap()
            });
        });
    }
    group.finish();
}

/// Fig. 7(a) analogue: fixed |D|, growing update size.
fn bench_update_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_update_size");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let workload = PreparedWorkload::new(400, 5.0, 42);
    for delta_size in [20usize, 100, 200] {
        let delta = workload.delta(delta_size, delta_size, 7);
        group.bench_with_input(
            BenchmarkId::new("incdetect", delta_size),
            &delta_size,
            |b, _| {
                b.iter(|| {
                    let mut catalog = workload.catalog();
                    let mut inc = IncrementalDetector::initialize(
                        &workload.schema,
                        &workload.constraints,
                        &mut catalog,
                    )
                    .unwrap();
                    inc.apply(&mut catalog, &delta).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batchdetect", delta_size),
            &delta_size,
            |b, _| {
                let detector = BatchDetector::new(&workload.schema, &workload.constraints).unwrap();
                b.iter(|| {
                    let mut updated = workload.data.clone();
                    delta.apply(&mut updated).unwrap();
                    let mut catalog = ecfd_relation::Catalog::new();
                    catalog.create(updated).unwrap();
                    detector.detect(&mut catalog).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inc_vs_batch_d, bench_update_size);
criterion_main!(benches);
