//! Shared workload preparation for the experiments and Criterion benches.

use ecfd_core::ECfd;
use ecfd_datagen::constraints::{workload_constraints, workload_with_scaled_constraint};
use ecfd_datagen::{cust_schema, generate, generate_delta, CustConfig, UpdateConfig};
use ecfd_relation::{Catalog, Delta, Relation, Schema};

/// A generated instance plus the constraint workload to check it against.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// The `cust` schema.
    pub schema: Schema,
    /// The generated instance.
    pub data: Relation,
    /// The constraints (10 eCFDs, possibly with one scaled tableau).
    pub constraints: Vec<ECfd>,
    /// How many tuples the noise injector modified.
    pub noisy_tuples: usize,
}

impl PreparedWorkload {
    /// Generates a workload with the 10 base constraints.
    pub fn new(size: usize, noise_percent: f64, seed: u64) -> Self {
        Self::with_tableau_size(size, noise_percent, seed, None)
    }

    /// Generates a workload, optionally replacing the first constraint with a
    /// scaled tableau of `tableau_size` pattern tuples (the `|Tp|` knob).
    pub fn with_tableau_size(
        size: usize,
        noise_percent: f64,
        seed: u64,
        tableau_size: Option<usize>,
    ) -> Self {
        let (data, noisy_tuples) = generate(&CustConfig {
            size,
            noise_percent,
            seed,
            ..CustConfig::default()
        });
        let constraints = match tableau_size {
            Some(n) => workload_with_scaled_constraint(n, seed),
            None => workload_constraints(),
        };
        PreparedWorkload {
            schema: cust_schema(),
            data,
            constraints,
            noisy_tuples,
        }
    }

    /// A fresh catalog containing (a clone of) the data table.
    pub fn catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        catalog
            .create(self.data.clone())
            .expect("fresh catalog has no cust table");
        catalog
    }

    /// Generates an update batch against this workload's data.
    pub fn delta(&self, insertions: usize, deletions: usize, seed: u64) -> Delta {
        generate_delta(
            &self.data,
            &UpdateConfig {
                insertions,
                deletions,
                noise_percent: 5.0,
                seed,
                ..UpdateConfig::default()
            },
        )
    }
}

/// Convenience: a catalog holding a generated instance of `size` tuples at
/// `noise_percent` noise (used by the Criterion benches).
pub fn prepared_catalog(size: usize, noise_percent: f64, seed: u64) -> (Catalog, PreparedWorkload) {
    let workload = PreparedWorkload::new(size, noise_percent, seed);
    (workload.catalog(), workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_workload_is_consistent() {
        let w = PreparedWorkload::new(200, 5.0, 1);
        assert_eq!(w.data.len(), 200);
        assert_eq!(w.constraints.len(), 10);
        assert_eq!(w.noisy_tuples, 10);
        let catalog = w.catalog();
        assert!(catalog.contains("cust"));

        let scaled = PreparedWorkload::with_tableau_size(100, 5.0, 1, Some(30));
        assert_eq!(scaled.constraints[0].tableau_size(), 30);

        let delta = w.delta(20, 10, 3);
        assert_eq!(delta.insertions.len(), 20);
        assert_eq!(delta.deletions.len(), 10);
    }
}
