//! `bench_serve`: reader throughput under write load, recorded.
//!
//! Drives the serving layer in-process (hub + writer, no TCP, so the numbers
//! measure the snapshot machinery rather than loopback sockets) in two
//! phases over the generated `cust` workload:
//!
//! 1. **no write load** — `readers` threads each loop `snapshot()` →
//!    `detect_fresh()` and verify the result against the published report;
//! 2. **full write load** — the same reader loop while a writer thread
//!    applies generated insert/delete deltas as fast as the ingest queue
//!    hands them over;
//! 3. **durable write load** — phase 2 again with a WAL attached
//!    (`Writer::bootstrap_durable`), so every accepted delta is fsynced
//!    before its ACK and every epoch logs a checkpoint: the durable-vs-
//!    in-memory delta is the price of crash safety;
//! 4. **sharded write load** — phase 2 over a [`ShardedHub`] at 1, 2 and 4
//!    shards (rows hashed by `CT`): one writer thread per shard races the
//!    router while readers take merged cross-shard views, and each shard's
//!    apply latency is scoped out of its `writer.apply.ns{shard=N}`
//!    histogram, so the per-shard p50/p95/p99 and the merge-layer read cost
//!    are both on record per commit.
//!
//! Every reader round-trip asserts byte-identical cached-vs-fresh reports
//! (monotone merged epochs plus a final fresh-merge re-verification on the
//! sharded axis), so the benchmark doubles as a stress test of snapshot
//! isolation. Each phase also records per-round-trip latency into an
//! [`ecfd_obs::Histogram`] and reports p50/p95/p99. Results go to a
//! machine-readable `BENCH_serve.json` (CI uploads it as an artifact).
//!
//! ```text
//! cargo run --release -p ecfd_bench --bin bench_serve -- \
//!     --rows 2000 --readers 4 --millis 500 --out BENCH_serve.json
//! ```

use ecfd_bench::PreparedWorkload;
use ecfd_obs::{Histogram, HistogramSnapshot};
use ecfd_relation::Delta;
use ecfd_serve::{ShardedConfig, ShardedHub, Writer};
use ecfd_session::Session;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    rows: usize,
    readers: usize,
    millis: u64,
    delta_size: usize,
    out: String,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            rows: 2000,
            readers: 4,
            millis: 500,
            delta_size: 8,
            out: "BENCH_serve.json".to_string(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match flag.as_str() {
                "--rows" => args.rows = parse_num(&value("--rows")?)?,
                "--readers" => args.readers = parse_num(&value("--readers")?)?.max(1),
                "--millis" => args.millis = parse_num(&value("--millis")?)? as u64,
                "--delta-size" => args.delta_size = parse_num(&value("--delta-size")?)?.max(1),
                "--out" => args.out = value("--out")?,
                "--help" | "-h" => {
                    println!(
                        "usage: bench_serve [--rows N] [--readers N] [--millis N] \
                         [--delta-size N] [--out PATH]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

fn parse_num(text: &str) -> Result<usize, String> {
    text.trim()
        .parse::<usize>()
        .map_err(|_| format!("`{text}` is not a number"))
}

struct PhaseResult {
    reads_total: u64,
    reads_per_sec: f64,
    epochs_advanced: u64,
    deltas_applied: u64,
    /// Per reader round-trip (snapshot → detect_fresh → verify) latency.
    read_latency: HistogramSnapshot,
    /// Per writer-apply latency during this phase, scoped out of the
    /// process-wide `writer.apply.ns` histogram by diffing two readings.
    apply_latency: HistogramSnapshot,
}

/// Runs one measurement phase: `readers` verify-loops for `duration`, with
/// the writer either idle or applying generated deltas at full speed. With
/// `wal_dir` set the stack runs durably: fsync-per-ACK plus a checkpoint
/// record per published epoch.
fn run_phase(
    workload: &PreparedWorkload,
    args: &Args,
    duration: Duration,
    write_load: bool,
    wal_dir: Option<&std::path::Path>,
) -> PhaseResult {
    let mut session = Session::new();
    session
        .load(workload.data.clone())
        .expect("workload data loads");
    session
        .register(&workload.constraints)
        .expect("workload constraints compile");
    let (mut writer, hub) = match wal_dir {
        Some(dir) => {
            let (writer, hub, _recovery) =
                Writer::bootstrap_durable(session, 64, 32, dir).expect("durable bootstrap");
            (writer, hub)
        }
        None => Writer::bootstrap(session, 64, 32).expect("bootstrap"),
    };
    let start_epoch = hub.epoch();
    let stop = Arc::new(AtomicBool::new(false));
    // One lock-free histogram shared by all readers of this phase; the
    // writer's apply latency comes from the process-wide registry instead,
    // scoped to the phase by snapshotting before and after.
    let read_hist = Histogram::new();
    let apply_hist = hub.metrics().histogram("writer.apply.ns");
    let apply_before = apply_hist.snapshot();

    let mut deltas_applied = 0u64;
    let reads_total: u64 = std::thread::scope(|scope| {
        let reader_handles: Vec<_> = (0..args.readers)
            .map(|_| {
                let hub = &hub;
                let stop = stop.clone();
                let read_hist = read_hist.clone();
                scope.spawn(move || {
                    let mut rounds = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        read_hist.time(|| {
                            let snap = hub.snapshot();
                            let fresh = snap.detect_fresh().expect("frozen scan succeeds");
                            assert_eq!(
                                &fresh,
                                snap.report(),
                                "snapshot isolation violated at epoch {}",
                                snap.epoch()
                            );
                        });
                        rounds += 1;
                    }
                    rounds
                })
            })
            .collect();

        // Feed and drive the writer (same thread: `step` only blocks for the
        // pop timeout, so submission interleaves with application).
        let deadline = Instant::now() + duration;
        if write_load {
            let mut seed = 1u64;
            while Instant::now() < deadline {
                if hub.queue().pending() < hub.queue().capacity() / 2 {
                    let delta: Delta = workload.delta(args.delta_size, args.delta_size / 2, seed);
                    hub.submit(delta).expect("queue open");
                    seed += 1;
                }
                if let ecfd_serve::StepOutcome::Applied(n) = writer
                    .step(&hub, Duration::from_millis(1))
                    .expect("writer step")
                {
                    deltas_applied += n as u64;
                }
            }
        } else {
            std::thread::sleep(duration);
        }
        stop.store(true, Ordering::Relaxed);
        reader_handles
            .into_iter()
            .map(|h| h.join().expect("reader thread"))
            .sum()
    });

    PhaseResult {
        reads_total,
        reads_per_sec: reads_total as f64 / duration.as_secs_f64(),
        epochs_advanced: hub.epoch() - start_epoch,
        deltas_applied,
        read_latency: read_hist.snapshot(),
        apply_latency: apply_hist.snapshot().since(&apply_before),
    }
}

struct ShardedPhaseResult {
    shards: usize,
    reads_total: u64,
    reads_per_sec: f64,
    epochs_advanced: u64,
    deltas_routed: u64,
    /// Per reader round-trip (merged cross-shard view) latency.
    read_latency: HistogramSnapshot,
    /// Per-shard apply latency, scoped out of each shard writer's
    /// `writer.apply.ns{shard=N}` histogram by diffing two readings.
    shard_apply: Vec<HistogramSnapshot>,
}

/// The sharded axis: phase 2's write load over a [`ShardedHub`] — one writer
/// thread per shard racing the router while `readers` threads take merged
/// cross-shard views. Readers assert the global epoch is monotone across
/// cuts; after quiescing, the cached merged report is re-verified against a
/// from-scratch fresh merge.
fn run_sharded_phase(
    workload: &PreparedWorkload,
    args: &Args,
    duration: Duration,
    shards: usize,
) -> ShardedPhaseResult {
    let mut session = Session::new();
    session
        .load(workload.data.clone())
        .expect("workload data loads");
    session
        .register(&workload.constraints)
        .expect("workload constraints compile");
    let config = ShardedConfig::new(shards, "CT");
    let (writers, hub) = ShardedHub::bootstrap(session, &config).expect("sharded bootstrap");
    let start_epoch = hub.epoch();
    let read_hist = Histogram::new();
    // The registry histograms are process-wide and monotone (shard labels
    // recur across the 1/2/4-shard phases), so each phase is scoped by a
    // before/after snapshot diff per shard.
    let shard_hists: Vec<(Histogram, HistogramSnapshot)> = (0..shards)
        .map(|s| {
            let hist = ecfd_obs::registry()
                .histogram_with("writer.apply.ns", &[("shard", &s.to_string())]);
            let before = hist.snapshot();
            (hist, before)
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let mut deltas_routed = 0u64;
    let reads_total: u64 = std::thread::scope(|scope| {
        let writer_handles: Vec<_> = writers
            .into_iter()
            .enumerate()
            .map(|(s, writer)| {
                let shard_hub = Arc::clone(&hub.shard_hubs()[s]);
                scope.spawn(move || writer.run(&shard_hub))
            })
            .collect();
        let reader_handles: Vec<_> = (0..args.readers)
            .map(|_| {
                let hub = &hub;
                let stop = stop.clone();
                let read_hist = read_hist.clone();
                scope.spawn(move || {
                    let mut rounds = 0u64;
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        read_hist.time(|| {
                            let view = hub.merged().expect("merged view");
                            assert!(
                                view.epoch() >= last_epoch,
                                "merged epoch went backwards: {} < {last_epoch}",
                                view.epoch()
                            );
                            last_epoch = view.epoch();
                        });
                        rounds += 1;
                    }
                    rounds
                })
            })
            .collect();

        // Route deltas through the global ordering lock as fast as the
        // slowest shard queue drains (mirrors phase 2's half-full pacing).
        let deadline = Instant::now() + duration;
        let mut seed = 1u64;
        while Instant::now() < deadline {
            let backlog = hub
                .shard_hubs()
                .iter()
                .map(|shard| shard.queue().pending())
                .max()
                .unwrap_or(0);
            if backlog < config.queue_capacity / 2 {
                let delta: Delta = workload.delta(args.delta_size, args.delta_size / 2, seed);
                hub.submit(delta).expect("router open");
                deltas_routed += 1;
                seed += 1;
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        hub.sync(Duration::from_secs(30)).expect("shards quiesce");
        // One verified cut at quiescence: the cached merged report must be
        // byte-identical to a from-scratch fresh merge.
        let cached = hub.merged().expect("cached merged view");
        let fresh = hub.merged_fresh().expect("fresh merged view");
        assert_eq!(
            cached.report, fresh.report,
            "cached merged report diverged from a fresh merge"
        );
        stop.store(true, Ordering::Relaxed);
        let reads = reader_handles
            .into_iter()
            .map(|h| h.join().expect("reader thread"))
            .sum();
        hub.shutdown();
        for handle in writer_handles {
            handle
                .join()
                .expect("writer thread")
                .expect("shard writer run");
        }
        reads
    });

    ShardedPhaseResult {
        shards,
        reads_total,
        reads_per_sec: reads_total as f64 / duration.as_secs_f64(),
        epochs_advanced: hub.epoch() - start_epoch,
        deltas_routed,
        read_latency: read_hist.snapshot(),
        shard_apply: shard_hists
            .iter()
            .map(|(hist, before)| hist.snapshot().since(before))
            .collect(),
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bench_serve: {msg}");
            std::process::exit(2);
        }
    };
    let duration = Duration::from_millis(args.millis.max(50));
    let workload = PreparedWorkload::new(args.rows, 5.0, 42);

    let idle = run_phase(&workload, &args, duration, false, None);
    println!(
        "no write load:  {} readers, {:.0} verified detect round-trips/s ({} total), \
         read {}",
        args.readers,
        idle.reads_per_sec,
        idle.reads_total,
        quantile_line(&idle.read_latency)
    );
    let loaded = run_phase(&workload, &args, duration, true, None);
    println!(
        "write load:     {} readers, {:.0} verified detect round-trips/s ({} total), \
         {} epochs published, read {}, apply {}",
        args.readers,
        loaded.reads_per_sec,
        loaded.reads_total,
        loaded.epochs_advanced,
        quantile_line(&loaded.read_latency),
        quantile_line(&loaded.apply_latency)
    );
    let wal_dir = std::env::temp_dir().join(format!("ecfd-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let durable = run_phase(&workload, &args, duration, true, Some(&wal_dir));
    let _ = std::fs::remove_dir_all(&wal_dir);
    println!(
        "durable load:   {} readers, {:.0} verified detect round-trips/s ({} total), \
         {} epochs published, {} deltas fsynced, read {}, apply {}",
        args.readers,
        durable.reads_per_sec,
        durable.reads_total,
        durable.epochs_advanced,
        durable.deltas_applied,
        quantile_line(&durable.read_latency),
        quantile_line(&durable.apply_latency)
    );

    let sharded: Vec<ShardedPhaseResult> = [1usize, 2, 4]
        .iter()
        .map(|&shards| {
            let result = run_sharded_phase(&workload, &args, duration, shards);
            let per_shard = result
                .shard_apply
                .iter()
                .enumerate()
                .map(|(s, snap)| format!("shard {s} apply {}", quantile_line(snap)))
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "sharded x{}:    {} readers, {:.0} merged round-trips/s ({} total), \
                 {} epochs published, {} deltas routed, read {}, {}",
                result.shards,
                args.readers,
                result.reads_per_sec,
                result.reads_total,
                result.epochs_advanced,
                result.deltas_routed,
                quantile_line(&result.read_latency),
                per_shard
            );
            result
        })
        .collect();

    let json = render_json(&args, &idle, &loaded, &durable, &sharded);
    std::fs::write(&args.out, &json).expect("write benchmark output");
    println!("wrote {}", args.out);
}

/// `p50/p95/p99 µs (n samples)` for a phase-scoped latency histogram.
fn quantile_line(snapshot: &HistogramSnapshot) -> String {
    if snapshot.count() == 0 {
        return "-".to_string();
    }
    let us = |q: f64| snapshot.quantile(q) as f64 / 1000.0;
    format!(
        "p50/p95/p99 {:.1}/{:.1}/{:.1} µs",
        us(0.50),
        us(0.95),
        us(0.99)
    )
}

/// One latency histogram as a JSON object (nanosecond quantiles).
fn latency_json(snapshot: &HistogramSnapshot) -> String {
    format!(
        "{{ \"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {} }}",
        snapshot.count(),
        snapshot.quantile(0.50),
        snapshot.quantile(0.95),
        snapshot.quantile(0.99),
        snapshot.max()
    )
}

/// Renders the result as JSON by hand — the vendored serde shim has no
/// serializer, and the schema here is flat and fixed.
fn render_json(
    args: &Args,
    idle: &PhaseResult,
    loaded: &PhaseResult,
    durable: &PhaseResult,
    sharded: &[ShardedPhaseResult],
) -> String {
    let phase = |r: &PhaseResult| {
        format!(
            "{{ \"reads_total\": {}, \"reads_per_sec\": {:.1}, \
             \"epochs_advanced\": {}, \"deltas_applied\": {}, \
             \"read_latency\": {}, \"apply_latency\": {} }}",
            r.reads_total,
            r.reads_per_sec,
            r.epochs_advanced,
            r.deltas_applied,
            latency_json(&r.read_latency),
            latency_json(&r.apply_latency)
        )
    };
    let sharded_phase = |r: &ShardedPhaseResult| {
        let per_shard = r
            .shard_apply
            .iter()
            .map(latency_json)
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{ \"shards\": {}, \"reads_total\": {}, \"reads_per_sec\": {:.1}, \
             \"epochs_advanced\": {}, \"deltas_routed\": {}, \
             \"read_latency\": {}, \"shard_apply_latency\": [{per_shard}] }}",
            r.shards,
            r.reads_total,
            r.reads_per_sec,
            r.epochs_advanced,
            r.deltas_routed,
            latency_json(&r.read_latency)
        )
    };
    let sharded_json = sharded
        .iter()
        .map(sharded_phase)
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"workload\": \"cust\",\n  \"rows\": {},\n  \
         \"readers\": {},\n  \"duration_ms\": {},\n  \"delta_size\": {},\n  \
         \"no_write_load\": {},\n  \"write_load\": {},\n  \"write_load_durable\": {},\n  \
         \"sharded_write_load\": [\n    {}\n  ]\n}}\n",
        args.rows,
        args.readers,
        args.millis,
        args.delta_size,
        phase(idle),
        phase(loaded),
        phase(durable),
        sharded_json
    )
}
