//! Regenerates the figures of the paper's evaluation (Section VI).
//!
//! Usage:
//!
//! ```text
//! cargo run -p ecfd_bench --release --bin experiments -- [EXPERIMENT ...] [--full]
//! ```
//!
//! `EXPERIMENT` is one of `fig5a fig5b fig5c fig6a fig6b fig6c fig7a fig7b
//! ablation`, or `all` (the default). `--full` switches from the default
//! small scale to the paper's original parameter ranges (10k–100k tuples) —
//! expect long runtimes on the bundled interpretive SQL engine.

use ecfd_bench::experiments::{self, render_table, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = Scale::from_full_flag(full);
    let requested: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let all = [
        "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b", "ablation",
    ];
    let selected: Vec<&str> = if requested.is_empty() || requested.iter().any(|r| r == "all") {
        all.to_vec()
    } else {
        requested.iter().map(String::as_str).collect()
    };

    println!(
        "eCFD experiment harness — scale: {:?} (use --full for the paper's ranges)\n",
        scale
    );
    for exp in selected {
        let (title, rows) = match exp {
            "fig5a" => (
                "Fig. 5(a) — BATCHDETECT scalability in |D| (noise 5%, 10 eCFDs)",
                experiments::fig5a(scale),
            ),
            "fig5b" => (
                "Fig. 5(b) — BATCHDETECT scalability in noise%",
                experiments::fig5b(scale),
            ),
            "fig5c" => (
                "Fig. 5(c) — BATCHDETECT scalability in |Tp|",
                experiments::fig5c(scale),
            ),
            "fig6a" => (
                "Fig. 6(a) — INCDETECT vs BATCHDETECT, scaling |D|",
                experiments::fig6a(scale),
            ),
            "fig6b" => (
                "Fig. 6(b) — INCDETECT vs BATCHDETECT, scaling noise%",
                experiments::fig6b(scale),
            ),
            "fig6c" => (
                "Fig. 6(c) — INCDETECT vs BATCHDETECT, scaling |Tp|",
                experiments::fig6c(scale),
            ),
            "fig7a" => (
                "Fig. 7(a) — effect of update size (INCDETECT vs BATCHDETECT vs native batch)",
                experiments::fig7a(scale),
            ),
            "fig7b" => (
                "Fig. 7(b) — growth of DSV / DMV violation counts with update size",
                experiments::fig7b(scale),
            ),
            "ablation" => (
                "Ablation — SQL BATCHDETECT vs native semantic detector",
                experiments::ablation_sql_vs_native(scale),
            ),
            other => {
                eprintln!("unknown experiment `{other}`; known: {all:?}");
                std::process::exit(2);
            }
        };
        println!("{}", render_table(title, &rows));
    }
}
