//! `bench_detect`: the recorded detection benchmark.
//!
//! Runs the scaled-tableau detection workload (the `|Tp|` knob of the
//! paper's Fig. 5(c) / the `session_reuse` criterion group) through the
//! dictionary-encoded semantic detector *and* the plan-executing backend
//! (shared-scan fused vs unfused) at one or more worker counts, and writes
//! a machine-readable `BENCH_detect.json` so the perf trajectory of the hot
//! path — including the shared-scan fusion win — is recorded run over run
//! (CI uploads it as an artifact).
//!
//! ```text
//! cargo run --release -p ecfd_bench --bin bench_detect -- \
//!     --rows 2000 --patterns 160 --threads 1,2,4 --passes 3 --out BENCH_detect.json
//! ```

use ecfd_bench::PreparedWorkload;
use ecfd_core::ConstraintSet;
use ecfd_detect::{DetectorBackend, Parallelism, SemanticDetector};
use ecfd_plan::PlanBackend;
use ecfd_relation::Catalog;
use std::time::Instant;

struct Args {
    rows: usize,
    patterns: usize,
    threads: Vec<usize>,
    passes: usize,
    out: String,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            rows: 2000,
            patterns: 160,
            threads: vec![1, 2, 4],
            passes: 3,
            out: "BENCH_detect.json".to_string(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match flag.as_str() {
                "--rows" => args.rows = parse_num(&value("--rows")?)?,
                "--patterns" => args.patterns = parse_num(&value("--patterns")?)?,
                "--passes" => args.passes = parse_num(&value("--passes")?)?.max(1),
                "--threads" => {
                    args.threads = value("--threads")?
                        .split(',')
                        .map(parse_num)
                        .collect::<Result<_, _>>()?;
                    if args.threads.is_empty() {
                        return Err("--threads needs at least one count".into());
                    }
                }
                "--out" => args.out = value("--out")?,
                "--help" | "-h" => {
                    println!(
                        "usage: bench_detect [--rows N] [--patterns N] \
                         [--threads A,B,...] [--passes N] [--out PATH]"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

fn parse_num(text: &str) -> Result<usize, String> {
    text.trim()
        .parse::<usize>()
        .map_err(|_| format!("`{text}` is not a number"))
}

fn main() {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("bench_detect: {msg}");
            std::process::exit(2);
        }
    };

    // The scaled workload: `rows` generated cust tuples at 5% noise, the
    // 10-constraint workload with the first tableau scaled to `patterns`
    // pattern tuples, compiled once (registration time) as a session would.
    let workload = PreparedWorkload::with_tableau_size(args.rows, 5.0, 42, Some(args.patterns));
    let set = ConstraintSet::compile(&workload.schema, &workload.constraints)
        .expect("workload constraints compile");

    let mut results = Vec::new();
    for &threads in &args.threads {
        // The semantic baseline.
        let detector =
            SemanticDetector::from_set(&set).with_parallelism(Parallelism::Fixed(threads));
        // Warm-up pass: interns the data into the detector's dictionary and
        // faults in the view allocation path.
        let report = detector
            .detect(&workload.data)
            .expect("detection over the generated workload succeeds");
        let start = Instant::now();
        for _ in 0..args.passes {
            let again = detector.detect(&workload.data).expect("detection succeeds");
            assert_eq!(again, report, "detection must be deterministic");
        }
        let ns_per_pass = (start.elapsed().as_nanos() / args.passes as u128) as u64;
        println!(
            "backend=semantic      threads={threads:<3} rows={} patterns={} \
             ns/pass={ns_per_pass} ({:.2} ms) sv={} mv={}",
            args.rows,
            args.patterns,
            ns_per_pass as f64 / 1e6,
            report.num_sv(),
            report.num_mv(),
        );
        results.push(("semantic", threads, ns_per_pass));

        // The plan backend, fused (shared scans) vs unfused (one scan per
        // constraint) — the same workload, so the gap is the fusion win.
        for (label, mut backend) in [
            (
                "plan-fused",
                PlanBackend::from_set(&set).expect("plan compiles"),
            ),
            (
                "plan-unfused",
                PlanBackend::from_set_unfused(&set).expect("plan compiles"),
            ),
        ] {
            backend.set_parallelism(Parallelism::Fixed(threads));
            let mut catalog = Catalog::new();
            catalog
                .create(workload.data.clone())
                .expect("workload table registers");
            let (plan_report, _) = backend
                .detect(&mut catalog)
                .expect("plan detection succeeds");
            assert_eq!(plan_report, report, "plan backend must agree byte-for-byte");
            let start = Instant::now();
            for _ in 0..args.passes {
                let (again, _) = backend
                    .detect(&mut catalog)
                    .expect("plan detection succeeds");
                assert_eq!(again, report, "detection must be deterministic");
            }
            let ns_per_pass = (start.elapsed().as_nanos() / args.passes as u128) as u64;
            println!(
                "backend={label:<13} threads={threads:<3} rows={} patterns={} \
                 ns/pass={ns_per_pass} ({:.2} ms) scans={}",
                args.rows,
                args.patterns,
                ns_per_pass as f64 / 1e6,
                backend.plan().num_scans(),
            );
            results.push((label, threads, ns_per_pass));
        }
    }

    let json = render_json(&args, &results);
    std::fs::write(&args.out, &json).expect("write benchmark output");
    println!("wrote {}", args.out);
}

/// Renders the result table as JSON by hand — the vendored serde shim has no
/// serializer, and the schema here is flat and fixed.
fn render_json(args: &Args, results: &[(&str, usize, u64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"detect\",\n");
    out.push_str("  \"workload\": \"cust_scaled_tableau\",\n");
    out.push_str(&format!("  \"rows\": {},\n", args.rows));
    out.push_str(&format!("  \"patterns\": {},\n", args.patterns));
    out.push_str(&format!("  \"passes\": {},\n", args.passes));
    out.push_str("  \"results\": [\n");
    for (i, (backend, threads, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"backend\": \"{backend}\", \"threads\": {threads}, \"ns_per_pass\": {ns} }}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
