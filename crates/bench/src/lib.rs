//! # ecfd-bench
//!
//! Experiment harness regenerating every figure of the paper's evaluation
//! (Section VI, Figs. 5–7) plus the ablation studies listed in `DESIGN.md`.
//!
//! Each `fig*` function returns a table of [`Row`]s — the same series the
//! paper plots — so that the `experiments` binary, the Criterion benches and
//! the integration tests all share one implementation. Experiments run at a
//! configurable [`Scale`]: the default [`Scale::Small`] keeps wall-clock time
//! reasonable on the bundled (unoptimised) SQL engine, while
//! [`Scale::Paper`] uses the paper's original parameter ranges (10k–100k
//! tuples). Shapes — who wins, by what factor, where the crossovers are — are
//! preserved across scales; absolute times are not comparable to the paper's
//! 2008 hardware in any case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod workloads;

pub use experiments::{
    ablation_sql_vs_native, fig5a, fig5b, fig5c, fig6a, fig6b, fig6c, fig7a, fig7b, Row, Scale,
};
pub use workloads::{prepared_catalog, PreparedWorkload};
