//! The per-figure experiment drivers (Section VI of the paper).

use crate::workloads::PreparedWorkload;
use ecfd_detect::{BatchDetector, IncrementalDetector, SemanticDetector};
use std::time::{Duration, Instant};

/// Experiment scale: parameter ranges for the sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small ranges (hundreds to a few thousand tuples) suitable for the
    /// bundled interpretive SQL engine; preserves the paper's shapes.
    Small,
    /// The paper's original ranges (10k–100k tuples, |Tp| up to 500). Slow on
    /// the bundled engine; use `--release` and patience.
    Paper,
}

impl Scale {
    /// Parses the `--full` flag used by the `experiments` binary.
    pub fn from_full_flag(full: bool) -> Self {
        if full {
            Scale::Paper
        } else {
            Scale::Small
        }
    }

    fn d_sizes(self) -> Vec<usize> {
        match self {
            Scale::Small => (1..=10).map(|i| i * 400).collect(),
            Scale::Paper => (1..=10).map(|i| i * 10_000).collect(),
        }
    }

    fn fixed_d(self) -> usize {
        match self {
            Scale::Small => 4_000,
            Scale::Paper => 100_000,
        }
    }

    fn tp_sizes(self) -> Vec<usize> {
        match self {
            Scale::Small => (1..=10).map(|i| i * 20).collect(),
            Scale::Paper => (1..=10).map(|i| i * 50).collect(),
        }
    }

    fn update_sizes(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![80, 160, 240, 320, 400, 480, 800, 1_600, 2_400],
            Scale::Paper => vec![
                2_000, 4_000, 6_000, 8_000, 10_000, 12_000, 20_000, 40_000, 60_000,
            ],
        }
    }

    fn fixed_delta(self) -> usize {
        match self {
            Scale::Small => 400,
            Scale::Paper => 10_000,
        }
    }
}

/// One row of an experiment's output table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Value of the swept parameter (|D|, noise%, |Tp| or |ΔD|).
    pub x: f64,
    /// Human-readable label of the swept parameter.
    pub x_label: &'static str,
    /// Measured series: (series name, value). Times are in milliseconds,
    /// counts are plain numbers.
    pub values: Vec<(&'static str, f64)>,
}

impl Row {
    /// Looks a series value up by name.
    pub fn value(&self, series: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(n, _)| *n == series)
            .map(|(_, v)| *v)
    }
}

/// Renders rows as an aligned text table (what the `experiments` binary
/// prints).
pub fn render_table(title: &str, rows: &[Row]) -> String {
    let mut out = format!("# {title}\n");
    if rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    let mut header = vec![rows[0].x_label.to_string()];
    header.extend(rows[0].values.iter().map(|(n, _)| n.to_string()));
    out.push_str(&header.join("\t"));
    out.push('\n');
    for row in rows {
        let mut cells = vec![format!("{}", row.x)];
        cells.extend(row.values.iter().map(|(_, v)| format!("{v:.2}")));
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1_000.0
}

fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Runs SQL BATCHDETECT on a fresh catalog of the workload, returning the
/// elapsed time and the resulting report.
fn run_batch(workload: &PreparedWorkload) -> (Duration, ecfd_detect::DetectionReport) {
    let detector = BatchDetector::new(&workload.schema, &workload.constraints)
        .expect("workload constraints encode");
    let mut catalog = workload.catalog();
    let (elapsed, report) = time(|| detector.detect(&mut catalog).expect("batch detection runs"));
    (elapsed, report)
}

/// Fig. 5(a): BATCHDETECT scalability in |D| (|Tp| = 10 constraints,
/// noise = 5%).
pub fn fig5a(scale: Scale) -> Vec<Row> {
    scale
        .d_sizes()
        .into_iter()
        .map(|size| {
            let workload = PreparedWorkload::new(size, 5.0, 42);
            let (elapsed, report) = run_batch(&workload);
            Row {
                x: size as f64,
                x_label: "|D|",
                values: vec![
                    ("batchdetect_ms", ms(elapsed)),
                    ("violations", report.num_violations() as f64),
                ],
            }
        })
        .collect()
}

/// Fig. 5(b): BATCHDETECT scalability in noise% (|D| fixed).
pub fn fig5b(scale: Scale) -> Vec<Row> {
    (0..=9)
        .map(|noise| {
            let workload = PreparedWorkload::new(scale.fixed_d(), noise as f64, 42);
            let (elapsed, report) = run_batch(&workload);
            Row {
                x: noise as f64,
                x_label: "noise%",
                values: vec![
                    ("batchdetect_ms", ms(elapsed)),
                    ("violations", report.num_violations() as f64),
                ],
            }
        })
        .collect()
}

/// Fig. 5(c): BATCHDETECT scalability in |Tp| (|D| fixed, noise = 5%).
pub fn fig5c(scale: Scale) -> Vec<Row> {
    scale
        .tp_sizes()
        .into_iter()
        .map(|tp| {
            let workload = PreparedWorkload::with_tableau_size(scale.fixed_d(), 5.0, 42, Some(tp));
            let (elapsed, _) = run_batch(&workload);
            Row {
                x: tp as f64,
                x_label: "|Tp|",
                values: vec![("batchdetect_ms", ms(elapsed))],
            }
        })
        .collect()
}

/// Shared driver for Figs. 6(a)–(c): fixed-size updates, incremental vs batch.
fn inc_vs_batch(
    workload: &PreparedWorkload,
    insertions: usize,
    deletions: usize,
) -> Vec<(&'static str, f64)> {
    // Incremental: initialise on D, then apply ΔD.
    let mut inc_catalog = workload.catalog();
    let mut inc =
        IncrementalDetector::initialize(&workload.schema, &workload.constraints, &mut inc_catalog)
            .expect("incremental initialisation");
    let delta = workload.delta(insertions, deletions, 7);
    let (inc_time, _) = time(|| {
        inc.apply(&mut inc_catalog, &delta)
            .expect("incremental apply")
    });
    let inc_report = inc.report(&inc_catalog).expect("incremental report");

    // Batch: apply the updates first, then detect from scratch (the paper:
    // "BATCHDETECT was applied to the data after database updates are
    // executed").
    let mut updated = workload.data.clone();
    delta.apply(&mut updated).expect("delta applies");
    let mut batch_catalog = ecfd_relation::Catalog::new();
    batch_catalog.create(updated).expect("fresh catalog");
    let detector = BatchDetector::new(&workload.schema, &workload.constraints)
        .expect("workload constraints encode");
    let (batch_time, batch_report) = time(|| {
        detector
            .detect(&mut batch_catalog)
            .expect("batch detection")
    });

    // Sanity: both approaches agree on the violation counts.
    debug_assert_eq!(inc_report.num_sv(), batch_report.num_sv());
    vec![
        ("incdetect_ms", ms(inc_time)),
        ("batchdetect_ms", ms(batch_time)),
        ("violations", batch_report.num_violations() as f64),
    ]
}

/// Fig. 6(a): INCDETECT vs BATCHDETECT while |D| grows (|ΔD⁺| = |ΔD⁻| fixed).
pub fn fig6a(scale: Scale) -> Vec<Row> {
    let delta = scale.fixed_delta();
    scale
        .d_sizes()
        .into_iter()
        .map(|size| {
            let workload = PreparedWorkload::new(size, 5.0, 42);
            Row {
                x: size as f64,
                x_label: "|D|",
                values: inc_vs_batch(&workload, delta, delta),
            }
        })
        .collect()
}

/// Fig. 6(b): INCDETECT vs BATCHDETECT while noise% grows.
pub fn fig6b(scale: Scale) -> Vec<Row> {
    let delta = scale.fixed_delta();
    (0..=9)
        .map(|noise| {
            let workload = PreparedWorkload::new(scale.fixed_d(), noise as f64, 42);
            Row {
                x: noise as f64,
                x_label: "noise%",
                values: inc_vs_batch(&workload, delta, delta),
            }
        })
        .collect()
}

/// Fig. 6(c): INCDETECT vs BATCHDETECT while |Tp| grows.
pub fn fig6c(scale: Scale) -> Vec<Row> {
    let delta = scale.fixed_delta();
    scale
        .tp_sizes()
        .into_iter()
        .map(|tp| {
            let workload = PreparedWorkload::with_tableau_size(scale.fixed_d(), 5.0, 42, Some(tp));
            Row {
                x: tp as f64,
                x_label: "|Tp|",
                values: inc_vs_batch(&workload, delta, delta),
            }
        })
        .collect()
}

/// Fig. 7(a): effect of the update size on INCDETECT vs BATCHDETECT
/// (|D| fixed; |ΔD⁺| = |ΔD⁻| so |D| stays constant). Also reports the native
/// (non-SQL) batch baseline, against which the paper's ~50 % crossover is
/// visible on our substrate — see EXPERIMENTS.md.
pub fn fig7a(scale: Scale) -> Vec<Row> {
    let workload = PreparedWorkload::new(scale.fixed_d(), 5.0, 42);
    scale
        .update_sizes()
        .into_iter()
        .map(|delta_size| {
            let mut values = inc_vs_batch(&workload, delta_size, delta_size);
            // Native batch baseline: recompute from scratch without SQL.
            let delta = workload.delta(delta_size, delta_size, 7);
            let mut updated = workload.data.clone();
            delta.apply(&mut updated).expect("delta applies");
            let semantic = SemanticDetector::new(&workload.schema, &workload.constraints)
                .expect("constraints bind");
            let (native_time, _) = time(|| semantic.detect(&updated).expect("native detection"));
            values.push(("native_batch_ms", ms(native_time)));
            Row {
                x: delta_size as f64,
                x_label: "|ΔD⁺|=|ΔD⁻|",
                values,
            }
        })
        .collect()
}

/// Fig. 7(b): growth of the number of single- (DSV) and multi-tuple (DMV)
/// violations before and after updates, as the update size grows.
pub fn fig7b(scale: Scale) -> Vec<Row> {
    let workload = PreparedWorkload::new(scale.fixed_d(), 5.0, 42);
    let semantic =
        SemanticDetector::new(&workload.schema, &workload.constraints).expect("constraints bind");
    let before = semantic.detect(&workload.data).expect("native detection");
    scale
        .update_sizes()
        .into_iter()
        .map(|delta_size| {
            let delta = workload.delta(delta_size, delta_size, 7);
            let mut updated = workload.data.clone();
            delta.apply(&mut updated).expect("delta applies");
            let after = semantic.detect(&updated).expect("native detection");
            Row {
                x: delta_size as f64,
                x_label: "|ΔD⁺|=|ΔD⁻|",
                values: vec![
                    ("DSV_before", before.num_sv() as f64),
                    ("DSV_after", after.num_sv() as f64),
                    ("DMV_before", before.num_mv() as f64),
                    ("DMV_after", after.num_mv() as f64),
                ],
            }
        })
        .collect()
}

/// Ablation: SQL-based BATCHDETECT vs the native semantic detector on the same
/// data (quantifies the cost of the SQL layer on the bundled engine).
pub fn ablation_sql_vs_native(scale: Scale) -> Vec<Row> {
    scale
        .d_sizes()
        .into_iter()
        .take(5)
        .map(|size| {
            let workload = PreparedWorkload::new(size, 5.0, 42);
            let (sql_time, sql_report) = run_batch(&workload);
            let semantic = SemanticDetector::new(&workload.schema, &workload.constraints)
                .expect("constraints bind");
            let (native_time, native_report) =
                time(|| semantic.detect(&workload.data).expect("native detection"));
            assert_eq!(sql_report.num_sv(), native_report.num_sv());
            assert_eq!(sql_report.num_mv(), native_report.num_mv());
            Row {
                x: size as f64,
                x_label: "|D|",
                values: vec![
                    ("sql_batch_ms", ms(sql_time)),
                    ("native_ms", ms(native_time)),
                ],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny scale used only by these tests to keep them fast.
    fn tiny_workload() -> PreparedWorkload {
        PreparedWorkload::new(200, 5.0, 1)
    }

    #[test]
    fn inc_vs_batch_agree_and_report_all_series() {
        let workload = tiny_workload();
        let values = inc_vs_batch(&workload, 20, 20);
        let names: Vec<&str> = values.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["incdetect_ms", "batchdetect_ms", "violations"]);
        assert!(values.iter().all(|(_, v)| *v >= 0.0));
    }

    #[test]
    fn rows_and_tables_render() {
        let rows = vec![Row {
            x: 10.0,
            x_label: "|D|",
            values: vec![("a_ms", 1.5), ("b_ms", 2.5)],
        }];
        assert_eq!(rows[0].value("a_ms"), Some(1.5));
        assert_eq!(rows[0].value("missing"), None);
        let table = render_table("demo", &rows);
        assert!(table.contains("# demo"));
        assert!(table.contains("|D|\ta_ms\tb_ms"));
        assert!(table.contains("10\t1.50\t2.50"));
        assert!(render_table("empty", &[]).contains("no rows"));
    }

    #[test]
    fn scales_produce_the_paper_parameter_ranges() {
        assert_eq!(Scale::Paper.d_sizes().first(), Some(&10_000));
        assert_eq!(Scale::Paper.d_sizes().last(), Some(&100_000));
        assert_eq!(Scale::Paper.fixed_d(), 100_000);
        assert_eq!(Scale::Paper.tp_sizes().last(), Some(&500));
        assert_eq!(Scale::Paper.update_sizes().last(), Some(&60_000));
        assert_eq!(Scale::from_full_flag(true), Scale::Paper);
        assert_eq!(Scale::from_full_flag(false), Scale::Small);
        // Small scale keeps the same number of sweep points.
        assert_eq!(Scale::Small.d_sizes().len(), Scale::Paper.d_sizes().len());
    }

    #[test]
    fn fig7b_counts_grow_with_update_size() {
        // Use the tiny workload directly rather than a full Scale sweep.
        let workload = tiny_workload();
        let semantic = SemanticDetector::new(&workload.schema, &workload.constraints).unwrap();
        let before = semantic.detect(&workload.data).unwrap();
        // Insert-only deltas: with deletions the comparison is not monotone
        // (a large ΔD⁻ may remove more noisy tuples than ΔD⁺ introduces).
        let small_delta = workload.delta(10, 0, 7);
        let big_delta = workload.delta(100, 0, 7);
        let mut small_updated = workload.data.clone();
        small_delta.apply(&mut small_updated).unwrap();
        let mut big_updated = workload.data.clone();
        big_delta.apply(&mut big_updated).unwrap();
        let small_after = semantic.detect(&small_updated).unwrap();
        let big_after = semantic.detect(&big_updated).unwrap();
        // Inserting more noisy tuples cannot decrease the number of
        // single-tuple violations relative to a smaller update.
        assert!(big_after.num_sv() >= small_after.num_sv());
        assert!(before.total_rows == workload.data.len());
    }
}
