//! Pluggable repair cost models.
//!
//! A repair is a set of tuple deletions and cell modifications; a
//! [`CostModel`] prices both so that the repair engine can prefer cheap fixes.
//! Three models ship with the crate:
//!
//! * [`ConstantCost`] — every deletion and every change costs the same
//!   (deletion-count minimisation is then exactly the *cardinality repair* of
//!   Livshits & Kimelfeld);
//! * [`PerAttributeCost`] — changes are priced per attribute, modelling
//!   columns with different trustworthiness;
//! * [`EditDistanceCost`] — a change costs the Levenshtein distance between
//!   the old and new rendering, modelling "small typo fixes are cheap".

use ecfd_relation::{Tuple, Value};
use std::collections::BTreeMap;

/// Prices repair operations. Implementations must be deterministic: the
/// repair planners call these methods repeatedly while comparing candidates.
pub trait CostModel {
    /// Cost of deleting `tuple` outright.
    fn deletion_cost(&self, tuple: &Tuple) -> f64;

    /// Cost of changing attribute `attr` from `old` to `new`.
    fn change_cost(&self, attr: &str, old: &Value, new: &Value) -> f64;
}

/// Uniform costs: every deletion costs `deletion`, every change costs
/// `change`. With the defaults (1.0 / 1.0) deletion repairs minimise the
/// number of deleted tuples — the cardinality-repair objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantCost {
    /// Cost of one tuple deletion.
    pub deletion: f64,
    /// Cost of one cell change.
    pub change: f64,
}

impl Default for ConstantCost {
    fn default() -> Self {
        ConstantCost {
            deletion: 1.0,
            change: 1.0,
        }
    }
}

impl CostModel for ConstantCost {
    fn deletion_cost(&self, _tuple: &Tuple) -> f64 {
        self.deletion
    }

    fn change_cost(&self, _attr: &str, _old: &Value, _new: &Value) -> f64 {
        self.change
    }
}

/// Per-attribute change pricing: attributes listed in `per_attr` use their own
/// price, everything else uses `default_change`. Deleting a tuple costs
/// `deletion`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerAttributeCost {
    /// Cost of one tuple deletion.
    pub deletion: f64,
    /// Change cost for attributes not listed in `per_attr`.
    pub default_change: f64,
    /// Attribute-specific change costs.
    pub per_attr: BTreeMap<String, f64>,
}

impl PerAttributeCost {
    /// A model with uniform deletion cost 1.0 and the given per-attribute
    /// change costs (default change cost 1.0).
    pub fn new(per_attr: impl IntoIterator<Item = (String, f64)>) -> Self {
        PerAttributeCost {
            deletion: 1.0,
            default_change: 1.0,
            per_attr: per_attr.into_iter().collect(),
        }
    }
}

impl CostModel for PerAttributeCost {
    fn deletion_cost(&self, _tuple: &Tuple) -> f64 {
        self.deletion
    }

    fn change_cost(&self, attr: &str, _old: &Value, _new: &Value) -> f64 {
        self.per_attr
            .get(attr)
            .copied()
            .unwrap_or(self.default_change)
    }
}

/// Edit-distance pricing: a change costs `per_edit` per Levenshtein edit
/// between the display renderings of the old and new value, with a floor of
/// `per_edit` for any actual change. Deleting a tuple costs `deletion`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EditDistanceCost {
    /// Cost of one tuple deletion.
    pub deletion: f64,
    /// Cost per character edit.
    pub per_edit: f64,
}

impl Default for EditDistanceCost {
    fn default() -> Self {
        EditDistanceCost {
            deletion: 4.0,
            per_edit: 1.0,
        }
    }
}

impl CostModel for EditDistanceCost {
    fn deletion_cost(&self, _tuple: &Tuple) -> f64 {
        self.deletion
    }

    fn change_cost(&self, _attr: &str, old: &Value, new: &Value) -> f64 {
        if old == new {
            return 0.0;
        }
        let distance = levenshtein(&render(old), &render(new)).max(1);
        self.per_edit * distance as f64
    }
}

fn render(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Classic two-row Levenshtein distance over Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitute = prev[j] + usize::from(ca != cb);
            curr[j + 1] = substitute.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_cost_is_uniform() {
        let model = ConstantCost::default();
        let t = Tuple::from_iter(["a", "b"]);
        assert_eq!(model.deletion_cost(&t), 1.0);
        assert_eq!(
            model.change_cost("CT", &Value::str("x"), &Value::str("y")),
            1.0
        );
    }

    #[test]
    fn per_attribute_cost_prices_listed_attributes() {
        let model = PerAttributeCost::new([("AC".to_string(), 0.5)]);
        assert_eq!(
            model.change_cost("AC", &Value::str("518"), &Value::str("212")),
            0.5
        );
        assert_eq!(
            model.change_cost("CT", &Value::str("a"), &Value::str("b")),
            1.0
        );
    }

    #[test]
    fn edit_distance_cost_scales_with_distance() {
        let model = EditDistanceCost::default();
        assert_eq!(
            model.change_cost("AC", &Value::str("518"), &Value::str("519")),
            1.0
        );
        assert_eq!(
            model.change_cost("AC", &Value::str("518"), &Value::str("212")),
            2.0,
            "5→2 and 8→2 substitute, the middle 1 survives"
        );
        assert_eq!(
            model.change_cost("AC", &Value::str("x"), &Value::str("x")),
            0.0
        );
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("Albany", "Albany"), 0);
    }
}
