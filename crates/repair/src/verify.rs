//! Verified apply: `repair → re-detect → zero violations` as a *checked*
//! invariant.
//!
//! [`repair_verified`] drives a plan/apply/re-detect loop over a catalog
//! table. Repairs are emitted as [`Delta`] batches and applied through the
//! [`IncrementalDetector`], whose maintained flags are the first verification
//! layer; an independent from-scratch pass of the [`SemanticDetector`] is the
//! second. Value modification can in principle surface new violations (a
//! repaired cell may join a new enforcement group), so the loop iterates —
//! and its final round is forced to pure deletion, which provably cannot
//! create violations, guaranteeing convergence.

use crate::engine::{RepairEngine, RepairMode};
use crate::plan::Repair;
use crate::{RepairError, Result};
use ecfd_detect::incremental::IncrementalStats;
use ecfd_detect::{DetectionReport, IncrementalDetector, SemanticDetector};
use ecfd_relation::{Catalog, Delta, Relation, Schema, Tuple};

/// One plan/apply round of the verified repair loop.
#[derive(Debug, Clone)]
pub struct RepairRound {
    /// Round number (0-based).
    pub round: usize,
    /// Violation report before this round's repair.
    pub before: DetectionReport,
    /// The plan that was applied.
    pub repair: Repair,
    /// The update batch the plan was applied as. To replay the whole repair
    /// on another copy of the data, apply each round's delta *in round
    /// order* — merging them into one batch would not be faithful, because
    /// [`Delta::apply`] processes all deletions before all insertions and a
    /// later round may delete a tuple an earlier round inserted.
    pub delta: Delta,
    /// What the incremental detector did while applying it.
    pub stats: IncrementalStats,
}

/// The outcome of [`repair_verified`]: every round (with its update batch)
/// and the (verified clean) final report.
#[derive(Debug, Clone)]
pub struct VerifiedRepair {
    /// The rounds that ran (empty when the data was already clean).
    pub rounds: Vec<RepairRound>,
    /// The final (clean) violation report.
    pub final_report: DetectionReport,
}

impl VerifiedRepair {
    /// The applied update batches, in application (round) order.
    pub fn deltas(&self) -> impl Iterator<Item = &Delta> + '_ {
        self.rounds.iter().map(|r| &r.delta)
    }

    /// Total planned deletions across all rounds.
    pub fn num_deletions(&self) -> usize {
        self.rounds.iter().map(|r| r.repair.num_deletions()).sum()
    }

    /// Total planned cell modifications across all rounds.
    pub fn num_modifications(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.repair.num_modifications())
            .sum()
    }

    /// Total plan cost across all rounds.
    pub fn total_cost(&self) -> f64 {
        self.rounds.iter().map(|r| r.repair.total_cost()).sum()
    }

    /// True when the data was already clean and nothing was changed.
    pub fn is_noop(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// Repairs the catalog table named by the engine's schema until the detector
/// reports zero violations, verifying the result both incrementally and from
/// scratch. Errors with [`RepairError::NotClean`] if the loop somehow fails
/// to converge (which the forced delete-only final round prevents).
pub fn repair_verified(engine: &RepairEngine, catalog: &mut Catalog) -> Result<VerifiedRepair> {
    repair_verified_seeded(engine, catalog, None)
}

/// [`repair_verified`] with an optional pre-computed
/// [`EvidenceReport`](ecfd_detect::EvidenceReport) for the data as it
/// currently stands, sparing the first explain pass. The evidence must
/// describe the table's *current* contents (stale evidence would plan
/// repairs against rows that no longer exist).
pub fn repair_verified_seeded(
    engine: &RepairEngine,
    catalog: &mut Catalog,
    seed: Option<ecfd_detect::EvidenceReport>,
) -> Result<VerifiedRepair> {
    // Reuse the engine's compiled detector; the seeding pass that
    // initialises the incremental maintenance state still runs.
    let mut inc =
        IncrementalDetector::initialize_from(engine.schema(), engine.detector().clone(), catalog)?;
    repair_verified_with(engine, catalog, &mut inc, seed)
}

/// The verified repair loop against an *existing* incremental detector whose
/// flags and auxiliary state are already correct for the table's current
/// contents — the entry point of the session layer, which hands over its warm
/// maintenance state so no seeding re-scan runs at all. The detector is
/// maintained through every applied round and remains valid afterwards.
pub fn repair_verified_with(
    engine: &RepairEngine,
    catalog: &mut Catalog,
    inc: &mut IncrementalDetector,
    seed: Option<ecfd_detect::EvidenceReport>,
) -> Result<VerifiedRepair> {
    let table = engine.schema().name().to_string();
    let max_rounds = engine.options().max_rounds.max(1);
    let mut seed = seed;

    let mut rounds = Vec::new();
    for round in 0..max_rounds {
        let base = base_relation(catalog.get(&table)?, engine.schema())?;
        let evidence = match seed.take() {
            Some(seeded) => seeded,
            None => engine.explain(&base)?,
        };
        if evidence.is_clean() {
            break;
        }
        // The final round falls back to pure deletion: deleting tuples can
        // never create an SV flag or a new FD conflict, so it always lands on
        // a clean instance.
        let mode = if round + 1 == max_rounds {
            RepairMode::DeleteOnly
        } else {
            engine.options().mode
        };
        let repair = engine.plan_with_mode(&base, &evidence, mode)?;
        let delta = repair.to_delta(&base)?;
        let stats = inc.apply(catalog, &delta)?;
        rounds.push(RepairRound {
            round,
            before: evidence.detection_report(),
            repair,
            delta,
            stats,
        });
    }

    // Verification layer 1: the incrementally maintained flags.
    let final_report = inc.report(catalog)?;
    // Verification layer 2: an independent from-scratch semantic pass.
    let base = base_relation(catalog.get(&table)?, engine.schema())?;
    let scratch = SemanticDetector::new(engine.schema(), engine.ecfds())?.detect(&base)?;
    if !final_report.is_clean() || !scratch.is_clean() {
        return Err(RepairError::NotClean {
            remaining: scratch.num_violations().max(final_report.num_violations()),
        });
    }
    Ok(VerifiedRepair {
        rounds,
        final_report,
    })
}

/// Projects a stored table (which carries the detector-managed `SV` / `MV`
/// flag columns) back onto the base schema.
pub fn base_relation(stored: &Relation, schema: &Schema) -> Result<Relation> {
    let arity = schema.arity();
    Relation::with_tuples(
        schema.clone(),
        stored
            .tuples()
            .map(|t| Tuple::new(t.values()[..arity].to_vec())),
    )
    .map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RepairMode, RepairOptions};
    use ecfd_core::ECfdBuilder;
    use ecfd_relation::{DataType, Value};

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build()
    }

    fn constraints() -> Vec<ecfd_core::ECfd> {
        vec![
            // Albany's area code must be 518 and CT → AC.
            ECfdBuilder::new("cust")
                .lhs(["CT"])
                .fd_rhs(["AC"])
                .pattern(|p| p.in_set("CT", ["Albany"]).in_set("AC", ["518"]))
                .build()
                .unwrap(),
            ECfdBuilder::new("cust")
                .lhs(["CT"])
                .fd_rhs(["AC"])
                .pattern(|p| p)
                .build()
                .unwrap(),
        ]
    }

    fn dirty_catalog() -> Catalog {
        let data = Relation::with_tuples(
            schema(),
            [
                Tuple::from_iter(["Albany", "718"]), // SV (+ FD conflict below)
                Tuple::from_iter(["Albany", "518"]),
                Tuple::from_iter(["NYC", "212"]),
                Tuple::from_iter(["NYC", "646"]), // FD conflict with the row above
            ],
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.create(data).unwrap();
        catalog
    }

    #[test]
    fn verified_repair_converges_and_is_clean() {
        let mut catalog = dirty_catalog();
        let engine = RepairEngine::new(&schema(), &constraints()).unwrap();
        let outcome = repair_verified(&engine, &mut catalog).unwrap();
        assert!(!outcome.is_noop());
        assert!(outcome.final_report.is_clean());
        assert!(outcome.num_deletions() + outcome.num_modifications() > 0);
        // The surviving table re-verifies clean from scratch as well.
        let base = base_relation(catalog.get("cust").unwrap(), &schema()).unwrap();
        assert!(engine.explain(&base).unwrap().is_clean());
    }

    #[test]
    fn delete_only_repair_needs_a_single_round() {
        let mut catalog = dirty_catalog();
        let engine = RepairEngine::new(&schema(), &constraints())
            .unwrap()
            .with_options(RepairOptions {
                mode: RepairMode::DeleteOnly,
                ..RepairOptions::default()
            });
        let outcome = repair_verified(&engine, &mut catalog).unwrap();
        assert_eq!(outcome.rounds.len(), 1);
        assert_eq!(outcome.num_modifications(), 0);
        // Trivial bound: never delete more than the flagged rows (3 here:
        // both Albany rows conflict? no — Albany 718 is SV and conflicts with
        // Albany 518; NYC 212 / 646 conflict. Flagged = all 4).
        assert!(outcome.num_deletions() <= outcome.rounds[0].before.num_violations());
        assert!(outcome.final_report.is_clean());
    }

    #[test]
    fn clean_data_is_a_noop() {
        let mut catalog = Catalog::new();
        catalog
            .create(Relation::with_tuples(schema(), [Tuple::from_iter(["Albany", "518"])]).unwrap())
            .unwrap();
        let engine = RepairEngine::new(&schema(), &constraints()).unwrap();
        let outcome = repair_verified(&engine, &mut catalog).unwrap();
        assert!(outcome.is_noop());
        assert_eq!(outcome.deltas().count(), 0);
        assert_eq!(outcome.total_cost(), 0.0);
    }

    #[test]
    fn replaying_round_deltas_reproduces_the_clean_state() {
        let data = Relation::with_tuples(
            schema(),
            [
                Tuple::from_iter(["Albany", "718"]),
                Tuple::from_iter(["Albany", "518"]),
                Tuple::from_iter(["NYC", "212"]),
                Tuple::from_iter(["NYC", "646"]),
            ],
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.create(data.clone()).unwrap();
        let engine = RepairEngine::new(&schema(), &constraints()).unwrap();
        let outcome = repair_verified(&engine, &mut catalog).unwrap();

        // Applying each round's delta in order on a fresh copy must land on
        // exactly the repaired table contents.
        let mut replay = data;
        for delta in outcome.deltas() {
            delta.apply(&mut replay).unwrap();
        }
        let repaired = base_relation(catalog.get("cust").unwrap(), &schema()).unwrap();
        let mut replayed: Vec<&Tuple> = replay.tuples().collect();
        let mut expected: Vec<&Tuple> = repaired.tuples().collect();
        replayed.sort();
        expected.sort();
        assert_eq!(replayed, expected);
        assert!(engine.explain(&replay).unwrap().is_clean());
    }

    #[test]
    fn base_relation_strips_the_flag_columns() {
        let mut catalog = dirty_catalog();
        let _inc =
            IncrementalDetector::initialize(&schema(), &constraints(), &mut catalog).unwrap();
        let stored = catalog.get("cust").unwrap();
        assert_eq!(stored.schema().arity(), 4, "CT, AC, SV, MV");
        let base = base_relation(stored, &schema()).unwrap();
        assert_eq!(base.schema(), &schema());
        assert_eq!(base.len(), 4);
        assert!(base
            .tuples()
            .all(|t| t.values().iter().all(|v| matches!(v, Value::Str(_)))));
    }
}
