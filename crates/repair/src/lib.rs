//! # ecfd-repair
//!
//! Violation explanation and data repair for eCFDs — the layer *above* the
//! paper's detectors. Detection (Section V of the paper) ends at flagging
//! rows with `SV` / `MV`; this crate turns those flags into action:
//!
//! 1. **Attribution** — the detect layer's
//!    [`EvidenceReport`](ecfd_detect::EvidenceReport) names, for every
//!    flagged row, the violated constraint and pattern tuple, and for
//!    multi-tuple violations the offending enforcement group.
//! 2. **Planning** — [`RepairEngine`] builds a [`ConflictGraph`] from the
//!    evidence and computes (a) *cardinality repairs* by tuple deletion — a
//!    greedy weighted vertex cover, with an exact mode that reduces small
//!    instances to [`ecfd_logic::MaxGSatInstance`] as an oracle (the frame of
//!    Livshits & Kimelfeld's cardinality-repair analysis) — and (b) *value
//!    modification* repairs for single-tuple violations, choosing the
//!    cheapest consequent value under a pluggable [`CostModel`].
//! 3. **Verified apply** — [`repair_verified`] emits the plan as
//!    [`ecfd_relation::Delta`] batches, applies them through the incremental
//!    detector and re-verifies from scratch, making
//!    `repair → re-detect → zero violations` a checked invariant.
//!
//! ## Example
//!
//! ```
//! use ecfd_core::parse_ecfd;
//! use ecfd_relation::{Catalog, DataType, Relation, Schema, Tuple};
//! use ecfd_repair::{repair_verified, RepairEngine};
//!
//! let schema = Schema::builder("cust")
//!     .attr("CT", DataType::Str)
//!     .attr("AC", DataType::Str)
//!     .build();
//! let data = Relation::with_tuples(schema.clone(), [
//!     Tuple::from_iter(["Albany", "718"]), // wrong area code for Albany
//!     Tuple::from_iter(["NYC", "212"]),
//! ]).unwrap();
//! let phi = parse_ecfd("cust: [CT] -> [AC] | [], { {Albany} || {518} }").unwrap();
//!
//! let engine = RepairEngine::new(&schema, &[phi]).unwrap();
//!
//! // Explain: one single-tuple violation, attributed to φ's pattern tuple 0.
//! let evidence = engine.explain(&data).unwrap();
//! assert_eq!(evidence.num_sv_records(), 1);
//!
//! // Repair and verify: the dirty area code is rewritten to 518 and the
//! // re-detection pass confirms the instance is clean.
//! let mut catalog = Catalog::new();
//! catalog.create(data).unwrap();
//! let outcome = repair_verified(&engine, &mut catalog).unwrap();
//! assert!(outcome.final_report.is_clean());
//! assert_eq!(outcome.num_modifications(), 1);
//! assert_eq!(outcome.num_deletions(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod cost;
pub mod engine;
pub mod plan;
pub mod verify;

pub use conflict::{ConflictGraph, ConflictNode, GroupConflict};
pub use cost::{ConstantCost, CostModel, EditDistanceCost, PerAttributeCost};
pub use engine::{DeletionSolver, RepairEngine, RepairMode, RepairOptions};
pub use plan::{DeletionRepair, Repair, ValueRepair};
pub use verify::{
    base_relation, repair_verified, repair_verified_seeded, repair_verified_with, RepairRound,
    VerifiedRepair,
};

use ecfd_detect::evidence::ConstraintRef;
use ecfd_relation::RowId;
use std::fmt;

/// Result alias for repair operations.
pub type Result<T> = std::result::Result<T, RepairError>;

/// Errors produced by the repair layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairError {
    /// Error from the detection layer.
    Detect(ecfd_detect::DetectError),
    /// Error from the constraint library.
    Core(ecfd_core::CoreError),
    /// Error from the storage layer.
    Relation(ecfd_relation::RelationError),
    /// Evidence referenced a row the relation does not contain.
    UnknownRow(RowId),
    /// Evidence referenced a constraint / pattern the engine does not know.
    UnknownConstraint(ConstraintRef),
    /// The exact deletion solver was requested on a conflict graph larger
    /// than its limit.
    InstanceTooLarge {
        /// Nodes in the conflict graph.
        nodes: usize,
        /// The configured limit.
        max_nodes: usize,
    },
    /// The verified-apply loop finished with violations remaining (should be
    /// unreachable thanks to the forced delete-only final round).
    NotClean {
        /// Number of still-violating rows.
        remaining: usize,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Detect(e) => write!(f, "detection error: {e}"),
            RepairError::Core(e) => write!(f, "constraint error: {e}"),
            RepairError::Relation(e) => write!(f, "storage error: {e}"),
            RepairError::UnknownRow(row) => write!(f, "evidence references unknown row {row}"),
            RepairError::UnknownConstraint(c) => write!(
                f,
                "evidence references unknown constraint {} pattern {}",
                c.constraint, c.pattern
            ),
            RepairError::InstanceTooLarge { nodes, max_nodes } => write!(
                f,
                "exact repair limited to {max_nodes} conflict nodes, instance has {nodes}"
            ),
            RepairError::NotClean { remaining } => write!(
                f,
                "repair did not converge: {remaining} violating rows remain"
            ),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<ecfd_detect::DetectError> for RepairError {
    fn from(e: ecfd_detect::DetectError) -> Self {
        RepairError::Detect(e)
    }
}

impl From<ecfd_core::CoreError> for RepairError {
    fn from(e: ecfd_core::CoreError) -> Self {
        RepairError::Core(e)
    }
}

impl From<ecfd_relation::RelationError> for RepairError {
    fn from(e: ecfd_relation::RelationError) -> Self {
        RepairError::Relation(e)
    }
}
