//! Repair plans: what to delete, what to modify, and how to express both as
//! an [`ecfd_relation::Delta`] update batch.

use crate::{RepairError, Result};
use ecfd_detect::evidence::ConstraintRef;
use ecfd_relation::{Delta, Relation, RowId, Tuple, Value};
use std::collections::BTreeMap;

/// One planned tuple deletion.
#[derive(Debug, Clone, PartialEq)]
pub struct DeletionRepair {
    /// The row to delete (in the relation the plan was computed from).
    pub row: RowId,
    /// The row's tuple — deletions are emitted by value.
    pub tuple: Tuple,
    /// Deletion cost under the engine's cost model.
    pub cost: f64,
}

/// One planned cell modification.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueRepair {
    /// The row to modify.
    pub row: RowId,
    /// Name of the modified attribute.
    pub attr: String,
    /// The current (dirty) value.
    pub old: Value,
    /// The repaired value, drawn from the violated pattern's consequent set.
    pub new: Value,
    /// Change cost under the engine's cost model.
    pub cost: f64,
    /// The constraint / pattern tuple whose consequent supplied `new`.
    pub source: ConstraintRef,
}

/// A complete repair plan for one relation instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Repair {
    /// Tuples to delete.
    pub deletions: Vec<DeletionRepair>,
    /// Cells to modify (never on a row that is also deleted).
    pub modifications: Vec<ValueRepair>,
}

impl Repair {
    /// Number of planned deletions.
    pub fn num_deletions(&self) -> usize {
        self.deletions.len()
    }

    /// Number of planned cell modifications.
    pub fn num_modifications(&self) -> usize {
        self.modifications.len()
    }

    /// Rows modified by the plan (each row may have several cell changes).
    pub fn modified_rows(&self) -> BTreeMap<RowId, Vec<&ValueRepair>> {
        let mut out: BTreeMap<RowId, Vec<&ValueRepair>> = BTreeMap::new();
        for m in &self.modifications {
            out.entry(m.row).or_default().push(m);
        }
        out
    }

    /// True when the plan changes nothing.
    pub fn is_empty(&self) -> bool {
        self.deletions.is_empty() && self.modifications.is_empty()
    }

    /// Total cost of the plan under the cost model it was planned with.
    pub fn total_cost(&self) -> f64 {
        self.deletions.iter().map(|d| d.cost).sum::<f64>()
            + self.modifications.iter().map(|m| m.cost).sum::<f64>()
    }

    /// Expresses the plan as a [`Delta`] against `relation` (the instance the
    /// plan was computed from): deletions carry the doomed tuples by value,
    /// and each modified row becomes a delete-old / insert-new replacement.
    pub fn to_delta(&self, relation: &Relation) -> Result<Delta> {
        let mut delta = Delta::new();
        for d in &self.deletions {
            delta.deletions.push(d.tuple.clone());
        }
        for (row, changes) in self.modified_rows() {
            let old = relation
                .get(row)
                .ok_or(RepairError::UnknownRow(row))?
                .clone();
            let mut new = old.clone();
            for change in changes {
                let id = relation.schema().require_attr(&change.attr)?;
                new.set(id, change.new.clone());
            }
            delta.push_replacement(old, new);
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::{DataType, Schema};

    fn relation() -> Relation {
        let schema = Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        Relation::with_tuples(
            schema,
            [
                Tuple::from_iter(["Albany", "718"]),
                Tuple::from_iter(["NYC", "212"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn to_delta_emits_deletions_and_replacements() {
        let rel = relation();
        let rows = rel.row_ids();
        let plan = Repair {
            deletions: vec![DeletionRepair {
                row: rows[1],
                tuple: rel.get(rows[1]).unwrap().clone(),
                cost: 1.0,
            }],
            modifications: vec![ValueRepair {
                row: rows[0],
                attr: "AC".into(),
                old: Value::str("718"),
                new: Value::str("518"),
                cost: 1.0,
                source: ConstraintRef::new(0, 0),
            }],
        };
        assert_eq!(plan.num_deletions(), 1);
        assert_eq!(plan.num_modifications(), 1);
        assert_eq!(plan.total_cost(), 2.0);

        let delta = plan.to_delta(&rel).unwrap();
        assert_eq!(delta.deletions.len(), 2, "one deletion + the replaced old");
        assert_eq!(delta.insertions, vec![Tuple::from_iter(["Albany", "518"])]);

        let mut applied = rel.clone();
        delta.apply(&mut applied).unwrap();
        assert_eq!(applied.len(), 1);
        assert_eq!(
            applied.tuples().next().unwrap(),
            &Tuple::from_iter(["Albany", "518"])
        );
    }

    #[test]
    fn to_delta_rejects_unknown_rows() {
        let rel = relation();
        let plan = Repair {
            deletions: vec![],
            modifications: vec![ValueRepair {
                row: RowId(99),
                attr: "AC".into(),
                old: Value::str("718"),
                new: Value::str("518"),
                cost: 1.0,
                source: ConstraintRef::new(0, 0),
            }],
        };
        assert!(matches!(
            plan.to_delta(&rel),
            Err(RepairError::UnknownRow(RowId(99)))
        ));
    }

    #[test]
    fn empty_plan_is_an_empty_delta() {
        let plan = Repair::default();
        assert!(plan.is_empty());
        assert!(plan.to_delta(&relation()).unwrap().is_empty());
    }
}
