//! The repair engine: turns detection evidence into a [`Repair`] plan.
//!
//! Planning runs in two stages. First, single-tuple violations are — when the
//! mode allows — fixed by *value modification*: the offending right-hand-side
//! cells are rewritten to the cheapest admissible value from the pattern's
//! consequent set (`Y` / `Yp` cells with positive sets; complement-set cells
//! admit no canonical witness and fall back to deletion). Second, the
//! remaining violations — unrepairable SV rows plus the multi-tuple FD
//! conflicts — are resolved by *tuple deletion* over the
//! [`ConflictGraph`]: a greedy weighted vertex cover,
//! or an exact MAXGSAT-backed cardinality repair for small instances.

use crate::conflict::ConflictGraph;
use crate::cost::{ConstantCost, CostModel};
use crate::plan::{DeletionRepair, Repair, ValueRepair};
use crate::{RepairError, Result};
use ecfd_core::matching::BoundECfd;
use ecfd_core::{ECfd, PatternValue};
use ecfd_detect::evidence::{ConstraintRef, EvidenceReport};
use ecfd_detect::SemanticDetector;
use ecfd_relation::{AttrId, Relation, RowId, Schema, Tuple};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// How deletion repairs are computed over the conflict graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeletionSolver {
    /// Greedy weighted vertex cover (any instance size, 2-approximate).
    Greedy,
    /// Exact MAXGSAT-backed *cardinality* repair — it minimises the number
    /// of deletions and ignores cost-model weights. Errors when the conflict
    /// graph has more than `max_nodes` nodes.
    Exact {
        /// Largest instance the exact oracle accepts (≤ 24).
        max_nodes: usize,
    },
    /// Exact when the instance has at most `max_nodes` nodes, greedy
    /// otherwise. When both covers have the same cardinality the cost model
    /// arbitrates, so weights are never silently discarded.
    Auto {
        /// Threshold between exact and greedy.
        max_nodes: usize,
    },
}

impl Default for DeletionSolver {
    fn default() -> Self {
        DeletionSolver::Auto { max_nodes: 12 }
    }
}

/// What kinds of repair operations the planner may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairMode {
    /// Cardinality repair by tuple deletion only.
    DeleteOnly,
    /// Fix single-tuple violations by value modification where possible, then
    /// delete what remains.
    #[default]
    ModifyThenDelete,
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairOptions {
    /// Allowed repair operations.
    pub mode: RepairMode,
    /// Deletion solver.
    pub solver: DeletionSolver,
    /// Maximum plan/apply/re-detect rounds of the verified-apply loop (the
    /// final round is always forced to [`RepairMode::DeleteOnly`], which
    /// guarantees convergence).
    pub max_rounds: usize,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            mode: RepairMode::default(),
            solver: DeletionSolver::default(),
            max_rounds: 4,
        }
    }
}

/// The repair engine for one schema and constraint set.
pub struct RepairEngine {
    schema: Schema,
    ecfds: Vec<ECfd>,
    detector: SemanticDetector,
    cost: Arc<dyn CostModel + Send + Sync>,
    options: RepairOptions,
}

impl RepairEngine {
    /// Creates an engine with the default cost model ([`ConstantCost`]) and
    /// default [`RepairOptions`].
    pub fn new(schema: &Schema, ecfds: &[ECfd]) -> Result<Self> {
        Ok(RepairEngine {
            schema: schema.clone(),
            ecfds: ecfds.to_vec(),
            detector: SemanticDetector::new(schema, ecfds)?,
            cost: Arc::new(ConstantCost::default()),
            options: RepairOptions::default(),
        })
    }

    /// Creates an engine from an already-compiled
    /// [`ecfd_core::ConstraintSet`], reusing its validation and split instead
    /// of re-compiling the constraints. Evidence consumed by this engine must
    /// index the set's *compiled* constraints (which is exactly what the
    /// detector backends built from the same set produce).
    pub fn from_set(set: &ecfd_core::ConstraintSet) -> Self {
        RepairEngine {
            schema: set.schema().clone(),
            ecfds: set.ecfds().to_vec(),
            detector: SemanticDetector::from_set(set),
            cost: Arc::new(ConstantCost::default()),
            options: RepairOptions::default(),
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(self, cost: impl CostModel + Send + Sync + 'static) -> Self {
        self.with_cost_model_arc(Arc::new(cost))
    }

    /// Replaces the cost model with an already-shared one (the session layer
    /// holds the model once and shares it across the engines it builds).
    pub fn with_cost_model_arc(mut self, cost: Arc<dyn CostModel + Send + Sync>) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the planner options.
    pub fn with_options(mut self, options: RepairOptions) -> Self {
        self.options = options;
        self
    }

    /// Updates the planner options in place.
    pub fn set_options(&mut self, options: RepairOptions) {
        self.options = options;
    }

    /// The constrained schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The constraint set being repaired against.
    pub fn ecfds(&self) -> &[ECfd] {
        &self.ecfds
    }

    /// The planner options.
    pub fn options(&self) -> &RepairOptions {
        &self.options
    }

    /// The cost model.
    pub fn cost_model(&self) -> &dyn CostModel {
        &*self.cost
    }

    /// The engine's (compiled) semantic detector — shared with the verified
    /// repair loop so it never re-compiles the constraints.
    pub fn detector(&self) -> &SemanticDetector {
        &self.detector
    }

    /// Explains the violations of `relation`: runs the semantic detector and
    /// returns the per-constraint evidence.
    pub fn explain(&self, relation: &Relation) -> Result<EvidenceReport> {
        let (_, evidence) = self.detector.detect_with_evidence(relation)?;
        Ok(evidence)
    }

    /// Builds the conflict graph for `evidence` (all SV rows as must-delete —
    /// the deletion-only view).
    pub fn conflict_graph(
        &self,
        relation: &Relation,
        evidence: &EvidenceReport,
    ) -> Result<ConflictGraph> {
        let must_delete: BTreeSet<RowId> = evidence.sv.iter().map(|e| e.row).collect();
        ConflictGraph::build(
            &self.detector,
            relation,
            evidence,
            &must_delete,
            &HashMap::new(),
            &*self.cost,
        )
    }

    /// Plans a repair for `evidence` using the configured mode.
    pub fn plan(&self, relation: &Relation, evidence: &EvidenceReport) -> Result<Repair> {
        self.plan_with_mode(relation, evidence, self.options.mode)
    }

    /// Plans a repair with an explicit mode (overriding the configured one).
    pub fn plan_with_mode(
        &self,
        relation: &Relation,
        evidence: &EvidenceReport,
        mode: RepairMode,
    ) -> Result<Repair> {
        let sv_rows: BTreeSet<RowId> = evidence.sv.iter().map(|e| e.row).collect();
        let mut modifications: Vec<ValueRepair> = Vec::new();
        let mut patched: HashMap<RowId, Tuple> = HashMap::new();
        let mut must_delete: BTreeSet<RowId> = BTreeSet::new();

        match mode {
            RepairMode::DeleteOnly => must_delete = sv_rows,
            RepairMode::ModifyThenDelete => {
                let bounds = self.detector.bind(relation.schema())?;
                for &row in &sv_rows {
                    let tuple = relation.get(row).ok_or(RepairError::UnknownRow(row))?;
                    match value_fix(&bounds, self.detector.provenance(), tuple, &*self.cost) {
                        Some((fixed, changes)) => {
                            for (attr_id, source) in changes {
                                let attr = relation
                                    .schema()
                                    .attribute(attr_id)
                                    .expect("change targets a bound attribute")
                                    .name
                                    .clone();
                                let old = tuple.value(attr_id).clone();
                                let new = fixed.value(attr_id).clone();
                                let cost = self.cost.change_cost(&attr, &old, &new);
                                modifications.push(ValueRepair {
                                    row,
                                    attr,
                                    old,
                                    new,
                                    cost,
                                    source,
                                });
                            }
                            patched.insert(row, fixed);
                        }
                        None => {
                            must_delete.insert(row);
                        }
                    }
                }
            }
        }

        let graph = ConflictGraph::build(
            &self.detector,
            relation,
            evidence,
            &must_delete,
            &patched,
            &*self.cost,
        )?;
        let deleted = match self.options.solver {
            DeletionSolver::Greedy => graph.greedy_deletions(),
            DeletionSolver::Exact { max_nodes } => {
                graph
                    .exact_deletions(max_nodes)
                    .ok_or(RepairError::InstanceTooLarge {
                        nodes: graph.num_nodes(),
                        max_nodes,
                    })?
            }
            DeletionSolver::Auto { max_nodes } => match graph.exact_deletions(max_nodes) {
                None => graph.greedy_deletions(),
                Some(exact) => {
                    // The exact oracle minimises cardinality and knows
                    // nothing of weights; the greedy cover is weight-aware
                    // but may over-delete. Keep the oracle's cardinality
                    // win, and on ties let the cost model arbitrate.
                    let greedy = graph.greedy_deletions();
                    let weight_of = |cover: &[usize]| -> f64 {
                        cover.iter().map(|&i| graph.nodes()[i].weight).sum()
                    };
                    if exact.len() < greedy.len()
                        || (exact.len() == greedy.len() && weight_of(&exact) <= weight_of(&greedy))
                    {
                        exact
                    } else {
                        greedy
                    }
                }
            },
        };
        let deletions: Vec<DeletionRepair> = deleted
            .iter()
            .map(|&i| {
                let node = &graph.nodes()[i];
                DeletionRepair {
                    row: node.row,
                    tuple: node.tuple.clone(),
                    cost: node.weight,
                }
            })
            .collect();
        // A value-modified row that the cover deletes anyway is just deleted.
        let deleted_rows: BTreeSet<RowId> = deletions.iter().map(|d| d.row).collect();
        modifications.retain(|m| !deleted_rows.contains(&m.row));
        Ok(Repair {
            deletions,
            modifications,
        })
    }
}

impl std::fmt::Debug for RepairEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairEngine")
            .field("schema", &self.schema.name())
            .field("ecfds", &self.ecfds.len())
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

/// Tries to fix every single-tuple violation of `tuple` by rewriting failing
/// right-hand-side cells to the cheapest value of their positive pattern set.
/// Returns the fixed tuple plus which attributes changed (and for which
/// constraint), or `None` when no admissible modification exists — a failing
/// complement-set or otherwise unfixable cell, or a fix cycle between
/// constraints.
fn value_fix(
    bounds: &[BoundECfd<'_>],
    provenance: &[(usize, usize)],
    tuple: &Tuple,
    cost: &dyn CostModel,
) -> Option<(Tuple, BTreeMap<AttrId, ConstraintRef>)> {
    let mut work = tuple.clone();
    let mut changed: BTreeMap<AttrId, ConstraintRef> = BTreeMap::new();
    // Fixing one constraint can surface another; each pass handles the first
    // still-failing constraint, and `bounds.len() + 1` passes suffice to
    // detect a cycle.
    for _ in 0..=bounds.len() {
        let failing = bounds
            .iter()
            .position(|b| b.lhs_matches(&work, 0) && !b.rhs_matches(&work, 0));
        let Some(ci) = failing else {
            break;
        };
        let bound = &bounds[ci];
        let ecfd = bound.ecfd();
        let tp = &ecfd.tableau()[0];
        let source = ConstraintRef::new(provenance[ci].0, provenance[ci].1);
        for ((&attr_id, cell), attr_name) in
            bound.rhs_ids().iter().zip(&tp.rhs).zip(ecfd.rhs_attrs())
        {
            let current = work.value(attr_id).clone();
            if cell.matches(&current) {
                continue;
            }
            // Only a positive set names admissible replacement values; a
            // failing wildcard is impossible and a failing complement set has
            // no canonical witness.
            let PatternValue::In(set) = cell else {
                return None;
            };
            let new = set
                .iter()
                .min_by(|a, b| {
                    cost.change_cost(attr_name, &current, a)
                        .partial_cmp(&cost.change_cost(attr_name, &current, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.cmp(b))
                })?
                .clone();
            work.set(attr_id, new);
            changed.insert(attr_id, source);
        }
    }
    // The fixes must have converged — and must not themselves violate any
    // constraint the tuple now matches.
    if bounds
        .iter()
        .any(|b| b.lhs_matches(&work, 0) && !b.rhs_matches(&work, 0))
    {
        return None;
    }
    // Report only attributes whose final value actually differs.
    changed.retain(|attr_id, _| work.value(*attr_id) != tuple.value(*attr_id));
    Some((work, changed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EditDistanceCost;
    use ecfd_core::ECfdBuilder;
    use ecfd_relation::{DataType, Value};

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build()
    }

    fn phi_albany() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.in_set("CT", ["Albany"]).in_set("AC", ["518", "519"]))
            .build()
            .unwrap()
    }

    fn phi_not_999() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.constant("CT", "NYC").not_in("AC", ["999"]))
            .build()
            .unwrap()
    }

    #[test]
    fn sv_rows_with_positive_sets_are_value_repaired() {
        let data = Relation::with_tuples(
            schema(),
            [
                Tuple::from_iter(["Albany", "718"]),
                Tuple::from_iter(["NYC", "212"]),
            ],
        )
        .unwrap();
        let engine = RepairEngine::new(&schema(), &[phi_albany()])
            .unwrap()
            .with_cost_model(EditDistanceCost::default());
        let evidence = engine.explain(&data).unwrap();
        assert_eq!(evidence.num_sv_records(), 1);
        let plan = engine.plan(&data, &evidence).unwrap();
        assert!(plan.deletions.is_empty());
        assert_eq!(plan.num_modifications(), 1);
        let m = &plan.modifications[0];
        assert_eq!(m.attr, "AC");
        // 718 → 519 costs 2 edits; 718 → 518 costs 1: the model picks 518.
        assert_eq!(m.new, Value::str("518"));
        assert_eq!(m.source, ConstraintRef::new(0, 0));

        let mut repaired = data.clone();
        plan.to_delta(&data).unwrap().apply(&mut repaired).unwrap();
        assert!(engine.explain(&repaired).unwrap().is_clean());
    }

    #[test]
    fn complement_set_violations_fall_back_to_deletion() {
        let data = Relation::with_tuples(
            schema(),
            [
                Tuple::from_iter(["NYC", "999"]),
                Tuple::from_iter(["NYC", "212"]),
            ],
        )
        .unwrap();
        let engine = RepairEngine::new(&schema(), &[phi_not_999()]).unwrap();
        let evidence = engine.explain(&data).unwrap();
        let plan = engine.plan(&data, &evidence).unwrap();
        assert!(plan.modifications.is_empty(), "no admissible replacement");
        assert_eq!(plan.num_deletions(), 1);
        assert_eq!(plan.deletions[0].tuple, Tuple::from_iter(["NYC", "999"]));
    }

    #[test]
    fn delete_only_mode_never_modifies() {
        let data = Relation::with_tuples(schema(), [Tuple::from_iter(["Albany", "718"])]).unwrap();
        let engine = RepairEngine::new(&schema(), &[phi_albany()])
            .unwrap()
            .with_options(RepairOptions {
                mode: RepairMode::DeleteOnly,
                ..RepairOptions::default()
            });
        let evidence = engine.explain(&data).unwrap();
        let plan = engine.plan(&data, &evidence).unwrap();
        assert!(plan.modifications.is_empty());
        assert_eq!(plan.num_deletions(), 1);
    }

    #[test]
    fn value_modification_can_dissolve_fd_conflicts() {
        // The SV fix rewrites 718 → 518/519; picking 518 merges the row into
        // the surviving Y class, so no deletion is needed at all.
        let data = Relation::with_tuples(
            schema(),
            [
                Tuple::from_iter(["Albany", "518"]),
                Tuple::from_iter(["Albany", "718"]),
            ],
        )
        .unwrap();
        let engine = RepairEngine::new(&schema(), &[phi_albany()]).unwrap();
        let evidence = engine.explain(&data).unwrap();
        assert_eq!(evidence.num_groups(), 1, "the FD part conflicts too");
        let plan = engine.plan(&data, &evidence).unwrap();
        assert_eq!(plan.num_modifications(), 1);
        // The patched Y classes may still conflict (518 vs the fixed row's
        // choice) — but 518 is the cheapest candidate under the constant
        // model's tie-break (set order), so the group dissolves.
        assert!(plan.deletions.is_empty());

        let mut repaired = data.clone();
        plan.to_delta(&data).unwrap().apply(&mut repaired).unwrap();
        assert!(engine.explain(&repaired).unwrap().is_clean());
    }

    #[test]
    fn auto_solver_respects_weights_on_cardinality_ties() {
        // Two conflicting rows, either cover is minimum-cardinality; the
        // cost model must decide which one goes even on the exact path.
        struct Biased;
        impl crate::CostModel for Biased {
            fn deletion_cost(&self, tuple: &Tuple) -> f64 {
                if tuple.values()[1] == Value::str("718") {
                    10.0
                } else {
                    1.0
                }
            }
            fn change_cost(&self, _a: &str, _o: &Value, _n: &Value) -> f64 {
                1.0
            }
        }
        let data = Relation::with_tuples(
            schema(),
            [
                Tuple::from_iter(["Albany", "518"]),
                Tuple::from_iter(["Albany", "718"]),
            ],
        )
        .unwrap();
        let fd = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap();
        let engine = RepairEngine::new(&schema(), &[fd])
            .unwrap()
            .with_cost_model(Biased)
            .with_options(RepairOptions {
                mode: RepairMode::DeleteOnly,
                solver: DeletionSolver::Auto { max_nodes: 12 },
                ..RepairOptions::default()
            });
        let evidence = engine.explain(&data).unwrap();
        let plan = engine.plan(&data, &evidence).unwrap();
        assert_eq!(plan.num_deletions(), 1);
        assert_eq!(
            plan.deletions[0].tuple,
            Tuple::from_iter(["Albany", "518"]),
            "the expensive 718 row must survive"
        );
    }

    #[test]
    fn exact_solver_errors_on_oversized_instances() {
        let rows: Vec<Tuple> = (0..15)
            .map(|i| Tuple::from_iter(["Albany", &format!("7{i:02}")]))
            .collect();
        let data = Relation::with_tuples(schema(), rows).unwrap();
        let fd = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap();
        let engine = RepairEngine::new(&schema(), &[fd])
            .unwrap()
            .with_options(RepairOptions {
                solver: DeletionSolver::Exact { max_nodes: 12 },
                ..RepairOptions::default()
            });
        let evidence = engine.explain(&data).unwrap();
        assert!(matches!(
            engine.plan(&data, &evidence),
            Err(RepairError::InstanceTooLarge { .. })
        ));
    }
}
