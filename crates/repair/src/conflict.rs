//! The conflict (hyper)graph: which flagged tuples are in conflict, and what
//! a deletion repair must cover.
//!
//! Every violating enforcement group (an
//! [`MvEvidence`](ecfd_detect::evidence::MvEvidence) record) partitions its
//! member rows into *classes* by their `Y` projection; any two members of
//! different classes jointly violate the embedded FD, so a deletion repair
//! must remove all classes but (at most) one per group. Single-tuple
//! violations that value modification cannot (or may not) fix become
//! *must-delete* nodes. Minimising the deleted weight is exactly a weighted
//! vertex cover over the cross-class conflict pairs — the frame of "The
//! Complexity of Computing a Cardinality Repair for Functional Dependencies"
//! (Livshits & Kimelfeld) — which the crate solves greedily, or exactly for
//! small instances through the [`ecfd_logic`] MAXGSAT oracle.

use crate::cost::CostModel;
use crate::{RepairError, Result};
use ecfd_detect::evidence::{ConstraintRef, EvidenceReport};
use ecfd_detect::SemanticDetector;
use ecfd_logic::{BoolExpr, HardSoftInstance, MaxGSatSolver, VarId};
use ecfd_relation::{CodeVec, Relation, RowId, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One tuple participating in a conflict.
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictNode {
    /// The row in the relation the graph was built from.
    pub row: RowId,
    /// The row's (base) tuple, used to emit deletions by value.
    pub tuple: Tuple,
    /// Deletion cost under the engine's cost model.
    pub weight: f64,
    /// The node must be deleted regardless of the cover (an unrepairable
    /// single-tuple violation).
    pub must_delete: bool,
}

/// One violating enforcement group, partitioned into `Y`-projection classes.
/// Members of different classes are pairwise in conflict.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupConflict {
    /// The violated constraint / pattern tuple.
    pub source: ConstraintRef,
    /// The group's shared `X` projection.
    pub group_key: Vec<Value>,
    /// Node indices, partitioned by `Y` projection. Always ≥ 2 classes.
    pub classes: Vec<Vec<usize>>,
}

impl GroupConflict {
    /// Number of cross-class (conflict) pairs in this group.
    pub fn num_conflicts(&self) -> usize {
        let sizes: Vec<usize> = self.classes.iter().map(Vec::len).collect();
        let total: usize = sizes.iter().sum();
        sizes.iter().map(|s| s * (total - s)).sum::<usize>() / 2
    }
}

/// The conflict graph of one [`EvidenceReport`] against one relation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConflictGraph {
    nodes: Vec<ConflictNode>,
    groups: Vec<GroupConflict>,
}

impl ConflictGraph {
    /// Builds the graph from detection evidence.
    ///
    /// * `must_delete` — rows that have to go no matter what (SV rows the
    ///   planner will not value-modify);
    /// * `patched` — tuples to use *instead of* the stored ones when computing
    ///   `Y` classes (the planner passes the post-modification tuples so that
    ///   a value-repaired row joins the class of its new `Y` projection).
    pub fn build(
        detector: &SemanticDetector,
        relation: &Relation,
        evidence: &EvidenceReport,
        must_delete: &BTreeSet<RowId>,
        patched: &HashMap<RowId, Tuple>,
        cost: &dyn CostModel,
    ) -> Result<Self> {
        let bounds = detector.bind(relation.schema())?;
        let split_of: HashMap<ConstraintRef, usize> = detector
            .provenance()
            .iter()
            .enumerate()
            .map(|(i, (c, p))| (ConstraintRef::new(*c, *p), i))
            .collect();

        let mut graph = ConflictGraph::default();
        let mut node_of: BTreeMap<RowId, usize> = BTreeMap::new();
        let add_node = |graph: &mut ConflictGraph,
                        node_of: &mut BTreeMap<RowId, usize>,
                        row: RowId|
         -> Result<usize> {
            if let Some(&idx) = node_of.get(&row) {
                return Ok(idx);
            }
            let tuple = relation
                .get(row)
                .ok_or(RepairError::UnknownRow(row))?
                .clone();
            let idx = graph.nodes.len();
            graph.nodes.push(ConflictNode {
                row,
                weight: cost.deletion_cost(&tuple),
                must_delete: must_delete.contains(&row),
                tuple,
            });
            node_of.insert(row, idx);
            Ok(idx)
        };

        for &row in must_delete {
            add_node(&mut graph, &mut node_of, row)?;
        }
        for group in &evidence.mv_groups {
            let ci = *split_of
                .get(&group.source)
                .ok_or(RepairError::UnknownConstraint(group.source))?;
            let bound = &bounds[ci];
            // Partition members by their coded `Y` projection — the same
            // code keys the detectors group on, issued by the detector's own
            // dictionary, so class formation is integer hashing instead of
            // value-vector cloning. The whole group encodes under one
            // dictionary lock.
            let member_idx: Vec<usize> = group
                .rows
                .iter()
                .map(|&row| add_node(&mut graph, &mut node_of, row))
                .collect::<Result<_>>()?;
            let keys = {
                let effectives = member_idx.iter().map(|&idx| {
                    let node = &graph.nodes[idx];
                    patched.get(&node.row).unwrap_or(&node.tuple)
                });
                detector.encode_keys(effectives, bound.fd_rhs_ids())
            };
            let mut classes: HashMap<CodeVec, Vec<usize>> = HashMap::new();
            for (&idx, key) in member_idx.iter().zip(keys) {
                classes.entry(key).or_default().push(idx);
            }
            // Patching may have merged all members into one class — then the
            // group no longer conflicts and value modification resolved it.
            if classes.len() > 1 {
                // Decode for a deterministic, value-ordered class list (the
                // planner's tie-breaks must not depend on interning order).
                let decoded: BTreeMap<Vec<Value>, Vec<usize>> = classes
                    .into_iter()
                    .map(|(key, members)| (detector.decode_key(&key), members))
                    .collect();
                graph.groups.push(GroupConflict {
                    source: group.source,
                    group_key: group.group_key.clone(),
                    classes: decoded.into_values().collect(),
                });
            }
        }
        Ok(graph)
    }

    /// The nodes of the graph.
    pub fn nodes(&self) -> &[ConflictNode] {
        &self.nodes
    }

    /// The conflicting groups.
    pub fn groups(&self) -> &[GroupConflict] {
        &self.groups
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of conflict pairs across all groups.
    pub fn num_conflicts(&self) -> usize {
        self.groups.iter().map(GroupConflict::num_conflicts).sum()
    }

    /// True when nothing needs deleting.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The trivial upper bound: delete every node (every flagged row).
    pub fn trivial_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Is `deleted` a valid deletion repair? Every must-delete node is gone
    /// and every group retains at most one surviving class.
    pub fn covers(&self, deleted: &[bool]) -> bool {
        debug_assert_eq!(deleted.len(), self.nodes.len());
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, n)| !n.must_delete || deleted[i])
            && self.groups.iter().all(|g| {
                g.classes
                    .iter()
                    .filter(|class| class.iter().any(|&i| !deleted[i]))
                    .count()
                    <= 1
            })
    }

    /// Greedy weighted vertex cover over the conflict pairs: repeatedly delete
    /// the node with the highest (uncovered conflicts / weight) ratio, then
    /// prune deletions that turned out redundant (which makes the cover
    /// minimal — on a single group this coincides with the optimum "keep the
    /// heaviest class").
    pub fn greedy_deletions(&self) -> Vec<usize> {
        let mut deleted: Vec<bool> = self.nodes.iter().map(|n| n.must_delete).collect();
        loop {
            let mut degree = vec![0usize; self.nodes.len()];
            let mut open = false;
            for g in &self.groups {
                let alive: Vec<usize> = g
                    .classes
                    .iter()
                    .map(|class| class.iter().filter(|&&i| !deleted[i]).count())
                    .collect();
                let total: usize = alive.iter().sum();
                if alive.iter().filter(|&&c| c > 0).count() <= 1 {
                    continue;
                }
                open = true;
                for (k, class) in g.classes.iter().enumerate() {
                    let partners = total - alive[k];
                    for &i in class {
                        if !deleted[i] {
                            degree[i] += partners;
                        }
                    }
                }
            }
            if !open {
                break;
            }
            let best = (0..self.nodes.len())
                .filter(|&i| !deleted[i] && degree[i] > 0)
                .max_by(|&a, &b| {
                    let score =
                        |i: usize| degree[i] as f64 / self.nodes[i].weight.max(f64::EPSILON);
                    score(a)
                        .partial_cmp(&score(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        // Ties: prefer the cheaper node, then the smaller row
                        // id (determinism). `max_by` keeps the *greater*
                        // element, so the comparisons are inverted.
                        .then_with(|| {
                            self.nodes[b]
                                .weight
                                .partial_cmp(&self.nodes[a].weight)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .then_with(|| self.nodes[b].row.cmp(&self.nodes[a].row))
                })
                .expect("an open group has a node with positive degree");
            deleted[best] = true;
        }
        // Minimalisation: try to resurrect expensive deletions first.
        let mut order: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| deleted[i] && !self.nodes[i].must_delete)
            .collect();
        order.sort_by(|&a, &b| {
            self.nodes[b]
                .weight
                .partial_cmp(&self.nodes[a].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| self.nodes[a].row.cmp(&self.nodes[b].row))
        });
        for i in order {
            deleted[i] = false;
            if !self.covers(&deleted) {
                deleted[i] = true;
            }
        }
        (0..self.nodes.len()).filter(|&i| deleted[i]).collect()
    }

    /// Exact cardinality repair through the MAXGSAT oracle: one variable per
    /// node ("keep it"), hard formulas for must-delete nodes and for every
    /// cross-class conflict pair, soft formulas rewarding kept nodes. Solved
    /// exhaustively, so instances with more than `max_nodes` nodes (or 24,
    /// the exhaustive solver's own limit) return `None` — callers fall back
    /// to the greedy cover.
    pub fn exact_deletions(&self, max_nodes: usize) -> Option<Vec<usize>> {
        if self.nodes.len() > max_nodes.min(24) {
            return None;
        }
        if self.nodes.is_empty() {
            return Some(Vec::new());
        }
        let keep = |i: usize| BoolExpr::var(VarId(i));
        let mut hard = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.must_delete {
                hard.push(keep(i).not());
            }
        }
        for g in &self.groups {
            for (k, class) in g.classes.iter().enumerate() {
                for other in &g.classes[k + 1..] {
                    for &i in class {
                        for &j in other {
                            hard.push(BoolExpr::and([keep(i), keep(j)]).not());
                        }
                    }
                }
            }
        }
        let soft: Vec<BoolExpr> = (0..self.nodes.len()).map(keep).collect();
        let instance = HardSoftInstance::new(self.nodes.len(), hard, soft);
        let outcome = instance.solve(MaxGSatSolver::Exhaustive, 0);
        debug_assert!(
            outcome.hard_satisfied,
            "deleting every node always satisfies the hard formulas"
        );
        let kept: BTreeSet<usize> = outcome.soft_satisfied.iter().copied().collect();
        Some(
            (0..self.nodes.len())
                .filter(|i| !kept.contains(i))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::ConstantCost;
    use ecfd_core::ECfdBuilder;
    use ecfd_relation::{DataType, Schema};

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build()
    }

    fn fd() -> ecfd_core::ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap()
    }

    fn graph_for(rows: &[(&str, &str)]) -> (ConflictGraph, Relation) {
        let relation = Relation::with_tuples(
            schema(),
            rows.iter().map(|(ct, ac)| Tuple::from_iter([*ct, *ac])),
        )
        .unwrap();
        let detector = SemanticDetector::new(&schema(), &[fd()]).unwrap();
        let (_, evidence) = detector.detect_with_evidence(&relation).unwrap();
        let graph = ConflictGraph::build(
            &detector,
            &relation,
            &evidence,
            &BTreeSet::new(),
            &HashMap::new(),
            &ConstantCost::default(),
        )
        .unwrap();
        (graph, relation)
    }

    #[test]
    fn one_group_two_against_one() {
        // Albany has AC classes {518, 518} vs {718}: the optimum deletes the
        // single 718 row.
        let (graph, _) = graph_for(&[("Albany", "518"), ("Albany", "518"), ("Albany", "718")]);
        assert_eq!(graph.num_nodes(), 3);
        assert_eq!(graph.groups().len(), 1);
        assert_eq!(graph.num_conflicts(), 2);

        let greedy = graph.greedy_deletions();
        let exact = graph.exact_deletions(12).unwrap();
        assert_eq!(greedy.len(), 1);
        assert_eq!(exact.len(), 1);
        assert_eq!(greedy, exact);
        assert_eq!(
            graph.nodes()[greedy[0]].tuple,
            Tuple::from_iter(["Albany", "718"])
        );
    }

    #[test]
    fn overlapping_groups_stay_optimal_on_small_instances() {
        // Two groups (Albany and Troy) with 2-vs-1 classes each: optimum
        // deletes one row per group.
        let (graph, _) = graph_for(&[
            ("Albany", "518"),
            ("Albany", "518"),
            ("Albany", "718"),
            ("Troy", "518"),
            ("Troy", "212"),
            ("Troy", "518"),
        ]);
        assert_eq!(graph.groups().len(), 2);
        let greedy = graph.greedy_deletions();
        let exact = graph.exact_deletions(12).unwrap();
        assert_eq!(exact.len(), 2);
        assert_eq!(greedy.len(), exact.len());
    }

    #[test]
    fn must_delete_nodes_are_always_covered() {
        let (graph0, relation) = graph_for(&[("Albany", "518"), ("Albany", "718")]);
        assert_eq!(graph0.num_nodes(), 2);
        let detector = SemanticDetector::new(&schema(), &[fd()]).unwrap();
        let (_, evidence) = detector.detect_with_evidence(&relation).unwrap();
        let must: BTreeSet<RowId> = [relation.row_ids()[0]].into_iter().collect();
        let graph = ConflictGraph::build(
            &detector,
            &relation,
            &evidence,
            &must,
            &HashMap::new(),
            &ConstantCost::default(),
        )
        .unwrap();
        let greedy = graph.greedy_deletions();
        let exact = graph.exact_deletions(12).unwrap();
        // Deleting row 0 also resolves the group, so both settle for one
        // deletion — the mandatory one.
        assert_eq!(greedy.len(), 1);
        assert_eq!(exact, greedy);
        assert!(graph.nodes()[greedy[0]].must_delete);
    }

    #[test]
    fn weights_steer_the_greedy_cover() {
        struct Biased;
        impl CostModel for Biased {
            fn deletion_cost(&self, tuple: &Tuple) -> f64 {
                // Deleting the 718 row is made very expensive.
                if tuple.values()[1] == Value::str("718") {
                    10.0
                } else {
                    1.0
                }
            }
            fn change_cost(&self, _a: &str, _o: &Value, _n: &Value) -> f64 {
                1.0
            }
        }
        let relation = Relation::with_tuples(
            schema(),
            [
                Tuple::from_iter(["Albany", "518"]),
                Tuple::from_iter(["Albany", "718"]),
            ],
        )
        .unwrap();
        let detector = SemanticDetector::new(&schema(), &[fd()]).unwrap();
        let (_, evidence) = detector.detect_with_evidence(&relation).unwrap();
        let graph = ConflictGraph::build(
            &detector,
            &relation,
            &evidence,
            &BTreeSet::new(),
            &HashMap::new(),
            &Biased,
        )
        .unwrap();
        let greedy = graph.greedy_deletions();
        assert_eq!(greedy.len(), 1);
        assert_eq!(
            graph.nodes()[greedy[0]].tuple,
            Tuple::from_iter(["Albany", "518"])
        );
    }

    #[test]
    fn patched_tuples_can_dissolve_a_group() {
        let relation = Relation::with_tuples(
            schema(),
            [
                Tuple::from_iter(["Albany", "518"]),
                Tuple::from_iter(["Albany", "718"]),
            ],
        )
        .unwrap();
        let detector = SemanticDetector::new(&schema(), &[fd()]).unwrap();
        let (_, evidence) = detector.detect_with_evidence(&relation).unwrap();
        let rows = relation.row_ids();
        let patched: HashMap<RowId, Tuple> = [(rows[1], Tuple::from_iter(["Albany", "518"]))]
            .into_iter()
            .collect();
        let graph = ConflictGraph::build(
            &detector,
            &relation,
            &evidence,
            &BTreeSet::new(),
            &patched,
            &ConstantCost::default(),
        )
        .unwrap();
        assert!(graph.groups().is_empty(), "the patched Y values agree");
        assert!(graph.greedy_deletions().is_empty());
    }

    #[test]
    fn exact_refuses_oversized_instances() {
        let rows: Vec<(String, String)> = (0..14)
            .map(|i| ("Albany".to_string(), format!("{i}")))
            .collect();
        let borrowed: Vec<(&str, &str)> =
            rows.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let (graph, _) = graph_for(&borrowed);
        assert_eq!(graph.exact_deletions(12), None);
        // The greedy cover still handles it: 14 rows, all distinct Y values →
        // keep one class (one row), delete 13.
        assert_eq!(graph.greedy_deletions().len(), 13);
    }
}
