//! Generation of synthetic `cust` instances with controlled noise.
//!
//! The schema extends Fig. 1's `cust` relation with the item attributes used
//! by the paper's experiments ("adds information about items bought by
//! different customers"): `cust(AC, PN, NM, STR, CT, ZIP, ITEM, ITYPE)`, all
//! string-typed as in the paper.
//!
//! Clean tuples are internally consistent with the geographic and item
//! catalogs (and therefore satisfy the whole constraint workload of
//! [`crate::constraints::workload_constraints`]); the noise injector then
//! modifies `noise%` of the tuples, replacing a right-hand-side attribute of
//! some eCFD with an incorrect value, exactly as described in Section VI.

use crate::geo::GeoCatalog;
use crate::items::{self, Item};
use ecfd_relation::{DataType, Relation, Schema, Tuple};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of a generated `cust` instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CustConfig {
    /// Number of tuples (`|D|`).
    pub size: usize,
    /// Percentage (0–100) of tuples modified to violate some eCFD.
    pub noise_percent: f64,
    /// RNG seed (experiments fix it for reproducibility).
    pub seed: u64,
    /// Number of extra generated towns beyond the hand-written catalog.
    pub extra_cities: usize,
    /// Size of the item catalog.
    pub num_items: usize,
}

impl Default for CustConfig {
    fn default() -> Self {
        CustConfig {
            size: 1_000,
            noise_percent: 5.0,
            seed: 42,
            extra_cities: 40,
            num_items: 300,
        }
    }
}

/// The extended `cust` schema used by the experiments.
pub fn cust_schema() -> Schema {
    Schema::builder("cust")
        .attr("AC", DataType::Str)
        .attr("PN", DataType::Str)
        .attr("NM", DataType::Str)
        .attr("STR", DataType::Str)
        .attr("CT", DataType::Str)
        .attr("ZIP", DataType::Str)
        .attr("ITEM", DataType::Str)
        .attr("ITYPE", DataType::Str)
        .build()
}

/// Generates one clean tuple.
pub fn clean_tuple(geo: &GeoCatalog, item_catalog: &[Item], rng: &mut StdRng) -> Tuple {
    let city = geo.random_city(rng);
    let ac = geo.random_area_code(city, rng);
    let zip = geo.random_zip(city, rng);
    let item = items::random_item(item_catalog, rng);
    Tuple::from_iter([
        ac,
        format!("{:07}", rng.gen_range(0..10_000_000u32)),
        format!("Name{:05}", rng.gen_range(0..100_000u32)),
        format!("{} Main St.", rng.gen_range(1..9999u32)),
        city.name.clone(),
        zip,
        item.title.clone(),
        item.item_type.clone(),
    ])
}

/// The kinds of noise the injector applies, mirroring "changing tuples in D in
/// attributes in the right-hand side of some eCFDs from a correct to an
/// incorrect value".
// The `Wrong` prefix mirrors the paper's prose for the three corruption modes.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NoiseKind {
    /// Replace the area code with one that is wrong for the city.
    WrongAreaCode,
    /// Replace the item type with a value outside {book, cd, dvd}.
    WrongItemType,
    /// Replace the city, keeping the zip code (breaks ZIP → CT).
    WrongCity,
}

/// Generates a `cust` instance according to `config`. Returns the relation and
/// the number of tuples that were actually modified by the noise injector.
pub fn generate(config: &CustConfig) -> (Relation, usize) {
    let geo = GeoCatalog::with_extra_cities(config.extra_cities);
    let item_catalog = items::item_catalog(config.num_items.max(3));
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut tuples: Vec<Tuple> = (0..config.size)
        .map(|_| clean_tuple(&geo, &item_catalog, &mut rng))
        .collect();

    let noisy = ((config.size as f64) * config.noise_percent / 100.0).round() as usize;
    let mut indices: Vec<usize> = (0..tuples.len()).collect();
    indices.shuffle(&mut rng);
    let kinds = [
        NoiseKind::WrongAreaCode,
        NoiseKind::WrongItemType,
        NoiseKind::WrongCity,
    ];
    for &idx in indices.iter().take(noisy) {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        corrupt(&geo, &mut tuples[idx], kind, &mut rng);
    }

    let relation =
        Relation::with_tuples(cust_schema(), tuples).expect("generated tuples match the schema");
    (relation, noisy.min(config.size))
}

fn corrupt(geo: &GeoCatalog, tuple: &mut Tuple, kind: NoiseKind, rng: &mut StdRng) {
    let schema = cust_schema();
    let ct_idx = schema.attr_id("CT").expect("CT exists");
    let city_name = tuple
        .value(ct_idx)
        .as_str()
        .expect("CT is a string")
        .to_string();
    let city = geo.city(&city_name).expect("generated city exists");
    match kind {
        NoiseKind::WrongAreaCode => {
            let ac_idx = schema.attr_id("AC").expect("AC exists");
            tuple.set(ac_idx, geo.wrong_area_code(city, rng).into());
        }
        NoiseKind::WrongItemType => {
            let ty_idx = schema.attr_id("ITYPE").expect("ITYPE exists");
            tuple.set(ty_idx, items::invalid_item_type(rng).into());
        }
        NoiseKind::WrongCity => {
            // Pick a different city but keep the zip code.
            let other = loop {
                let candidate = geo.random_city(rng);
                if candidate.name != city.name {
                    break candidate;
                }
            };
            tuple.set(ct_idx, other.name.clone().into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::workload_constraints;
    use ecfd_core::satisfaction;

    #[test]
    fn generates_the_requested_number_of_tuples() {
        let (db, noisy) = generate(&CustConfig {
            size: 500,
            noise_percent: 4.0,
            ..CustConfig::default()
        });
        assert_eq!(db.len(), 500);
        assert_eq!(noisy, 20);
        assert_eq!(db.schema(), &cust_schema());
    }

    #[test]
    fn zero_noise_data_satisfies_the_whole_workload() {
        let (db, noisy) = generate(&CustConfig {
            size: 400,
            noise_percent: 0.0,
            ..CustConfig::default()
        });
        assert_eq!(noisy, 0);
        let constraints = workload_constraints();
        assert_eq!(constraints.len(), 10);
        let result = satisfaction::check_all(&db, &constraints).unwrap();
        assert!(
            result.is_satisfied(),
            "clean data must satisfy all 10 constraints; violations: {:?}",
            result
                .violations()
                .violations()
                .iter()
                .take(5)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn noise_produces_violations_roughly_proportional_to_the_rate() {
        let constraints = workload_constraints();
        let (db, noisy) = generate(&CustConfig {
            size: 600,
            noise_percent: 5.0,
            ..CustConfig::default()
        });
        assert_eq!(noisy, 30);
        let result = satisfaction::check_all(&db, &constraints).unwrap();
        let violating = result.violations().num_violating_rows();
        assert!(
            violating >= noisy / 2,
            "expected at least {} violating rows, found {violating}",
            noisy / 2
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let config = CustConfig {
            size: 200,
            ..CustConfig::default()
        };
        let (a, _) = generate(&config);
        let (b, _) = generate(&config);
        assert_eq!(a, b);
        let (c, _) = generate(&CustConfig { seed: 43, ..config });
        assert_ne!(a, c);
    }
}
