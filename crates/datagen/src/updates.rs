//! Generation of update batches `ΔD⁺` / `ΔD⁻` for the incremental experiments.
//!
//! The paper's second experiment set fixes `|D|` and varies the update size:
//! `ΔD⁻` is a sample of existing tuples to delete, `ΔD⁺` is a batch of freshly
//! generated tuples (with the same noise rate as the base data), and the two
//! never overlap.

use crate::cust::{clean_tuple, cust_schema};
use crate::geo::GeoCatalog;
use crate::items;
use ecfd_relation::{Delta, Relation, Tuple};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of an update batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateConfig {
    /// Number of tuples to insert (`|ΔD⁺|`).
    pub insertions: usize,
    /// Number of existing tuples to delete (`|ΔD⁻|`).
    pub deletions: usize,
    /// Percentage (0–100) of inserted tuples modified to violate an eCFD.
    pub noise_percent: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of extra generated towns (must match the base data's config so
    /// inserted tuples draw from the same catalog).
    pub extra_cities: usize,
    /// Size of the item catalog (ditto).
    pub num_items: usize,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            insertions: 100,
            deletions: 100,
            noise_percent: 5.0,
            seed: 7,
            extra_cities: 40,
            num_items: 300,
        }
    }
}

/// Generates a [`Delta`] against an existing instance `db`.
///
/// Deletions are sampled (without replacement) from the current contents of
/// `db`; insertions are fresh tuples, noised at `noise_percent`. The two sets
/// are disjoint by construction (fresh tuples carry fresh phone numbers).
pub fn generate_delta(db: &Relation, config: &UpdateConfig) -> Delta {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let geo = GeoCatalog::with_extra_cities(config.extra_cities);
    let item_catalog = items::item_catalog(config.num_items.max(3));
    let schema = cust_schema();
    let ac_idx = schema.attr_id("AC").expect("AC exists");
    let ct_idx = schema.attr_id("CT").expect("CT exists");

    // Deletions: a random sample of current rows (projected onto the base
    // schema in case the relation carries SV/MV flag columns).
    let base_arity = schema.arity();
    let mut all_rows: Vec<Tuple> = db
        .tuples()
        .map(|t| Tuple::new(t.values()[..base_arity.min(t.arity())].to_vec()))
        .collect();
    all_rows.shuffle(&mut rng);
    let deletions: Vec<Tuple> = all_rows.into_iter().take(config.deletions).collect();

    // Insertions: fresh tuples with the configured noise rate.
    let mut insertions = Vec::with_capacity(config.insertions);
    let noisy_target = ((config.insertions as f64) * config.noise_percent / 100.0).round() as usize;
    for i in 0..config.insertions {
        let mut tuple = clean_tuple(&geo, &item_catalog, &mut rng);
        if i < noisy_target {
            // Corrupt the area code — the simplest right-hand-side corruption.
            let city_name = tuple
                .value(ct_idx)
                .as_str()
                .expect("CT is a string")
                .to_string();
            let city = geo.city(&city_name).expect("generated city exists");
            tuple.set(ac_idx, geo.wrong_area_code(city, &mut rng).into());
        }
        insertions.push(tuple);
    }
    let _ = rng.gen::<u64>();

    Delta {
        insertions,
        deletions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cust::{generate, CustConfig};

    fn base() -> Relation {
        generate(&CustConfig {
            size: 400,
            noise_percent: 5.0,
            ..CustConfig::default()
        })
        .0
    }

    #[test]
    fn delta_has_requested_sizes_and_no_overlap() {
        let db = base();
        let delta = generate_delta(
            &db,
            &UpdateConfig {
                insertions: 50,
                deletions: 80,
                ..UpdateConfig::default()
            },
        );
        assert_eq!(delta.insertions.len(), 50);
        assert_eq!(delta.deletions.len(), 80);
        assert!(!delta.overlaps(), "ΔD⁺ and ΔD⁻ must not overlap");
        // Deletions really are existing tuples.
        for d in &delta.deletions {
            assert!(db.tuples().any(|t| t == d));
        }
    }

    #[test]
    fn deletions_are_capped_by_the_database_size() {
        let db = generate(&CustConfig {
            size: 20,
            ..CustConfig::default()
        })
        .0;
        let delta = generate_delta(
            &db,
            &UpdateConfig {
                insertions: 0,
                deletions: 100,
                ..UpdateConfig::default()
            },
        );
        assert_eq!(delta.deletions.len(), 20);
    }

    #[test]
    fn delta_applies_cleanly_to_the_base_relation() {
        let mut db = base();
        let before = db.len();
        let delta = generate_delta(
            &db,
            &UpdateConfig {
                insertions: 30,
                deletions: 30,
                ..UpdateConfig::default()
            },
        );
        let (stats, _) = delta.apply(&mut db).unwrap();
        assert_eq!(stats.inserted, 30);
        assert!(
            stats.deleted >= 30,
            "duplicates may remove a few extra rows"
        );
        assert_eq!(stats.missed_deletions, 0);
        assert_eq!(db.len(), before + 30 - stats.deleted);
    }

    #[test]
    fn delta_generation_is_deterministic() {
        let db = base();
        let config = UpdateConfig::default();
        assert_eq!(generate_delta(&db, &config), generate_delta(&db, &config));
    }

    #[test]
    fn noisy_insertions_violate_constraints() {
        let db = base();
        let delta = generate_delta(
            &db,
            &UpdateConfig {
                insertions: 100,
                deletions: 0,
                noise_percent: 20.0,
                ..UpdateConfig::default()
            },
        );
        let constraints = crate::constraints::workload_constraints();
        let fresh = Relation::with_tuples(cust_schema(), delta.insertions.clone()).unwrap();
        let result = ecfd_core::satisfaction::check_all(&fresh, &constraints).unwrap();
        assert!(result.violations().num_violating_rows() >= 10);
    }
}
