//! Synthetic geographic catalog: cities, area codes and zip prefixes.
//!
//! Substitution for the paper's scraped "real-life CT, AC, ZIP data for
//! cities and towns in the US": a generated catalog with the same structure —
//! most cities have exactly one area code, while NYC and LI (Long Island)
//! have several, which is precisely the irregularity the eCFDs of Example 1.1
//! are designed to express.

use rand::rngs::StdRng;
use rand::Rng;

/// A city with its admissible area codes and its zip-code prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct City {
    /// City name (the `CT` attribute).
    pub name: String,
    /// Admissible area codes (`AC`); a single element for regular cities.
    pub area_codes: Vec<String>,
    /// Three-digit zip prefix; full zips are `prefix` + two more digits.
    pub zip_prefix: String,
}

impl City {
    /// True when the city has a single admissible area code.
    pub fn has_unique_area_code(&self) -> bool {
        self.area_codes.len() == 1
    }
}

/// The catalog of cities used by the generator and by the constraint
/// workload.
#[derive(Debug, Clone)]
pub struct GeoCatalog {
    cities: Vec<City>,
}

/// The hand-written core of the catalog: the cities named in the paper plus
/// the two multi-area-code regions.
fn seed_cities() -> Vec<City> {
    let single = [
        ("Albany", "518", "122"),
        ("Troy", "518", "121"),
        // Synthetic zip prefixes are unique per city so that ZIP → CT is a
        // genuine functional dependency of the clean data (real-world Albany
        // and Colonie share the 122xx prefix; our constraint workload includes
        // ZIP → CT, so the catalog keeps prefixes disjoint).
        ("Colonie", "518", "120"),
        ("Buffalo", "716", "142"),
        ("Syracuse", "315", "132"),
        ("Utica", "315", "135"),
        ("Yonkers", "914", "107"),
        ("Rochester", "585", "146"),
        ("Ithaca", "607", "148"),
        ("Binghamton", "607", "139"),
    ];
    let mut cities: Vec<City> = single
        .iter()
        .map(|(name, ac, zip)| City {
            name: (*name).to_string(),
            area_codes: vec![(*ac).to_string()],
            zip_prefix: (*zip).to_string(),
        })
        .collect();
    cities.push(City {
        name: "NYC".to_string(),
        area_codes: ["212", "718", "646", "347", "917"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        zip_prefix: "100".to_string(),
    });
    cities.push(City {
        name: "LI".to_string(),
        area_codes: ["516", "631"].iter().map(|s| s.to_string()).collect(),
        zip_prefix: "115".to_string(),
    });
    cities
}

impl GeoCatalog {
    /// Builds a catalog with the hand-written cities plus `extra` generated
    /// cities, each with a fresh unique area code.
    pub fn with_extra_cities(extra: usize) -> Self {
        let mut cities = seed_cities();
        for i in 0..extra {
            cities.push(City {
                name: format!("Town{i:03}"),
                area_codes: vec![format!("{}", 200 + (i % 700))],
                zip_prefix: format!("{:03}", 200 + (i % 800)),
            });
        }
        GeoCatalog { cities }
    }

    /// The default catalog (the hand-written cities plus 40 generated towns).
    pub fn standard() -> Self {
        GeoCatalog::with_extra_cities(40)
    }

    /// All cities.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// The cities with several admissible area codes (NYC, LI).
    pub fn multi_code_cities(&self) -> Vec<&City> {
        self.cities
            .iter()
            .filter(|c| !c.has_unique_area_code())
            .collect()
    }

    /// The cities with a single admissible area code.
    pub fn single_code_cities(&self) -> Vec<&City> {
        self.cities
            .iter()
            .filter(|c| c.has_unique_area_code())
            .collect()
    }

    /// Picks a random city.
    pub fn random_city<'a>(&'a self, rng: &mut StdRng) -> &'a City {
        &self.cities[rng.gen_range(0..self.cities.len())]
    }

    /// Picks a random admissible area code of `city`.
    pub fn random_area_code(&self, city: &City, rng: &mut StdRng) -> String {
        city.area_codes[rng.gen_range(0..city.area_codes.len())].clone()
    }

    /// A full zip code consistent with the city's prefix.
    pub fn random_zip(&self, city: &City, rng: &mut StdRng) -> String {
        format!("{}{:02}", city.zip_prefix, rng.gen_range(0..100))
    }

    /// An area code that is *not* admissible for the city — used by the noise
    /// injector to create violations.
    pub fn wrong_area_code(&self, city: &City, rng: &mut StdRng) -> String {
        loop {
            let other = self.random_city(rng);
            let candidate = self.random_area_code(other, rng);
            if !city.area_codes.contains(&candidate) {
                return candidate;
            }
        }
    }

    /// Looks a city up by name.
    pub fn city(&self, name: &str) -> Option<&City> {
        self.cities.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn standard_catalog_has_the_paper_structure() {
        let geo = GeoCatalog::standard();
        assert!(geo.cities().len() > 40);
        let multi: Vec<&str> = geo
            .multi_code_cities()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(multi, vec!["NYC", "LI"]);
        assert!(geo.single_code_cities().len() >= 10);
        let nyc = geo.city("NYC").unwrap();
        assert_eq!(nyc.area_codes.len(), 5);
        assert!(geo.city("Albany").unwrap().has_unique_area_code());
        assert!(geo.city("Atlantis").is_none());
    }

    #[test]
    fn random_helpers_stay_consistent_with_the_catalog() {
        let geo = GeoCatalog::standard();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let city = geo.random_city(&mut rng);
            let ac = geo.random_area_code(city, &mut rng);
            assert!(city.area_codes.contains(&ac));
            let zip = geo.random_zip(city, &mut rng);
            assert!(zip.starts_with(&city.zip_prefix));
            assert_eq!(zip.len(), 5);
            let wrong = geo.wrong_area_code(city, &mut rng);
            assert!(!city.area_codes.contains(&wrong));
        }
    }

    #[test]
    fn extra_cities_scale_the_catalog() {
        let small = GeoCatalog::with_extra_cities(0);
        let large = GeoCatalog::with_extra_cities(100);
        assert_eq!(large.cities().len(), small.cities().len() + 100);
    }
}
