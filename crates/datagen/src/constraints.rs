//! The constraint workload: 10 eCFDs expressing the semantics of the
//! synthetic data, plus the `|Tp|` scaling used by Figs. 5(c) / 6(c).
//!
//! The paper: "We used a set Σ consisting of 10 eCFDs to express real-life
//! semantics of the real-life data, including the two eCFDs of Fig. 2. …
//! The number of wildcards ('_'), positive domain constraints (S) and
//! negative domain constraints (S̄) in the pattern tuples are uniformly
//! distributed."

use crate::geo::GeoCatalog;
use crate::items::ITEM_TYPES;
use ecfd_core::{ECfd, ECfdBuilder, PatternTuple, PatternValue};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The 10-constraint workload over the extended `cust` schema, built against
/// the standard geographic catalog.
pub fn workload_constraints() -> Vec<ECfd> {
    workload_constraints_for(&GeoCatalog::standard())
}

/// The 10-constraint workload against an explicit catalog.
pub fn workload_constraints_for(geo: &GeoCatalog) -> Vec<ECfd> {
    let nyc = geo.city("NYC").expect("catalog has NYC");
    let li = geo.city("LI").expect("catalog has LI");
    let nyc_codes: Vec<&str> = nyc.area_codes.iter().map(String::as_str).collect();
    let li_codes: Vec<&str> = li.area_codes.iter().map(String::as_str).collect();
    // Area codes shared by several cities: the FD AC → CT only holds outside
    // these.
    let shared_codes: Vec<&str> = ["518", "315", "607"]
        .into_iter()
        .chain(nyc_codes.iter().copied())
        .chain(li_codes.iter().copied())
        .collect();
    // A handful of NYC zip codes for the zip → city binding (φ5).
    let nyc_zips: Vec<String> = (0..100).map(|i| format!("100{i:02}")).collect();

    vec![
        // φ1 (Fig. 2): outside NYC/LI, city determines area code, and the
        // capital-district cities are bound to 518.
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .expect("φ1 is well-formed"),
        // φ2 (Fig. 2): NYC's admissible area codes.
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.constant("CT", "NYC").in_set("AC", nyc_codes.clone()))
            .build()
            .expect("φ2 is well-formed"),
        // φ3: Long Island's admissible area codes ("Similarly one can specify
        // the area codes for LI").
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.constant("CT", "LI").in_set("AC", li_codes.clone()))
            .build()
            .expect("φ3 is well-formed"),
        // φ4: zip code determines city.
        ECfdBuilder::new("cust")
            .lhs(["ZIP"])
            .fd_rhs(["CT"])
            .pattern(|p| p)
            .build()
            .expect("φ4 is well-formed"),
        // φ5: Manhattan zip codes belong to NYC.
        ECfdBuilder::new("cust")
            .lhs(["ZIP"])
            .pattern_rhs(["CT"])
            .pattern(|p| {
                p.in_set("ZIP", nyc_zips.iter().map(String::as_str))
                    .constant("CT", "NYC")
            })
            .build()
            .expect("φ5 is well-formed"),
        // φ6: an item determines its type.
        ECfdBuilder::new("cust")
            .lhs(["ITEM"])
            .fd_rhs(["ITYPE"])
            .pattern(|p| p)
            .build()
            .expect("φ6 is well-formed"),
        // φ7: item types come from the catalog's enumeration.
        ECfdBuilder::new("cust")
            .lhs(["ITEM"])
            .pattern_rhs(["ITYPE"])
            .pattern(|p| p.in_set("ITYPE", ITEM_TYPES))
            .build()
            .expect("φ7 is well-formed"),
        // φ8: area code 518 only serves the capital district.
        ECfdBuilder::new("cust")
            .lhs(["AC"])
            .pattern_rhs(["CT"])
            .pattern(|p| {
                p.constant("AC", "518")
                    .in_set("CT", ["Albany", "Troy", "Colonie"])
            })
            .build()
            .expect("φ8 is well-formed"),
        // φ9: outside the shared area codes, the area code determines the city.
        ECfdBuilder::new("cust")
            .lhs(["AC"])
            .fd_rhs(["CT"])
            .pattern(|p| p.not_in("AC", shared_codes.clone()))
            .build()
            .expect("φ9 is well-formed"),
        // φ10: NYC addresses carry Manhattan-prefix zip codes.
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["ZIP"])
            .pattern(|p| {
                p.constant("CT", "NYC")
                    .in_set("ZIP", nyc_zips.iter().map(String::as_str))
            })
            .build()
            .expect("φ10 is well-formed"),
    ]
}

/// Builds an eCFD on `[CT] → [AC]` with exactly `size` pattern tuples whose
/// cell kinds (wildcard / positive set / complement set) are uniformly
/// distributed, as in the paper's `|Tp|` scaling experiments. The pattern
/// tuples are generated to be consistent with the catalog so that clean data
/// stays (mostly) clean and the violation rate remains governed by `noise%`.
pub fn scale_tableau(geo: &GeoCatalog, size: usize, seed: u64) -> ECfd {
    let mut rng = StdRng::seed_from_u64(seed);
    let all_codes: Vec<String> = geo
        .cities()
        .iter()
        .flat_map(|c| c.area_codes.iter().cloned())
        .collect();
    let bogus_codes = ["000", "001", "999", "998", "997"];

    let mut tableau = Vec::with_capacity(size);
    for _ in 0..size {
        // LHS cell over CT.
        let lhs_kind = rng.gen_range(0..3);
        let sample_cities: Vec<String> = {
            let mut names: Vec<String> = geo.cities().iter().map(|c| c.name.clone()).collect();
            names.shuffle(&mut rng);
            names.truncate(rng.gen_range(1..=4));
            names
        };
        let lhs = match lhs_kind {
            0 => PatternValue::Wildcard,
            1 => PatternValue::in_set(sample_cities.iter().map(String::as_str)),
            _ => PatternValue::not_in_set(sample_cities.iter().map(String::as_str)),
        };
        // RHS cell over AC, chosen so that correct area codes always match.
        let rhs_kind = rng.gen_range(0..3);
        let rhs = match rhs_kind {
            0 => PatternValue::Wildcard,
            1 => {
                // Admit every catalog area code when the LHS is broad, or the
                // matching cities' codes when it is a positive set.
                let codes: Vec<String> = if lhs_kind == 1 {
                    sample_cities
                        .iter()
                        .filter_map(|n| geo.city(n))
                        .flat_map(|c| c.area_codes.iter().cloned())
                        .collect()
                } else {
                    all_codes.clone()
                };
                PatternValue::in_set(codes.iter().map(String::as_str))
            }
            _ => PatternValue::not_in_set(bogus_codes),
        };
        tableau.push(PatternTuple::new(vec![lhs], vec![rhs]));
    }
    ECfd::new(
        "cust",
        vec!["CT".into()],
        vec!["AC".into()],
        vec![],
        tableau,
    )
    .expect("generated tableaux are well-formed")
}

/// The workload of Figs. 5(c) / 6(c): the 10 base constraints with one of them
/// replaced by a scaled-tableau constraint of the requested size.
pub fn workload_with_scaled_constraint(size: usize, seed: u64) -> Vec<ECfd> {
    let geo = GeoCatalog::standard();
    let mut constraints = workload_constraints_for(&geo);
    constraints[0] = scale_tableau(&geo, size, seed);
    constraints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cust::{generate, CustConfig};
    use ecfd_core::normalize::total_pattern_tuples;
    use ecfd_core::satisfaction;

    #[test]
    fn workload_has_ten_constraints_including_the_fig2_ecfds() {
        let constraints = workload_constraints();
        assert_eq!(constraints.len(), 10);
        // φ1 has the complement-set pattern and the capital-district binding.
        assert!(constraints[0].to_string().contains("!{LI, NYC}"));
        assert!(constraints[1]
            .to_string()
            .contains("{212, 347, 646, 718, 917}"));
        // The workload uses all three features: wildcards, sets, complements,
        // and a non-empty Yp somewhere.
        assert!(constraints.iter().any(|c| !c.pattern_rhs().is_empty()));
        assert!(constraints.iter().any(|c| c.is_pattern_only()));
        assert!(constraints.iter().all(|c| c.relation() == "cust"));
    }

    #[test]
    fn every_workload_constraint_validates_against_the_cust_schema() {
        let schema = crate::cust::cust_schema();
        for c in workload_constraints() {
            c.validate_against(&schema).unwrap();
        }
    }

    #[test]
    fn scaled_tableaux_have_the_requested_size_and_mixed_kinds() {
        let geo = GeoCatalog::standard();
        for size in [10, 50, 200] {
            let ecfd = scale_tableau(&geo, size, 7);
            assert_eq!(ecfd.tableau_size(), size);
        }
        let ecfd = scale_tableau(&geo, 300, 11);
        let mut wildcards = 0;
        let mut positive = 0;
        let mut negative = 0;
        for tp in ecfd.tableau() {
            for cell in tp.lhs.iter().chain(tp.rhs.iter()) {
                match cell {
                    PatternValue::Wildcard => wildcards += 1,
                    PatternValue::In(_) => positive += 1,
                    PatternValue::NotIn(_) => negative += 1,
                }
            }
        }
        // "uniformly distributed": each kind accounts for a sizeable share.
        for count in [wildcards, positive, negative] {
            assert!(count > 100, "kinds {wildcards}/{positive}/{negative}");
        }
    }

    #[test]
    fn scaled_constraints_keep_clean_data_mostly_clean() {
        let geo = GeoCatalog::standard();
        let (db, _) = generate(&CustConfig {
            size: 300,
            noise_percent: 0.0,
            ..CustConfig::default()
        });
        let scaled = scale_tableau(&geo, 100, 3);
        let result = satisfaction::check(&db, &scaled).unwrap();
        // Clean tuples always carry an admissible area code, so no
        // single-tuple violations arise; FD-style pattern tuples may flag a
        // handful of multi-tuple groups for the broad (wildcard-LHS) rows.
        assert!(result.single_tuple_violations().is_empty());
    }

    #[test]
    fn workload_with_scaled_constraint_counts_pattern_tuples() {
        let constraints = workload_with_scaled_constraint(50, 5);
        assert_eq!(constraints.len(), 10);
        assert_eq!(constraints[0].tableau_size(), 50);
        assert!(total_pattern_tuples(&constraints) >= 50 + 9);
    }

    #[test]
    fn scaling_is_deterministic_per_seed() {
        let geo = GeoCatalog::standard();
        assert_eq!(scale_tableau(&geo, 40, 9), scale_tableau(&geo, 40, 9));
        assert_ne!(scale_tableau(&geo, 40, 9), scale_tableau(&geo, 40, 10));
    }
}
