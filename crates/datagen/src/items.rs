//! Synthetic store items (books, CDs, DVDs).
//!
//! Substitution for the items the paper scraped "from online stores": a small
//! generated catalog with the same shape — an item has a type drawn from
//! {book, cd, dvd} and a title — so the constraint "ITYPE must be one of
//! book, cd, dvd" and the FD "ITEM → ITYPE" are meaningful.

use rand::rngs::StdRng;
use rand::Rng;

/// The admissible item types.
pub const ITEM_TYPES: [&str; 3] = ["book", "cd", "dvd"];

/// A store item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item title (the `ITEM` attribute).
    pub title: String,
    /// Item type (the `ITYPE` attribute), one of [`ITEM_TYPES`].
    pub item_type: String,
}

/// Generates a deterministic catalog of `n` items cycling through the three
/// item types.
pub fn item_catalog(n: usize) -> Vec<Item> {
    (0..n)
        .map(|i| {
            let item_type = ITEM_TYPES[i % ITEM_TYPES.len()];
            Item {
                title: format!("{}-{:04}", item_type, i),
                item_type: item_type.to_string(),
            }
        })
        .collect()
}

/// Picks a random item from a catalog.
pub fn random_item<'a>(catalog: &'a [Item], rng: &mut StdRng) -> &'a Item {
    &catalog[rng.gen_range(0..catalog.len())]
}

/// An item type that is *not* valid — used by the noise injector.
pub fn invalid_item_type(rng: &mut StdRng) -> String {
    let bogus = ["vinyl", "cassette", "betamax", "laserdisc"];
    bogus[rng.gen_range(0..bogus.len())].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn catalog_cycles_types_and_titles_are_unique() {
        let items = item_catalog(30);
        assert_eq!(items.len(), 30);
        assert!(items
            .iter()
            .all(|i| ITEM_TYPES.contains(&i.item_type.as_str())));
        let titles: std::collections::BTreeSet<_> = items.iter().map(|i| &i.title).collect();
        assert_eq!(titles.len(), 30);
        // Title prefix matches the type, so ITEM → ITYPE is a real FD.
        for item in &items {
            assert!(item.title.starts_with(&item.item_type));
        }
    }

    #[test]
    fn invalid_types_are_never_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let t = invalid_item_type(&mut rng);
            assert!(!ITEM_TYPES.contains(&t.as_str()));
        }
    }

    #[test]
    fn random_item_draws_from_the_catalog() {
        let items = item_catalog(5);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let item = random_item(&items, &mut rng);
            assert!(items.contains(item));
        }
    }
}
