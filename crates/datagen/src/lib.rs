//! # ecfd-datagen
//!
//! Synthetic workload generation reproducing the experimental setting of
//! Section VI of the paper.
//!
//! The paper extends the `cust` relation of Fig. 1 with information about
//! items bought by customers, scrapes real-life city / area-code / zip data
//! and online-store item data, and generates synthetic datasets parameterised
//! by `|D|` (10k–100k tuples) and `noise%` (0–9% of tuples modified to violate
//! an eCFD). The constraint workload consists of 10 eCFDs expressing the
//! semantics of the data, whose pattern tableaux are scaled from 10 to 500
//! pattern tuples with a uniform mix of wildcards, positive sets and
//! complement sets.
//!
//! We cannot scrape the original data, so [`geo`] embeds a synthetic but
//! structurally faithful catalog: most cities have a single area code while
//! NYC and LI have several, and zip prefixes determine cities. [`items`]
//! provides synthetic book / CD / DVD titles. Everything else follows the
//! paper: [`cust::generate`] produces instances with controlled noise,
//! [`constraints`] builds the 10-constraint workload and scales `|Tp|`, and
//! [`updates::generate_delta`] produces disjoint `ΔD⁺` / `ΔD⁻` batches.
//!
//! ## Example
//!
//! ```
//! use ecfd_datagen::{generate, workload_constraints, CustConfig};
//!
//! let (data, noisy_rows) = generate(&CustConfig {
//!     size: 100,
//!     noise_percent: 5.0,
//!     seed: 42,
//!     ..CustConfig::default()
//! });
//! assert_eq!(data.len(), 100);
//! assert_eq!(noisy_rows, 5); // 5% of 100 tuples were corrupted
//! assert_eq!(workload_constraints().len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod cust;
pub mod geo;
pub mod items;
pub mod updates;

pub use constraints::{scale_tableau, workload_constraints};
pub use cust::{cust_schema, generate, CustConfig};
pub use geo::{City, GeoCatalog};
pub use updates::{generate_delta, UpdateConfig};
