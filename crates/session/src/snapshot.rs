//! Epoch-stamped, immutable snapshots of a session's detection state.
//!
//! A [`Session`](crate::Session) is single-owner and mutable: one caller
//! loads, registers, applies and repairs. A [`Snapshot`] is the opposite — a
//! frozen, self-contained copy of everything a *reader* needs to answer
//! detect / explain / repair-plan queries about one relation at one point in
//! time:
//!
//! * the relation's base attributes as a [`FrozenView`] (dictionary-encoded
//!   code columns plus the issuing dictionary state, both behind `Arc`s);
//! * the compiled [`ConstraintSet`] and a lineage-matched
//!   [`SemanticDetector`] clone, so the coded pattern cells agree with the
//!   frozen dictionary;
//! * the cached [`DetectionReport`] and [`EvidenceReport`] describing that
//!   exact state;
//! * the **epoch**: the session's mutation counter at extraction time.
//!
//! Cloning a snapshot is cheap (reference-count bumps plus the report
//! clones), every accessor takes `&self`, and [`Snapshot::detect_fresh`]
//! re-derives the report from the frozen codes without any lock — so any
//! number of threads can hold and query the same snapshot while the owning
//! session keeps mutating. This is the unit the `ecfd_serve` crate publishes
//! to its readers.

use crate::error::{Result, SessionError};
use ecfd_core::ConstraintSet;
use ecfd_detect::{DetectionReport, EvidenceReport, Parallelism, SemanticDetector, ShardPartial};
use ecfd_relation::{FrozenView, Relation, Schema, Tuple};
use ecfd_repair::{Repair, RepairEngine, RepairOptions};

/// An immutable, epoch-stamped view of one relation's detection state. See
/// the module docs for the isolation contract.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) epoch: u64,
    pub(crate) table: String,
    pub(crate) schema: Schema,
    pub(crate) set: ConstraintSet,
    pub(crate) detector: SemanticDetector,
    pub(crate) frozen: FrozenView,
    pub(crate) report: DetectionReport,
    pub(crate) evidence: EvidenceReport,
}

impl Snapshot {
    /// The session's mutation counter at extraction time. Two snapshots of
    /// the same session with equal epochs describe identical data and
    /// constraint state; a later mutation always produces a larger epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Name of the snapshotted relation.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The base schema the constraints compile against (without the
    /// detector-managed `SV` / `MV` flag columns).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The compiled constraint set in force at the epoch.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.set
    }

    /// Number of rows frozen in the snapshot.
    pub fn num_rows(&self) -> usize {
        self.frozen.num_rows()
    }

    /// The frozen code columns and dictionary.
    pub fn frozen(&self) -> &FrozenView {
        &self.frozen
    }

    /// The detection report cached at extraction time (produced by whichever
    /// backend ran last — all backends agree, a property the differential
    /// suite asserts).
    pub fn report(&self) -> &DetectionReport {
        &self.report
    }

    /// The evidence behind [`Snapshot::report`]: which constraint and
    /// pattern tuple every flagged row violates, and the offending groups.
    pub fn evidence(&self) -> &EvidenceReport {
        &self.evidence
    }

    /// Re-runs detection from scratch over the frozen view — a single-pass,
    /// read-only scan that never touches the live session, takes no lock and
    /// interns nothing. The result is byte-identical to [`Snapshot::report`]
    /// (asserted by the serving layer's tests); readers call this to *verify*
    /// the published state rather than trust it.
    pub fn detect_fresh(&self) -> Result<DetectionReport> {
        let (report, _) = self.detector.detect_frozen(&self.frozen, &self.schema)?;
        Ok(report)
    }

    /// Like [`Snapshot::detect_fresh`], also re-deriving the evidence.
    pub fn detect_fresh_with_evidence(&self) -> Result<(DetectionReport, EvidenceReport)> {
        Ok(self.detector.detect_frozen(&self.frozen, &self.schema)?)
    }

    /// Materialises the frozen rows as a standalone base-schema [`Relation`]
    /// with the original row ids preserved, so report- and evidence-carried
    /// row ids remain meaningful against the copy.
    pub fn to_relation(&self) -> Result<Relation> {
        Ok(Relation::with_rows(
            self.schema.clone(),
            self.frozen
                .decode_rows()
                .into_iter()
                .map(|(id, values)| (id, Tuple::new(values))),
        )?)
    }

    // ── shard-aware composition ───────────────────────────────────────────

    /// For every split constraint of the snapshot's set, whether its `X`
    /// contains the named shard attribute — see
    /// [`SemanticDetector::aligned_mask`]. Aligned constraints resolve their
    /// multi-tuple violations within one shard; the rest go through
    /// [`Snapshot::merge_partials`].
    pub fn aligned_mask(&self, shard_key: &str) -> Result<Vec<bool>> {
        let attr = self.schema.require_attr(shard_key)?;
        Ok(self.detector.aligned_mask(&self.schema, attr)?)
    }

    /// Scans this snapshot as one partition of a row-partitioned relation,
    /// returning a mergeable partial result (see
    /// [`SemanticDetector::detect_partition`]). Read-only and lock-free,
    /// like [`Snapshot::detect_fresh`].
    pub fn detect_partition(&self, aligned: &[bool]) -> Result<ShardPartial> {
        Ok(self
            .detector
            .detect_partition(&self.frozen, &self.schema, aligned)?)
    }

    /// [`Snapshot::detect_partition`] with an explicit worker fan-out — the
    /// sharded differential suite pins 1 and N detect workers with this.
    pub fn detect_partition_with(&self, aligned: &[bool], workers: usize) -> Result<ShardPartial> {
        let detector = self
            .detector
            .clone()
            .with_parallelism(Parallelism::Fixed(workers));
        Ok(detector.detect_partition(&self.frozen, &self.schema, aligned)?)
    }

    /// Combines per-shard partials into the global report and evidence (see
    /// [`SemanticDetector::merge_partials`]). Byte-identical to a
    /// from-scratch single-session detection over the union of the shards'
    /// rows.
    pub fn merge_partials(&self, partials: Vec<ShardPartial>) -> (DetectionReport, EvidenceReport) {
        self.detector.merge_partials(partials)
    }

    /// Composes per-shard snapshots of the same relation back into one
    /// self-contained snapshot: the union of the shards' rows (sorted by row
    /// id, which reproduces the unsharded storage order — ids are allocated
    /// globally in insertion order and survivors keep their relative order),
    /// re-encoded through a fresh detector, with report and evidence derived
    /// by a from-scratch detection pass. This is the serving layer's oracle
    /// path: `CHECK` and `REPAIR-PLAN` on a sharded deployment run against
    /// the composition. The epoch is the sum of the parts' epochs — the
    /// sharded global epoch.
    pub fn compose(parts: &[&Snapshot]) -> Result<Snapshot> {
        let first = parts
            .first()
            .ok_or_else(|| SessionError::NotLoaded("<no shards>".to_string()))?;
        let mut rows: Vec<(ecfd_relation::RowId, Vec<ecfd_relation::Value>)> =
            parts.iter().flat_map(|p| p.frozen.decode_rows()).collect();
        rows.sort_by_key(|(id, _)| *id);
        let relation = Relation::with_rows(
            first.schema.clone(),
            rows.into_iter()
                .map(|(id, values)| (id, Tuple::new(values))),
        )?;
        let detector =
            SemanticDetector::from_set(&first.set).with_parallelism(first.detector.parallelism());
        let frozen = detector.freeze(&relation, first.schema.arity());
        let (report, evidence) = detector.detect_frozen(&frozen, &first.schema)?;
        Ok(Snapshot {
            epoch: parts.iter().map(|p| p.epoch).sum(),
            table: first.table.clone(),
            schema: first.schema.clone(),
            set: first.set.clone(),
            detector,
            frozen,
            report,
            evidence,
        })
    }

    /// Plans (but does not apply) a repair of the snapshot's violations: a
    /// deletion cover plus value modifications under `options`, computed on a
    /// private decoded copy of the frozen rows. Pure read-only with respect
    /// to the owning session — the serving layer exposes this as the
    /// `REPAIR-PLAN` query.
    pub fn repair_plan(&self, options: RepairOptions) -> Result<Repair> {
        let engine = RepairEngine::from_set(&self.set).with_options(options);
        let base = self.to_relation()?;
        Ok(engine.plan(&base, &self.evidence)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_send_sync_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<Snapshot>();
    }
}
