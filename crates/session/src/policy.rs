//! Backend routing: which detection strategy serves which call, and how many
//! worker threads it fans out across.

use ecfd_detect::{BackendKind, Parallelism};

/// Decides which [`BackendKind`] serves full detection passes and update
/// batches when the caller does not pick one explicitly, and the
/// [`Parallelism`] of the detection scans.
///
/// The interesting decision is the one the paper's Fig. 7(a) measures: below
/// a certain update-batch size incremental maintenance beats recomputing from
/// scratch, above it the batch pass wins. The policy mirrors that crossover
/// with a simple threshold on `|ΔD| / |D|`.
///
/// Full passes default to the native semantic backend — since the
/// dictionary-encoded columnar refactor it is the system's fast path (coded
/// pattern matching, sharded parallel scan), while the SQL backend remains
/// the paper-faithful reference implementation, selectable explicitly or via
/// [`RoutingPolicy::fixed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingPolicy {
    /// Backend for full detection passes ([`crate::Session::detect`]).
    pub detect_backend: BackendKind,
    /// Backend for update batches at or below the threshold.
    pub small_delta_backend: BackendKind,
    /// Backend for update batches above the threshold.
    pub large_delta_backend: BackendKind,
    /// An update batch is "small" when `delta.len() <= threshold ×
    /// current table size`. The paper's crossover sits somewhere below a
    /// third of the data size on its workloads.
    pub incremental_max_fraction: f64,
    /// Worker fan-out of the (semantic) detection scans: all available cores
    /// by default, or a fixed count. Applied to the backends at registration
    /// time and whenever the policy is replaced.
    pub parallelism: Parallelism,
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        RoutingPolicy {
            detect_backend: BackendKind::Semantic,
            small_delta_backend: BackendKind::Incremental,
            large_delta_backend: BackendKind::Semantic,
            incremental_max_fraction: 0.25,
            parallelism: Parallelism::Auto,
        }
    }
}

impl RoutingPolicy {
    /// A policy that always uses `kind`, for every call shape.
    pub fn fixed(kind: BackendKind) -> Self {
        RoutingPolicy {
            detect_backend: kind,
            small_delta_backend: kind,
            large_delta_backend: kind,
            ..RoutingPolicy::default()
        }
    }

    /// The same policy with a different worker fan-out.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The routing decision for an update batch of `delta_len` tuples against
    /// a table currently holding `table_len` rows.
    pub fn route_delta(&self, delta_len: usize, table_len: usize) -> BackendKind {
        let budget = self.incremental_max_fraction * table_len as f64;
        if delta_len as f64 <= budget {
            self.small_delta_backend
        } else {
            self.large_delta_backend
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_routes_by_delta_size() {
        let policy = RoutingPolicy::default();
        assert_eq!(policy.detect_backend, BackendKind::Semantic);
        assert_eq!(policy.parallelism, Parallelism::Auto);
        assert_eq!(policy.route_delta(10, 1000), BackendKind::Incremental);
        assert_eq!(policy.route_delta(250, 1000), BackendKind::Incremental);
        assert_eq!(policy.route_delta(251, 1000), BackendKind::Semantic);
        // An empty table pushes everything to the batch path.
        assert_eq!(policy.route_delta(1, 0), BackendKind::Semantic);
    }

    #[test]
    fn fixed_policy_never_routes_elsewhere() {
        let policy = RoutingPolicy::fixed(BackendKind::Sql);
        assert_eq!(policy.detect_backend, BackendKind::Sql);
        assert_eq!(policy.route_delta(1, 1000), BackendKind::Sql);
        assert_eq!(policy.route_delta(999, 1000), BackendKind::Sql);
    }

    #[test]
    fn plan_backend_is_routable_like_any_other() {
        let policy = RoutingPolicy::fixed(BackendKind::Plan);
        assert_eq!(policy.detect_backend, BackendKind::Plan);
        assert_eq!(policy.route_delta(1, 1000), BackendKind::Plan);
        assert_eq!(policy.route_delta(999, 1000), BackendKind::Plan);
    }

    #[test]
    fn parallelism_is_part_of_the_policy() {
        let policy = RoutingPolicy::default().with_parallelism(Parallelism::Fixed(2));
        assert_eq!(policy.parallelism, Parallelism::Fixed(2));
        let fixed =
            RoutingPolicy::fixed(BackendKind::Semantic).with_parallelism(Parallelism::Fixed(1));
        assert_eq!(fixed.parallelism.threads(), 1);
    }
}
