//! Backend routing: which detection strategy serves which call.

use ecfd_detect::BackendKind;

/// Decides which [`BackendKind`] serves full detection passes and update
/// batches when the caller does not pick one explicitly.
///
/// The interesting decision is the one the paper's Fig. 7(a) measures: below
/// a certain update-batch size incremental maintenance beats recomputing from
/// scratch, above it the batch pass wins. The policy mirrors that crossover
/// with a simple threshold on `|ΔD| / |D|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingPolicy {
    /// Backend for full detection passes ([`crate::Session::detect`]).
    pub detect_backend: BackendKind,
    /// Backend for update batches at or below the threshold.
    pub small_delta_backend: BackendKind,
    /// Backend for update batches above the threshold.
    pub large_delta_backend: BackendKind,
    /// An update batch is "small" when `delta.len() <= threshold ×
    /// current table size`. The paper's crossover sits somewhere below a
    /// third of the data size on its workloads.
    pub incremental_max_fraction: f64,
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        RoutingPolicy {
            detect_backend: BackendKind::Sql,
            small_delta_backend: BackendKind::Incremental,
            large_delta_backend: BackendKind::Sql,
            incremental_max_fraction: 0.25,
        }
    }
}

impl RoutingPolicy {
    /// A policy that always uses `kind`, for every call shape.
    pub fn fixed(kind: BackendKind) -> Self {
        RoutingPolicy {
            detect_backend: kind,
            small_delta_backend: kind,
            large_delta_backend: kind,
            incremental_max_fraction: 0.25,
        }
    }

    /// The routing decision for an update batch of `delta_len` tuples against
    /// a table currently holding `table_len` rows.
    pub fn route_delta(&self, delta_len: usize, table_len: usize) -> BackendKind {
        let budget = self.incremental_max_fraction * table_len as f64;
        if delta_len as f64 <= budget {
            self.small_delta_backend
        } else {
            self.large_delta_backend
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_routes_by_delta_size() {
        let policy = RoutingPolicy::default();
        assert_eq!(policy.route_delta(10, 1000), BackendKind::Incremental);
        assert_eq!(policy.route_delta(250, 1000), BackendKind::Incremental);
        assert_eq!(policy.route_delta(251, 1000), BackendKind::Sql);
        // An empty table pushes everything to the batch path.
        assert_eq!(policy.route_delta(1, 0), BackendKind::Sql);
    }

    #[test]
    fn fixed_policy_never_routes_elsewhere() {
        let policy = RoutingPolicy::fixed(BackendKind::Semantic);
        assert_eq!(policy.detect_backend, BackendKind::Semantic);
        assert_eq!(policy.route_delta(1, 1000), BackendKind::Semantic);
        assert_eq!(policy.route_delta(999, 1000), BackendKind::Semantic);
    }
}
