//! The [`Session`] type: one stateful object for the whole constraint
//! lifecycle. See the crate docs for the lifecycle state machine and the
//! cache-invalidation rules.

use crate::error::{Result, SessionError};
use crate::policy::RoutingPolicy;
use crate::snapshot::Snapshot;
use ecfd_core::{CompileOptions, ConstraintSet, ECfd};
use ecfd_detect::backend::{
    BackendKind, DetectorBackend, IncrementalBackend, SemanticBackend, SqlBackend,
};
use ecfd_detect::{DetectionReport, EvidenceReport};
use ecfd_plan::PlanBackend;
use ecfd_relation::{Catalog, Delta, Relation, RowId, Schema};
use ecfd_repair::{
    base_relation, repair_verified_with, ConflictGraph, CostModel, RepairEngine, RepairOptions,
    VerifiedRepair,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where a relation sits in the session lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Data loaded, no constraints registered yet.
    Loaded,
    /// Constraints compiled and registered; no current detection result.
    Registered,
    /// A detection result (flags + evidence) is cached and current.
    Detected,
    /// The last mutation was a verified repair; the cached result is clean.
    Repaired,
}

/// A cached detection outcome: which backend produced it, the flag-level
/// report, the attributing evidence, and the session version it describes.
///
/// The stamp is what makes cache-serving safe by construction: a cached
/// result is served only while `at_version` equals the session's mutation
/// counter, so *any* operation that bumps the version — including ones that
/// do not touch this entry's cache field, like a cost-model swap or a
/// mutation routed through a different entry's backend — automatically
/// retires it instead of relying on every such code path to remember to
/// clear it.
#[derive(Debug, Clone)]
struct Cached {
    kind: BackendKind,
    report: DetectionReport,
    evidence: EvidenceReport,
    at_version: u64,
}

/// Everything the session holds for one registered relation.
struct Entry {
    set: ConstraintSet,
    semantic: SemanticBackend,
    /// The SQL backend, or the reason it cannot serve this set (non-string
    /// constrained attributes are outside the SQL encoding's envelope).
    sql: std::result::Result<SqlBackend, String>,
    incremental: IncrementalBackend,
    plan: PlanBackend,
    repair: RepairEngine,
    cache: Option<Cached>,
    stage: Stage,
}

impl Entry {
    fn backend_mut(&mut self, kind: BackendKind) -> Result<&mut dyn DetectorBackend> {
        match kind {
            BackendKind::Semantic => Ok(&mut self.semantic),
            BackendKind::Incremental => Ok(&mut self.incremental),
            BackendKind::Plan => Ok(&mut self.plan),
            BackendKind::Sql => match &mut self.sql {
                Ok(backend) => Ok(backend),
                Err(reason) => Err(SessionError::BackendUnavailable {
                    kind: BackendKind::Sql,
                    reason: reason.clone(),
                }),
            },
        }
    }
}

/// A long-lived constraint-management session: owns the catalog, a registry
/// of compiled constraint sets, and the three detector backends per set, with
/// detection/evidence state cached and invalidated on mutation.
///
/// See the crate-level docs for the lifecycle and invalidation rules; see
/// [`RoutingPolicy`] for how backends are picked when a call does not name
/// one.
pub struct Session {
    catalog: Catalog,
    policy: RoutingPolicy,
    compile: CompileOptions,
    cost: Arc<dyn CostModel + Send + Sync>,
    /// Base schema of every loaded relation, keyed by relation name. The
    /// *stored* schema may grow detector-managed `SV` / `MV` columns; the
    /// base schema is what constraints compile against and what
    /// [`Session::data`] projects back to.
    loaded: BTreeMap<String, Schema>,
    tables: BTreeMap<String, Entry>,
    /// Mutation counter: bumped by every operation that can change what a
    /// detection-state snapshot would contain (data, constraints, compile
    /// options, cost model). Snapshots are stamped with it as their epoch.
    version: u64,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// An empty session with the default [`RoutingPolicy`], default
    /// [`CompileOptions`] and the constant cost model.
    pub fn new() -> Self {
        Session {
            catalog: Catalog::new(),
            policy: RoutingPolicy::default(),
            compile: CompileOptions::default(),
            cost: Arc::new(ecfd_repair::ConstantCost::default()),
            loaded: BTreeMap::new(),
            tables: BTreeMap::new(),
            version: 0,
        }
    }

    /// Replaces the routing policy, retrofitting its [`Parallelism`] onto
    /// every already-registered backend.
    ///
    /// [`Parallelism`]: ecfd_detect::Parallelism
    pub fn with_policy(mut self, policy: RoutingPolicy) -> Self {
        self.policy = policy;
        for entry in self.tables.values_mut() {
            entry.semantic.set_parallelism(policy.parallelism);
            entry.incremental.set_parallelism(policy.parallelism);
            entry.plan.set_parallelism(policy.parallelism);
        }
        self
    }

    /// Replaces the constraint-compilation options used by subsequent
    /// [`Session::register`] calls. Already-registered sets keep the options
    /// they were compiled under — use [`Session::set_compile_options`] to
    /// recompile them.
    pub fn with_compile_options(mut self, options: CompileOptions) -> Self {
        self.compile = options;
        self
    }

    /// Replaces the compilation options *and* recompiles every registered
    /// constraint set under them (dropping all cached detection state).
    pub fn set_compile_options(&mut self, options: CompileOptions) -> Result<()> {
        self.compile = options;
        let names: Vec<String> = self.tables.keys().cloned().collect();
        let mut rebuilt = Vec::with_capacity(names.len());
        for name in names {
            let entry = self.tables.get(&name).expect("iterating own keys");
            let schema = entry.set.schema().clone();
            let source = entry.set.source().to_vec();
            rebuilt.push((name, self.build_entry(&schema, &source)?));
        }
        for (name, entry) in rebuilt {
            self.tables.insert(name, entry);
        }
        self.version += 1;
        Ok(())
    }

    /// Replaces the repair cost model, for already-registered relations as
    /// well as future registrations.
    pub fn with_cost_model(mut self, cost: impl CostModel + Send + Sync + 'static) -> Self {
        self.cost = Arc::new(cost);
        for entry in self.tables.values_mut() {
            entry.repair =
                RepairEngine::from_set(&entry.set).with_cost_model_arc(self.cost.clone());
        }
        self.version += 1;
        self
    }

    // ── lifecycle: load ────────────────────────────────────────────────────

    /// Loads a relation into the session (replacing any previous relation of
    /// the same name). If constraints are already registered for the name
    /// they are kept and recompiled when the schema changed; all cached
    /// detection state for the relation is dropped.
    pub fn load(&mut self, relation: Relation) -> Result<()> {
        let name = relation.name().to_string();
        let schema = relation.schema().clone();
        // Recompile (when the schema changed) *before* touching any session
        // state, so a failing compile leaves catalog, registry and caches
        // exactly as they were.
        let rebuilt = match self.tables.get(&name) {
            Some(entry) if entry.set.schema() != &schema => {
                let source = entry.set.source().to_vec();
                Some(self.build_entry(&schema, &source)?)
            }
            _ => None,
        };
        self.catalog.create_or_replace(relation);
        self.loaded.insert(name.clone(), schema);
        self.version += 1;
        if let Some(rebuilt) = rebuilt {
            self.tables.insert(name, rebuilt);
        } else if let Some(entry) = self.tables.get_mut(&name) {
            entry.cache = None;
            entry.incremental.invalidate();
            entry.stage = Stage::Registered;
        }
        Ok(())
    }

    // ── lifecycle: register ────────────────────────────────────────────────

    /// Registers constraints, compiling them once into the session's
    /// [`ConstraintSet`] registry. Constraints are grouped by the relation
    /// they name (which must already be loaded); registering more constraints
    /// for a relation extends its set, and the union is recompiled
    /// (validate → minimize → normalize → dedupe) so duplicates collapse.
    /// Invalidates cached detection state for every touched relation.
    /// Registration is atomic: if any constraint fails to compile, no
    /// relation's set changes.
    pub fn register(&mut self, constraints: &[ECfd]) -> Result<()> {
        let mut groups: BTreeMap<String, Vec<ECfd>> = BTreeMap::new();
        for constraint in constraints {
            groups
                .entry(constraint.relation().to_string())
                .or_default()
                .push(constraint.clone());
        }
        // Stage every recompiled entry first; commit only when all succeed.
        let mut staged: Vec<(String, Entry)> = Vec::with_capacity(groups.len());
        for (name, group) in groups {
            let schema = self
                .loaded
                .get(&name)
                .ok_or_else(|| SessionError::NotLoaded(name.clone()))?
                .clone();
            let mut source: Vec<ECfd> = self
                .tables
                .get(&name)
                .map(|entry| entry.set.source().to_vec())
                .unwrap_or_default();
            source.extend(group);
            let entry = self.build_entry(&schema, &source)?;
            staged.push((name, entry));
        }
        for (name, entry) in staged {
            self.tables.insert(name, entry);
        }
        self.version += 1;
        Ok(())
    }

    /// Parses the textual constraint syntax and registers the result.
    pub fn register_text(&mut self, text: &str) -> Result<()> {
        let constraints = ecfd_core::parse_ecfds(text)?;
        self.register(&constraints)
    }

    fn build_entry(&self, schema: &Schema, source: &[ECfd]) -> Result<Entry> {
        let set = ConstraintSet::compile_with(schema, source, self.compile)?;
        let sql = SqlBackend::from_set(&set).map_err(|e| e.to_string());
        // Pattern constants resolve to dictionary codes inside the backends'
        // `from_set` constructors — once, here, at registration time.
        let mut semantic = SemanticBackend::from_set(&set);
        semantic.set_parallelism(self.policy.parallelism);
        let mut incremental = IncrementalBackend::from_set(&set);
        incremental.set_parallelism(self.policy.parallelism);
        let mut plan = PlanBackend::from_set(&set)?;
        plan.set_parallelism(self.policy.parallelism);
        Ok(Entry {
            semantic,
            incremental,
            plan,
            repair: RepairEngine::from_set(&set).with_cost_model_arc(self.cost.clone()),
            sql,
            set,
            cache: None,
            stage: Stage::Registered,
        })
    }

    // ── lifecycle: detect / explain ────────────────────────────────────────

    /// Detects violations on the session's sole registered relation, serving
    /// the cached result when one is current. The backend is the policy's
    /// `detect_backend` — use [`Session::detect_with`] to force one.
    pub fn detect(&mut self) -> Result<DetectionReport> {
        self.detect_impl(None, None)
    }

    /// [`Session::detect`] against a named relation.
    pub fn detect_on(&mut self, table: &str) -> Result<DetectionReport> {
        self.detect_impl(Some(table), None)
    }

    /// Runs detection with an explicitly chosen backend, bypassing the cache
    /// (the fresh result replaces it).
    pub fn detect_with(&mut self, kind: BackendKind) -> Result<DetectionReport> {
        self.detect_impl(None, Some(kind))
    }

    /// [`Session::detect_with`] against a named relation.
    pub fn detect_on_with(&mut self, table: &str, kind: BackendKind) -> Result<DetectionReport> {
        self.detect_impl(Some(table), Some(kind))
    }

    fn detect_impl(
        &mut self,
        table: Option<&str>,
        kind: Option<BackendKind>,
    ) -> Result<DetectionReport> {
        let name = self.resolve(table)?;
        let version = self.version;
        let entry = self.tables.get_mut(&name).expect("resolved");
        if kind.is_none() {
            // Serve the cache only when it was produced at the current
            // version: a stamp mismatch means some later mutation (possibly
            // through another entry or a policy/cost change) could have
            // changed what a fresh pass would report.
            if let Some(cached) = entry.cache.as_ref().filter(|c| c.at_version == version) {
                ecfd_obs::registry()
                    .counter("session.detect.cache.hits")
                    .inc();
                return Ok(cached.report.clone());
            }
        }
        let kind = kind.unwrap_or(self.policy.detect_backend);
        ecfd_obs::registry()
            .counter_with("session.detect.passes", &[("backend", kind.as_str())])
            .inc();
        let (report, evidence) = entry.backend_mut(kind)?.detect(&mut self.catalog)?;
        entry.cache = Some(Cached {
            kind,
            report: report.clone(),
            evidence,
            at_version: version,
        });
        entry.stage = Stage::Detected;
        Ok(report)
    }

    /// The evidence behind the current detection result — which constraint
    /// and pattern tuple every flagged row violates, and the offending
    /// enforcement groups. Runs detection first when nothing is cached.
    pub fn explain(&mut self) -> Result<EvidenceReport> {
        self.explain_on_impl(None)
    }

    /// [`Session::explain`] against a named relation.
    pub fn explain_on(&mut self, table: &str) -> Result<EvidenceReport> {
        self.explain_on_impl(Some(table))
    }

    fn explain_on_impl(&mut self, table: Option<&str>) -> Result<EvidenceReport> {
        let name = self.resolve(table)?;
        self.detect_impl(Some(&name), None)?;
        let entry = self.tables.get(&name).expect("resolved");
        Ok(entry
            .cache
            .as_ref()
            .expect("just detected")
            .evidence
            .clone())
    }

    /// The conflict graph of the current violations (who conflicts with whom,
    /// and what a deletion repair is up against). Runs detection first when
    /// nothing is cached.
    pub fn conflict_graph(&mut self) -> Result<ConflictGraph> {
        let name = self.resolve(None)?;
        let evidence = self.explain_on_impl(Some(&name))?;
        let entry = self.tables.get(&name).expect("resolved");
        let base = base_relation(self.catalog.get(&name)?, entry.set.schema())?;
        entry
            .repair
            .conflict_graph(&base, &evidence)
            .map_err(Into::into)
    }

    // ── lifecycle: apply ───────────────────────────────────────────────────

    /// Applies a batch of base-schema updates to the sole registered
    /// relation, keeping flags, caches and auxiliary state current. The
    /// backend is chosen by the routing policy's delta-size threshold —
    /// incremental maintenance for small batches, a fresh batch pass for
    /// large ones (the crossover of the paper's Fig. 7a).
    pub fn apply(&mut self, delta: &Delta) -> Result<DetectionReport> {
        self.apply_impl(None, None, delta)
    }

    /// [`Session::apply`] against a named relation.
    pub fn apply_on(&mut self, table: &str, delta: &Delta) -> Result<DetectionReport> {
        self.apply_impl(Some(table), None, delta)
    }

    /// Applies updates through an explicitly chosen backend.
    pub fn apply_with(&mut self, kind: BackendKind, delta: &Delta) -> Result<DetectionReport> {
        self.apply_impl(None, Some(kind), delta)
    }

    /// [`Session::apply_on`] with globally pre-assigned row ids for the
    /// delta's insertions: the k-th insertion receives `insert_ids[k]`
    /// instead of the relation's own sequential counter (extra insertions
    /// beyond the schedule fall back to it). A sharded serving layer uses
    /// this so a partition hands out the same ids a single-owner session
    /// would — the invariant that makes merged reports byte-identical to the
    /// unsharded oracle. The schedule is cleared afterwards whether the
    /// apply succeeded or not.
    pub fn apply_scheduled_on(
        &mut self,
        table: &str,
        delta: &Delta,
        insert_ids: &[RowId],
    ) -> Result<DetectionReport> {
        let name = self.resolve(Some(table))?;
        {
            // Direct catalog access on purpose: scheduling ids changes no
            // observable contents, so no cache needs invalidating.
            let relation = self.catalog.get_mut(&name)?;
            relation.clear_scheduled_row_ids();
            relation.schedule_row_ids(insert_ids.iter().copied());
        }
        let result = self.apply_impl(Some(&name), None, delta);
        if let Ok(relation) = self.catalog.get_mut(&name) {
            relation.clear_scheduled_row_ids();
        }
        result
    }

    fn apply_impl(
        &mut self,
        table: Option<&str>,
        kind: Option<BackendKind>,
        delta: &Delta,
    ) -> Result<DetectionReport> {
        let name = self.resolve(table)?;
        let table_len = self.catalog.get(&name)?.len();
        let entry = self.tables.get_mut(&name).expect("resolved");
        let kind = kind.unwrap_or_else(|| self.policy.route_delta(delta.len(), table_len));
        ecfd_obs::registry()
            .counter_with("session.apply.routed", &[("backend", kind.as_str())])
            .inc();
        let (report, evidence) = match entry.backend_mut(kind)?.apply(&mut self.catalog, delta) {
            Ok(out) => out,
            Err(e) => {
                // The backend may have mutated part of the table (e.g. the
                // deletions of a mixed delta) before failing on the rest —
                // nothing cached describes the table any more. Drop it all so
                // the next detect rebuilds from the actual contents.
                entry.cache = None;
                entry.incremental.invalidate();
                if entry.stage > Stage::Registered {
                    entry.stage = Stage::Registered;
                }
                self.version += 1;
                return Err(e.into());
            }
        };
        if kind != BackendKind::Incremental {
            // The rows changed behind the incremental maintainer's back; its
            // auxiliary group state no longer describes the table.
            entry.incremental.invalidate();
        }
        // Bump *before* stamping: the fresh result describes the post-apply
        // contents, so it must carry the post-apply version to stay servable.
        self.version += 1;
        entry.cache = Some(Cached {
            kind,
            report: report.clone(),
            evidence,
            at_version: self.version,
        });
        entry.stage = Stage::Detected;
        Ok(report)
    }

    // ── lifecycle: repair ──────────────────────────────────────────────────

    /// Repairs the sole registered relation until it verifies clean, driving
    /// the repair engine from the session-held evidence: the cached detection
    /// result seeds the loop's first planning round, and when the incremental
    /// backend's maintenance state is warm the loop starts from it directly —
    /// no seeding re-scan at all. Uses default [`RepairOptions`].
    pub fn repair(&mut self) -> Result<VerifiedRepair> {
        self.repair_impl(None, RepairOptions::default())
    }

    /// [`Session::repair`] with explicit options.
    pub fn repair_with(&mut self, options: RepairOptions) -> Result<VerifiedRepair> {
        self.repair_impl(None, options)
    }

    /// [`Session::repair_with`] against a named relation.
    pub fn repair_on(&mut self, table: &str, options: RepairOptions) -> Result<VerifiedRepair> {
        self.repair_impl(Some(table), options)
    }

    fn repair_impl(
        &mut self,
        table: Option<&str>,
        options: RepairOptions,
    ) -> Result<VerifiedRepair> {
        let name = self.resolve(table)?;
        self.detect_impl(Some(&name), None)?;
        let entry = self.tables.get_mut(&name).expect("resolved");
        let seed = entry.cache.as_ref().map(|c| c.evidence.clone());
        entry.repair.set_options(options);
        // Warm incremental state means flags and group structure already
        // describe the table — hand it to the loop and skip the seeding
        // pass; otherwise run one pass from the compiled set. Either way the
        // loop maintains the state, so it is handed back warm afterwards.
        let mut inc = match entry.incremental.take_state() {
            Some(state) => state,
            None => ecfd_detect::IncrementalDetector::from_set(&entry.set, &mut self.catalog)?,
        };
        let outcome = repair_verified_with(&entry.repair, &mut self.catalog, &mut inc, seed)?;
        entry.incremental.put_state(inc);
        // Bump *before* stamping, as in `apply_impl`: the clean report
        // describes the repaired contents.
        self.version += 1;
        entry.cache = Some(Cached {
            kind: BackendKind::Semantic,
            report: outcome.final_report.clone(),
            evidence: EvidenceReport {
                total_rows: outcome.final_report.total_rows,
                ..Default::default()
            },
            at_version: self.version,
        });
        entry.stage = Stage::Repaired;
        Ok(outcome)
    }

    // ── state & accessors ──────────────────────────────────────────────────

    /// Lifecycle stage of a relation: `None` when the name was never loaded,
    /// [`Stage::Loaded`] when loaded but without registered constraints.
    pub fn stage_of(&self, table: &str) -> Option<Stage> {
        match self.tables.get(table) {
            Some(entry) => Some(entry.stage),
            None => self.loaded.contains_key(table).then_some(Stage::Loaded),
        }
    }

    /// Lifecycle stage of the session's sole relation (registered if any,
    /// otherwise the sole loaded one).
    pub fn stage(&self) -> Option<Stage> {
        if let Ok(name) = self.resolve(None) {
            return self.stage_of(&name);
        }
        if self.tables.is_empty() && self.loaded.len() == 1 {
            return Some(Stage::Loaded);
        }
        None
    }

    /// The backend that produced the current cached detection result, or
    /// `None` when the cache is stale (produced at an earlier session
    /// version) or absent.
    pub fn last_backend(&self) -> Option<BackendKind> {
        self.current_cache().map(|c| c.kind)
    }

    /// The cached detection report, if current — `None` when the cache is
    /// stale (produced at an earlier session version) or absent.
    pub fn report(&self) -> Option<&DetectionReport> {
        self.current_cache().map(|c| &c.report)
    }

    /// The sole relation's cache, only if stamped at the current version.
    fn current_cache(&self) -> Option<&Cached> {
        let name = self.resolve(None).ok()?;
        self.tables
            .get(&name)?
            .cache
            .as_ref()
            .filter(|c| c.at_version == self.version)
    }

    // ── snapshots ──────────────────────────────────────────────────────────

    /// The session's mutation counter: bumped by every operation that can
    /// change what a [`Snapshot`] would contain (loading data, registering
    /// constraints, applying deltas, repairing, recompiling, invalidating).
    /// Serving layers use it as the epoch stamp — equal versions mean a
    /// published snapshot is still current.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Extracts an immutable, epoch-stamped [`Snapshot`] of the sole
    /// registered relation: the frozen base-attribute view and dictionary,
    /// the compiled constraint set with a lineage-matched detector, and the
    /// current report/evidence (running detection first when nothing is
    /// cached). The snapshot is self-contained — cloning it is cheap, every
    /// query on it is read-only, and later session mutations never affect it.
    ///
    /// When the incremental backend's maintenance state is warm, the frozen
    /// view is cloned straight from it (the rows are already encoded); the
    /// cold path encodes the table once through the semantic detector's
    /// dictionary.
    pub fn snapshot(&mut self) -> Result<Snapshot> {
        let name = self.resolve(None)?;
        self.snapshot_of(&name)
    }

    /// [`Session::snapshot`] against a named relation.
    pub fn snapshot_of(&mut self, table: &str) -> Result<Snapshot> {
        let name = self.resolve(Some(table))?;
        // Make sure a report/evidence pair describing the current contents is
        // cached (served from the cache when already current).
        self.detect_impl(Some(&name), None)?;
        let entry = self.tables.get(&name).expect("resolved");
        let cached = entry.cache.as_ref().expect("just detected");
        let schema = entry.set.schema().clone();
        let (frozen, detector) = match entry.incremental.detector() {
            // Warm incremental state: its maintained view *is* the current
            // encoding of the table — freeze is a clone, not a re-encode.
            Some(inc) => (inc.freeze(), inc.semantic().clone()),
            None => {
                let relation = self.catalog.get(&name)?;
                let detector = entry.semantic.detector();
                (detector.freeze(relation, schema.arity()), detector.clone())
            }
        };
        Ok(Snapshot {
            epoch: self.version,
            table: name,
            schema,
            set: entry.set.clone(),
            detector,
            frozen,
            report: cached.report.clone(),
            evidence: cached.evidence.clone(),
        })
    }

    /// The compiled constraint set registered for a relation.
    pub fn constraints(&self, table: &str) -> Result<&ConstraintSet> {
        self.tables
            .get(table)
            .map(|entry| &entry.set)
            .ok_or_else(|| self.missing(table))
    }

    /// The current contents of a relation, projected back onto its base
    /// schema (without the detector-managed `SV` / `MV` flag columns).
    pub fn data(&self, table: &str) -> Result<Relation> {
        let schema = self
            .loaded
            .get(table)
            .ok_or_else(|| SessionError::NotLoaded(table.to_string()))?;
        base_relation(self.catalog.get(table)?, schema).map_err(Into::into)
    }

    /// Read access to the owned catalog (data tables plus whatever encoding /
    /// auxiliary relations the backends installed).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Write access to the owned catalog. Mutating data behind the session's
    /// back would desynchronise every cache, so this drops all cached
    /// detection state first — prefer [`Session::apply`] for updates.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        self.invalidate();
        &mut self.catalog
    }

    /// Drops all cached detection state and auxiliary backend state, for
    /// every relation. The next `detect` / `apply` rebuilds from the current
    /// table contents.
    pub fn invalidate(&mut self) {
        self.version += 1;
        for entry in self.tables.values_mut() {
            entry.cache = None;
            entry.incremental.invalidate();
            if entry.stage > Stage::Registered {
                entry.stage = Stage::Registered;
            }
        }
    }

    /// Names of every loaded relation.
    pub fn loaded_tables(&self) -> Vec<&str> {
        self.loaded.keys().map(String::as_str).collect()
    }

    /// Names of every relation with registered constraints.
    pub fn registered_tables(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    // ── internals ──────────────────────────────────────────────────────────

    fn resolve(&self, table: Option<&str>) -> Result<String> {
        match table {
            Some(name) => {
                if self.tables.contains_key(name) {
                    Ok(name.to_string())
                } else {
                    Err(self.missing(name))
                }
            }
            None => {
                let mut names = self.tables.keys();
                match (names.next(), names.next()) {
                    (Some(name), None) => Ok(name.clone()),
                    (Some(_), Some(_)) => Err(SessionError::AmbiguousRelation(
                        self.registered_tables()
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                    )),
                    (None, _) => Err(match self.loaded.keys().next() {
                        Some(name) => SessionError::NoConstraints(name.clone()),
                        None => SessionError::NotLoaded("<none>".to_string()),
                    }),
                }
            }
        }
    }

    fn missing(&self, table: &str) -> SessionError {
        if self.loaded.contains_key(table) {
            SessionError::NoConstraints(table.to_string())
        } else {
            SessionError::NotLoaded(table.to_string())
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("loaded", &self.loaded.keys().collect::<Vec<_>>())
            .field("registered", &self.tables.keys().collect::<Vec<_>>())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}
