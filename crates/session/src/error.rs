//! Errors of the session layer.

use ecfd_detect::BackendKind;
use std::fmt;

/// Result alias for session operations.
pub type Result<T> = std::result::Result<T, SessionError>;

/// Errors produced by the session layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Error from the constraint library (parsing, validation, compilation).
    Core(ecfd_core::CoreError),
    /// Error from the detection layer.
    Detect(ecfd_detect::DetectError),
    /// Error from the repair layer.
    Repair(ecfd_repair::RepairError),
    /// Error from the storage layer.
    Relation(ecfd_relation::RelationError),
    /// Constraints were registered against a relation the session has not
    /// loaded.
    NotLoaded(String),
    /// An operation needed registered constraints but the named relation has
    /// none.
    NoConstraints(String),
    /// A default-relation operation ran while the session manages several
    /// registered relations — use the `*_on` variant naming one of them.
    AmbiguousRelation(Vec<String>),
    /// A specific backend was requested but cannot serve this constraint set
    /// (e.g. the SQL encoding on non-string attributes).
    BackendUnavailable {
        /// The requested backend.
        kind: BackendKind,
        /// Why it is unavailable.
        reason: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Core(e) => write!(f, "constraint error: {e}"),
            SessionError::Detect(e) => write!(f, "detection error: {e}"),
            SessionError::Repair(e) => write!(f, "repair error: {e}"),
            SessionError::Relation(e) => write!(f, "storage error: {e}"),
            SessionError::NotLoaded(table) => {
                write!(f, "relation `{table}` has not been loaded into the session")
            }
            SessionError::NoConstraints(table) => {
                write!(f, "no constraints registered for relation `{table}`")
            }
            SessionError::AmbiguousRelation(tables) => write!(
                f,
                "several relations are registered ({}); name one explicitly",
                tables.join(", ")
            ),
            SessionError::BackendUnavailable { kind, reason } => {
                write!(f, "the {kind} backend is unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ecfd_core::CoreError> for SessionError {
    fn from(e: ecfd_core::CoreError) -> Self {
        SessionError::Core(e)
    }
}

impl From<ecfd_detect::DetectError> for SessionError {
    fn from(e: ecfd_detect::DetectError) -> Self {
        SessionError::Detect(e)
    }
}

impl From<ecfd_repair::RepairError> for SessionError {
    fn from(e: ecfd_repair::RepairError) -> Self {
        SessionError::Repair(e)
    }
}

impl From<ecfd_relation::RelationError> for SessionError {
    fn from(e: ecfd_relation::RelationError) -> Self {
        SessionError::Relation(e)
    }
}
