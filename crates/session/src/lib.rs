//! # ecfd-session
//!
//! One stateful object for the whole eCFD lifecycle. The paper's systems
//! pitch is that detection is a *fixed-query service* sitting on top of a
//! database: constraints are encoded once, and the per-query work is
//! independent of how many eCFDs are checked. [`Session`] is that service as
//! an API — it owns the [`Catalog`](ecfd_relation::Catalog), a registry of
//! compiled [`ConstraintSet`](ecfd_core::ConstraintSet)s, and the four
//! detector backends per set, so callers stop hand-wiring
//! `SemanticDetector` / `BatchDetector` / `IncrementalDetector` /
//! `PlanBackend` / `RepairEngine` object graphs and re-compiling the same
//! constraints per detector. (Those types remain exported from their crates
//! as the low-level layer.)
//!
//! ## Lifecycle state machine
//!
//! Each relation managed by a session moves through four stages
//! ([`Stage`]):
//!
//! ```text
//!             load                 register              detect / apply
//!  (empty) ─────────▶ Loaded ─────────────▶ Registered ───────────────▶ Detected
//!                       ▲                      ▲    ▲                      │
//!                       │ load (re-load data)  │    │                      │ repair
//!                       └──────────────────────┘    │                      ▼
//!                                                   └──────────────── Repaired
//! ```
//!
//! * **Loaded** — [`Session::load`] put the relation into the catalog; no
//!   constraints yet.
//! * **Registered** — [`Session::register`] compiled constraints for it
//!   (validate → optional implication-based minimization → normalize →
//!   dedupe → split, see [`ecfd_core::ConstraintSet`]); all four backends
//!   are built from the one compiled set (the plan backend additionally
//!   lowers it to an `ecfd_plan::Plan` here, once).
//! * **Detected** — a detection result (flags + evidence) is cached and
//!   describes the current table contents. [`Session::detect`],
//!   [`Session::explain`] and [`Session::apply`] land here.
//! * **Repaired** — [`Session::repair`] ran the verified repair loop; the
//!   cached result is the (verified clean) final report.
//!
//! ## What invalidates what
//!
//! | operation                  | cached report/evidence | incremental aux state |
//! |----------------------------|------------------------|-----------------------|
//! | `load` (same name again)   | dropped                | dropped               |
//! | `register` (more rules)    | dropped                | dropped               |
//! | `detect` (cache present)   | served, nothing runs   | kept                  |
//! | `detect_with(kind)`        | replaced               | kept (see below)      |
//! | `apply` via incremental    | replaced               | maintained            |
//! | `apply` via semantic / SQL / plan | replaced        | dropped               |
//! | `apply` that errors        | dropped (table may be partially mutated) | dropped |
//! | `repair`                   | replaced (clean)       | maintained            |
//! | `catalog_mut` / `invalidate` | dropped              | dropped               |
//! | `with_policy` (new [`Parallelism`]) | kept          | kept (fan-out retrofitted) |
//! | `with_cost_model` / `set_compile_options` | retired (version bump) | kept / dropped |
//!
//! A full detection pass rewrites the `SV` / `MV` flag columns but does not
//! move rows, so the incremental backend's group state stays valid across
//! `detect_with` regardless of which backend ran. Updates applied through a
//! non-incremental backend *do* move rows, which is why they drop it.
//!
//! Beyond the explicit drops in the table, every cached result carries the
//! session version it was produced at, and is served (by `detect`,
//! [`Session::report`], [`Session::last_backend`], snapshots) only while
//! that stamp equals the current version. Any operation that bumps the
//! version — including ones that deliberately *keep* cache fields, like a
//! cost-model swap — therefore retires stale results by construction rather
//! than by each code path remembering to clear them.
//!
//! ## Backend routing and parallelism
//!
//! Every detection-shaped call can name a [`BackendKind`] explicitly
//! (`detect_with`, `apply_with`); otherwise the session's [`RoutingPolicy`]
//! decides. The default policy runs full passes on the native semantic
//! detector — the fast path since the dictionary-encoded columnar refactor —
//! and routes update batches by the delta-size threshold of the paper's
//! Fig. 7(a): small batches go to incremental maintenance, large ones to a
//! fresh full pass. The SQL batch detector remains the paper-faithful
//! reference, selectable per call or via [`RoutingPolicy::fixed`]; the
//! compiled-plan executor (`BackendKind::Plan`, backed by
//! `ecfd_plan::PlanBackend`) is routable the same way and reports
//! byte-identically to the other three.
//!
//! The policy also carries the [`Parallelism`] of the detection scans:
//! `Auto` (every available core, the default) or `Fixed(n)`. It is applied
//! to the backends at registration time; replacing the policy with
//! [`Session::with_policy`](session::Session::with_policy) retrofits the new
//! fan-out onto already-registered backends. Constraint pattern constants
//! are pre-resolved to dictionary codes once at `register` time, so per-scan
//! match tests are integer comparisons regardless of the fan-out.
//!
//! ## Example
//!
//! ```
//! use ecfd_session::Session;
//! use ecfd_relation::{DataType, Relation, Schema, Tuple};
//!
//! let schema = Schema::builder("cust")
//!     .attr("CT", DataType::Str)
//!     .attr("AC", DataType::Str)
//!     .build();
//! let data = Relation::with_tuples(schema, [
//!     Tuple::from_iter(["Albany", "718"]), // wrong area code
//!     Tuple::from_iter(["NYC", "212"]),
//! ]).unwrap();
//!
//! let mut session = Session::new();
//! session.load(data).unwrap();
//! session.register_text("cust: [CT] -> [AC] | [], { {Albany} || {518} }").unwrap();
//!
//! let report = session.detect().unwrap();
//! assert_eq!(report.num_sv(), 1);
//!
//! let outcome = session.repair().unwrap();
//! assert!(outcome.final_report.is_clean());
//! assert!(session.detect().unwrap().is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod policy;
mod session;
pub mod snapshot;

pub use error::{Result, SessionError};
pub use policy::RoutingPolicy;
pub use session::{Session, Stage};
pub use snapshot::Snapshot;

// The kinds a policy routes between — and the worker fan-out it carries —
// are part of this crate's vocabulary.
pub use ecfd_detect::backend::BackendKind;
pub use ecfd_detect::Parallelism;
pub use ecfd_detect::{OpenGroup, ShardPartial};

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_core::{CompileOptions, ECfdBuilder};
    use ecfd_detect::DetectorBackend;
    use ecfd_relation::{DataType, Delta, Relation, Schema, Tuple, Value};
    use ecfd_repair::{RepairMode, RepairOptions};

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build()
    }

    fn dirty() -> Relation {
        Relation::with_tuples(
            schema(),
            [
                Tuple::from_iter(["Albany", "718"]),
                Tuple::from_iter(["Albany", "518"]),
                Tuple::from_iter(["NYC", "212"]),
            ],
        )
        .unwrap()
    }

    const PHI: &str = "cust: [CT] -> [AC] | [], { {Albany} || {518} }";

    fn ready_session() -> Session {
        let mut session = Session::new();
        session.load(dirty()).unwrap();
        session.register_text(PHI).unwrap();
        session
    }

    #[test]
    fn lifecycle_stages_progress() {
        let mut session = Session::new();
        assert_eq!(session.stage(), None);
        session.load(dirty()).unwrap();
        assert_eq!(session.stage(), Some(Stage::Loaded));
        session.register_text(PHI).unwrap();
        assert_eq!(session.stage(), Some(Stage::Registered));
        session.detect().unwrap();
        assert_eq!(session.stage(), Some(Stage::Detected));
        session.repair().unwrap();
        assert_eq!(session.stage(), Some(Stage::Repaired));
        // Re-loading data rewinds to Registered (constraints are kept).
        session.load(dirty()).unwrap();
        assert_eq!(session.stage(), Some(Stage::Registered));
        assert_eq!(session.constraints("cust").unwrap().len(), 1);
    }

    #[test]
    fn detect_serves_the_cache_and_explicit_backends_replace_it() {
        let mut session = ready_session();
        let first = session.detect().unwrap();
        assert_eq!(first.num_sv(), 1);
        assert_eq!(first.num_mv(), 2, "the two Albany rows conflict");
        assert_eq!(session.last_backend(), Some(BackendKind::Semantic));

        // Cached: same result, no backend switch.
        let again = session.detect().unwrap();
        assert_eq!(again, first);

        for kind in BackendKind::ALL {
            let report = session.detect_with(kind).unwrap();
            assert_eq!(report, first, "{kind} disagrees");
            assert_eq!(session.last_backend(), Some(kind));
        }
    }

    #[test]
    fn apply_routes_by_delta_size() {
        let mut session = ready_session();
        session.detect().unwrap();

        // 1 update against 3 rows is under the default 25% threshold? No:
        // 1 > 0.75 → large. Make the table bigger first.
        let filler = Delta::insert_only(
            (0..37)
                .map(|i| Tuple::from_iter(["NYC", &format!("2{i:02}")]))
                .collect(),
        );
        session.apply_with(BackendKind::Sql, &filler).unwrap();

        let small = Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])]);
        session.apply(&small).unwrap();
        assert_eq!(session.last_backend(), Some(BackendKind::Incremental));

        let large = Delta::insert_only(
            (0..30)
                .map(|i| Tuple::from_iter(["LI", &format!("5{i:02}")]))
                .collect(),
        );
        session.apply(&large).unwrap();
        assert_eq!(session.last_backend(), Some(BackendKind::Semantic));
    }

    #[test]
    fn apply_keeps_flags_consistent_with_a_fresh_detect() {
        let mut session = ready_session();
        session.detect().unwrap();
        let delta = Delta {
            insertions: vec![Tuple::from_iter(["Albany", "519"])],
            deletions: vec![Tuple::from_iter(["NYC", "212"])],
        };
        let after = session
            .apply_with(BackendKind::Incremental, &delta)
            .unwrap();
        let scratch = session.detect_with(BackendKind::Semantic).unwrap();
        assert_eq!(after, scratch);
        assert_eq!(after.total_rows, 3);
    }

    #[test]
    fn repair_uses_session_evidence_and_lands_clean() {
        let mut session = ready_session();
        let before = session.detect().unwrap();
        assert!(!before.is_clean());
        let outcome = session
            .repair_with(RepairOptions {
                mode: RepairMode::DeleteOnly,
                ..RepairOptions::default()
            })
            .unwrap();
        assert!(outcome.final_report.is_clean());
        assert!(outcome.num_deletions() >= 1);
        assert_eq!(session.stage(), Some(Stage::Repaired));
        // The cached state reflects the clean table without a re-scan…
        assert!(session.report().unwrap().is_clean());
        // …and an explicit re-detect agrees.
        assert!(session
            .detect_with(BackendKind::Semantic)
            .unwrap()
            .is_clean());
    }

    #[test]
    fn register_extends_and_dedupes() {
        let mut session = ready_session();
        // Registering the same constraint again changes nothing compiled.
        session.register_text(PHI).unwrap();
        let set = session.constraints("cust").unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.num_patterns(), 1);
        assert_eq!(set.source().len(), 2);
        // A genuinely new constraint extends the compiled set.
        session
            .register_text("cust: [CT] -> [] | [AC], { {NYC} || {212, 718} }")
            .unwrap();
        assert_eq!(session.constraints("cust").unwrap().len(), 2);
        assert_eq!(session.stage(), Some(Stage::Registered));
    }

    #[test]
    fn minimizing_compile_options_shrink_the_registered_set() {
        let mut session = Session::new().with_compile_options(CompileOptions::minimizing());
        session.load(dirty()).unwrap();
        let strong = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.in_set("CT", ["Albany", "Troy"]).constant("AC", "518"))
            .build()
            .unwrap();
        let weak = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.in_set("CT", ["Albany"]).constant("AC", "518"))
            .build()
            .unwrap();
        session.register(&[strong, weak]).unwrap();
        let set = session.constraints("cust").unwrap();
        assert_eq!(set.num_patterns(), 1, "the weak rule is implied");
        assert_eq!(set.source().len(), 2);
    }

    #[test]
    fn errors_name_the_missing_piece() {
        let mut session = Session::new();
        assert!(matches!(session.detect(), Err(SessionError::NotLoaded(_))));
        assert!(matches!(
            session.register_text(PHI),
            Err(SessionError::NotLoaded(name)) if name == "cust"
        ));
        session.load(dirty()).unwrap();
        assert!(matches!(
            session.detect(),
            Err(SessionError::NoConstraints(name)) if name == "cust"
        ));
        session.register_text(PHI).unwrap();
        assert!(matches!(
            session.detect_on("orders"),
            Err(SessionError::NotLoaded(name)) if name == "orders"
        ));
    }

    #[test]
    fn multi_relation_sessions_need_explicit_names() {
        let mut session = Session::new();
        session.load(dirty()).unwrap();
        let orders_schema = Schema::builder("orders")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build();
        session
            .load(
                Relation::with_tuples(orders_schema, [Tuple::from_iter(["Albany", "999"])])
                    .unwrap(),
            )
            .unwrap();
        session.register_text(PHI).unwrap();
        session
            .register_text("orders: [CT] -> [AC] | [], { {Albany} || {518} }")
            .unwrap();
        assert!(matches!(
            session.detect(),
            Err(SessionError::AmbiguousRelation(names)) if names.len() == 2
        ));
        // Two distinct violating rows: Albany/718 (SV and MV) and Albany/518
        // (MV only).
        assert_eq!(session.detect_on("cust").unwrap().num_violations(), 2);
        assert_eq!(session.detect_on("orders").unwrap().num_sv(), 1);
    }

    #[test]
    fn sql_backend_unavailability_is_reported_per_call() {
        let schema = Schema::builder("t")
            .attr("A", DataType::Int)
            .attr("B", DataType::Str)
            .build();
        let phi = ECfdBuilder::new("t")
            .lhs(["A"])
            .fd_rhs(["B"])
            .pattern(|p| p)
            .build()
            .unwrap();
        let mut session = Session::new().with_policy(RoutingPolicy::fixed(BackendKind::Semantic));
        session
            .load(
                Relation::with_tuples(
                    schema,
                    [
                        Tuple::new(vec![Value::Int(1), Value::str("x")]),
                        Tuple::new(vec![Value::Int(1), Value::str("y")]),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        session.register(&[phi]).unwrap();
        // The semantic path serves the int-typed schema fine…
        assert_eq!(session.detect().unwrap().num_mv(), 2);
        // …and only an explicit SQL request errors.
        assert!(matches!(
            session.detect_with(BackendKind::Sql),
            Err(SessionError::BackendUnavailable {
                kind: BackendKind::Sql,
                ..
            })
        ));
    }

    #[test]
    fn failing_reload_leaves_the_session_untouched() {
        let mut session = ready_session();
        let before = session.detect().unwrap();
        // A relation reusing the name but lacking the constrained attributes:
        // recompilation fails, and nothing — catalog, registry, cache — moves.
        let incompatible = Relation::with_tuples(
            Schema::builder("cust").attr("OTHER", DataType::Str).build(),
            [Tuple::from_iter(["x"])],
        )
        .unwrap();
        assert!(session.load(incompatible).is_err());
        assert_eq!(session.report(), Some(&before));
        assert_eq!(session.data("cust").unwrap(), dirty());
        assert_eq!(session.detect().unwrap(), before);
    }

    #[test]
    fn failing_registration_is_atomic_across_relations() {
        let mut session = ready_session();
        let set_before = session.constraints("cust").unwrap().clone();
        let for_cust = ecfd_core::parse_ecfd(PHI).unwrap();
        let for_unloaded =
            ecfd_core::parse_ecfd("orders: [CT] -> [AC] | [], { {Albany} || {518} }").unwrap();
        // `orders` is not loaded, so the whole batch must be rejected —
        // including the valid cust constraint sorted before it.
        assert!(matches!(
            session.register(&[for_cust, for_unloaded]),
            Err(SessionError::NotLoaded(name)) if name == "orders"
        ));
        assert_eq!(session.constraints("cust").unwrap(), &set_before);
    }

    #[test]
    fn cost_model_changes_reach_already_registered_relations() {
        struct DeleteNothing;
        impl ecfd_repair::CostModel for DeleteNothing {
            fn deletion_cost(&self, _t: &Tuple) -> f64 {
                1_000.0
            }
            fn change_cost(&self, _a: &str, _o: &Value, _n: &Value) -> f64 {
                1.0
            }
        }
        // Register first, swap the cost model afterwards: the deletion side
        // must see the new weights (greedy is weight-aware).
        let mut session = ready_session().with_cost_model(DeleteNothing);
        let outcome = session.repair().unwrap();
        assert!(outcome.final_report.is_clean());
        let cost: f64 = outcome
            .rounds
            .iter()
            .flat_map(|r| &r.repair.deletions)
            .map(|d| d.cost)
            .sum();
        assert!(
            outcome.num_deletions() == 0 || cost >= 1_000.0,
            "deletions must be costed by the post-registration model"
        );
    }

    #[test]
    fn repair_reuses_and_returns_warm_incremental_state() {
        let mut session = ready_session();
        session.detect().unwrap();
        // Warm the incremental state, then repair: the loop starts from it
        // and hands it back, so the next incremental apply needs no seeding.
        let warmup = Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])]);
        session
            .apply_with(BackendKind::Incremental, &warmup)
            .unwrap();
        let outcome = session.repair().unwrap();
        assert!(outcome.final_report.is_clean());

        let delta = Delta::insert_only(vec![Tuple::from_iter(["Albany", "999"])]);
        let after = session
            .apply_with(BackendKind::Incremental, &delta)
            .unwrap();
        let scratch = session.detect_with(BackendKind::Semantic).unwrap();
        assert_eq!(after, scratch);
        assert_eq!(after.num_sv(), 1, "the fresh 999 row violates φ");
    }

    #[test]
    fn snapshots_are_epoch_stamped_and_isolated() {
        let mut session = ready_session();
        let v0 = session.version();
        let snap = session.snapshot().unwrap();
        assert_eq!(snap.epoch(), v0, "detect does not mutate state");
        assert_eq!(snap.table(), "cust");
        assert_eq!(snap.num_rows(), 3);
        assert_eq!(snap.report().num_sv(), 1);
        assert_eq!(snap.report().num_mv(), 2);
        // The fresh re-scan over the frozen view agrees byte-for-byte.
        assert_eq!(&snap.detect_fresh().unwrap(), snap.report());
        let (report, evidence) = snap.detect_fresh_with_evidence().unwrap();
        assert_eq!(&report, snap.report());
        assert_eq!(&evidence, snap.evidence());

        // Mutate the session: the old snapshot must not move.
        let delta = Delta::insert_only(vec![Tuple::from_iter(["Albany", "999"])]);
        session.apply(&delta).unwrap();
        assert!(session.version() > v0, "apply bumps the version");
        let newer = session.snapshot().unwrap();
        assert!(newer.epoch() > snap.epoch());
        assert_eq!(newer.num_rows(), 4);
        assert_eq!(snap.num_rows(), 3, "old snapshot is frozen");
        assert_eq!(&snap.detect_fresh().unwrap(), snap.report());
        assert_eq!(&newer.detect_fresh().unwrap(), newer.report());
        // Same epoch ⇒ identical snapshot (served from the same state).
        let again = session.snapshot().unwrap();
        assert_eq!(again.epoch(), newer.epoch());
        assert_eq!(again.report(), newer.report());
    }

    #[test]
    fn snapshot_freezes_from_warm_incremental_state() {
        let mut session = ready_session();
        session.detect().unwrap();
        let delta = Delta {
            insertions: vec![Tuple::from_iter(["Troy", "518"])],
            deletions: vec![Tuple::from_iter(["NYC", "212"])],
        };
        session
            .apply_with(BackendKind::Incremental, &delta)
            .unwrap();
        let snap = session.snapshot().unwrap();
        assert_eq!(snap.num_rows(), 3);
        assert_eq!(&snap.detect_fresh().unwrap(), snap.report());
        // The materialised copy carries the base schema and live row ids.
        let copy = snap.to_relation().unwrap();
        assert_eq!(copy.schema(), &schema());
        assert_eq!(copy.len(), 3);
        for row in snap.report().violating_rows() {
            assert!(copy.contains_row(row), "{row} must exist in the copy");
        }
    }

    #[test]
    fn failed_apply_invalidates_stale_state() {
        let mut session = ready_session();
        session.detect().unwrap();
        let version_before = session.version();
        // The deletion is valid and lands before the wrong-arity insertion
        // fails the batch: the table has mutated, so every cache must go.
        let delta = Delta {
            deletions: vec![Tuple::from_iter(["NYC", "212"])],
            insertions: vec![Tuple::from_iter(["only-one"])],
        };
        assert!(session.apply(&delta).is_err());
        assert!(session.version() > version_before, "table mutated");
        assert!(session.report().is_none(), "stale cache must be dropped");
        let report = session.detect().unwrap();
        assert_eq!(report.total_rows, 2, "the deletion did land");
        assert_eq!(
            report,
            session.detect_with(BackendKind::Semantic).unwrap(),
            "post-error detection describes the actual table"
        );
    }

    #[test]
    fn snapshot_repair_plan_is_read_only() {
        let mut session = ready_session();
        let snap = session.snapshot().unwrap();
        let plan = snap
            .repair_plan(RepairOptions {
                mode: RepairMode::DeleteOnly,
                ..RepairOptions::default()
            })
            .unwrap();
        assert!(!plan.is_empty(), "the dirty instance needs repairs");
        assert!(plan.num_deletions() >= 1);
        // Planning on the snapshot left the session untouched.
        assert_eq!(session.version(), snap.epoch());
        assert_eq!(session.detect().unwrap().num_violations(), 2);
    }

    #[test]
    fn catalog_mut_invalidates_cached_state() {
        let mut session = ready_session();
        session.detect().unwrap();
        assert!(session.report().is_some());
        session
            .catalog_mut()
            .get_mut("cust")
            .unwrap()
            .delete_matching(
                &Tuple::from_iter(["NYC", "212"]).extended([Value::Int(0), Value::Int(0)]),
            );
        assert!(session.report().is_none(), "cache must be dropped");
        let report = session.detect().unwrap();
        assert_eq!(report.total_rows, 2);
    }

    #[test]
    fn explain_and_conflict_graph_come_from_the_cache() {
        let mut session = ready_session();
        let evidence = session.explain().unwrap();
        assert_eq!(evidence.num_sv_records(), 1);
        assert_eq!(evidence.num_groups(), 1);
        assert_eq!(
            evidence.detection_report(),
            *session.report().expect("explain caches detection")
        );
        let graph = session.conflict_graph().unwrap();
        assert!(graph.num_nodes() >= 2);
        // data() strips the flag columns the backends added.
        let base = session.data("cust").unwrap();
        assert_eq!(base.schema(), &schema());
    }

    #[test]
    fn backends_stay_swappable_behind_the_trait_object() {
        // The session's per-call dispatch goes through &mut dyn
        // DetectorBackend; double-check the trait stays object-safe and the
        // public constructors compose.
        let set = ecfd_core::ConstraintSet::parse(&schema(), PHI).unwrap();
        let mut backends: Vec<Box<dyn DetectorBackend>> = vec![
            Box::new(ecfd_detect::SemanticBackend::from_set(&set)),
            Box::new(ecfd_detect::SqlBackend::from_set(&set).unwrap()),
            Box::new(ecfd_detect::IncrementalBackend::from_set(&set)),
            Box::new(ecfd_plan::PlanBackend::from_set(&set).unwrap()),
        ];
        let mut catalog = ecfd_relation::Catalog::new();
        catalog.create(dirty()).unwrap();
        let mut reports = Vec::new();
        for backend in &mut backends {
            reports.push(backend.detect(&mut catalog).unwrap().0);
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
        assert_eq!(reports[2], reports[3]);
    }

    #[test]
    fn plan_policy_routes_everything_to_the_plan_backend() {
        let mut session = Session::new().with_policy(RoutingPolicy::fixed(BackendKind::Plan));
        session.load(dirty()).unwrap();
        session.register_text(PHI).unwrap();
        let report = session.detect().unwrap();
        assert_eq!(session.last_backend(), Some(BackendKind::Plan));
        assert_eq!(report.num_violations(), 2);
        let delta = Delta::insert_only(vec![Tuple::from_iter(["Troy", "518"])]);
        session.apply(&delta).unwrap();
        assert_eq!(session.last_backend(), Some(BackendKind::Plan));
        assert_eq!(
            session.detect_with(BackendKind::Plan).unwrap(),
            session.detect_with(BackendKind::Semantic).unwrap(),
        );
    }

    #[test]
    fn version_stamped_caches_go_stale_after_a_cost_model_swap() {
        // `with_cost_model` keeps every entry's cache field but bumps the
        // session version; the stamp must retire the cached result anyway,
        // so nothing (report accessor, detect, snapshots) reuses a result
        // produced under pre-swap state.
        let mut session = ready_session();
        session.detect().unwrap();
        assert!(session.report().is_some());
        let mut session = session.with_cost_model(ecfd_repair::ConstantCost::default());
        assert!(
            session.report().is_none(),
            "cache predates the version bump"
        );
        assert!(session.last_backend().is_none());
        // A plain detect() refreshes rather than serving the stale entry,
        // and the fresh result is immediately servable again.
        let report = session.detect().unwrap();
        assert_eq!(session.report(), Some(&report));
        assert_eq!(session.last_backend(), Some(BackendKind::Semantic));
        let snap = session.snapshot().unwrap();
        assert_eq!(snap.epoch(), session.version());
        assert_eq!(snap.report(), &report);
    }

    #[test]
    fn reports_survive_backend_switches_only_while_current() {
        // Regression: a result cached by one backend must not be revived
        // after a mutation routed through another backend, and the
        // post-mutation cache must be stamped with the *post*-mutation
        // version so it stays servable.
        let mut session = ready_session();
        let first = session.detect_with(BackendKind::Plan).unwrap();
        assert_eq!(session.last_backend(), Some(BackendKind::Plan));
        assert_eq!(session.report(), Some(&first));

        let delta = Delta::insert_only(vec![Tuple::from_iter(["Albany", "999"])]);
        let after = session.apply_with(BackendKind::Semantic, &delta).unwrap();
        assert_ne!(first, after);
        assert_eq!(
            session.report(),
            Some(&after),
            "post-apply cache is current"
        );
        assert_eq!(session.last_backend(), Some(BackendKind::Semantic));
        // detect() serves the post-apply result — neither a rescan nor the
        // pre-apply plan-backend report.
        assert_eq!(session.detect().unwrap(), after);
    }
}
