//! Fluent builders for eCFDs.
//!
//! The textual syntax ([`crate::parse_ecfd`]) is convenient for constraints
//! written by people; the builder is convenient for constraints assembled by
//! programs (the workload generator builds thousands of pattern tuples this
//! way).

use crate::ecfd::{ECfd, PatternTuple};
use crate::error::Result;
use crate::pattern::PatternValue;
use ecfd_relation::Value;

/// Builder for an [`ECfd`].
#[derive(Debug, Clone)]
pub struct ECfdBuilder {
    relation: String,
    lhs: Vec<String>,
    fd_rhs: Vec<String>,
    pattern_rhs: Vec<String>,
    tableau: Vec<PatternTuple>,
}

impl ECfdBuilder {
    /// Starts a builder for a constraint on `relation`.
    pub fn new(relation: impl Into<String>) -> Self {
        ECfdBuilder {
            relation: relation.into(),
            lhs: Vec::new(),
            fd_rhs: Vec::new(),
            pattern_rhs: Vec::new(),
            tableau: Vec::new(),
        }
    }

    /// Sets the left-hand-side attributes `X`.
    pub fn lhs<S: Into<String>>(mut self, attrs: impl IntoIterator<Item = S>) -> Self {
        self.lhs = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the embedded-FD right-hand-side attributes `Y`.
    pub fn fd_rhs<S: Into<String>>(mut self, attrs: impl IntoIterator<Item = S>) -> Self {
        self.fd_rhs = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the pattern-only right-hand-side attributes `Yp`.
    pub fn pattern_rhs<S: Into<String>>(mut self, attrs: impl IntoIterator<Item = S>) -> Self {
        self.pattern_rhs = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a pattern tuple built with a [`PatternTupleBuilder`].
    ///
    /// The closure receives a tuple builder pre-sized to the attribute lists
    /// configured so far; cells not assigned explicitly default to wildcards.
    pub fn pattern(mut self, f: impl FnOnce(PatternTupleBuilder) -> PatternTupleBuilder) -> Self {
        let builder = PatternTupleBuilder::new(
            self.lhs.clone(),
            self.fd_rhs
                .iter()
                .chain(self.pattern_rhs.iter())
                .cloned()
                .collect(),
        );
        self.tableau.push(f(builder).finish());
        self
    }

    /// Adds an already-constructed pattern tuple.
    pub fn pattern_tuple(mut self, tp: PatternTuple) -> Self {
        self.tableau.push(tp);
        self
    }

    /// Finalises and validates the constraint.
    pub fn build(self) -> Result<ECfd> {
        ECfd::new(
            self.relation,
            self.lhs,
            self.fd_rhs,
            self.pattern_rhs,
            self.tableau,
        )
    }
}

/// Builder for a single [`PatternTuple`], addressing cells by attribute name.
#[derive(Debug, Clone)]
pub struct PatternTupleBuilder {
    lhs_attrs: Vec<String>,
    rhs_attrs: Vec<String>,
    lhs: Vec<PatternValue>,
    rhs: Vec<PatternValue>,
}

impl PatternTupleBuilder {
    fn new(lhs_attrs: Vec<String>, rhs_attrs: Vec<String>) -> Self {
        let lhs = vec![PatternValue::Wildcard; lhs_attrs.len()];
        let rhs = vec![PatternValue::Wildcard; rhs_attrs.len()];
        PatternTupleBuilder {
            lhs_attrs,
            rhs_attrs,
            lhs,
            rhs,
        }
    }

    fn set(&mut self, attr: &str, value: PatternValue) {
        let mut found = false;
        if let Some(pos) = self.lhs_attrs.iter().position(|a| a == attr) {
            self.lhs[pos] = value.clone();
            found = true;
        }
        if let Some(pos) = self.rhs_attrs.iter().position(|a| a == attr) {
            self.rhs[pos] = value;
            found = true;
        }
        assert!(
            found,
            "attribute `{attr}` is not part of the constraint's X, Y or Yp"
        );
    }

    /// Sets the cell for `attr` to a positive set.
    pub fn in_set<V: Into<Value>>(
        mut self,
        attr: &str,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.set(attr, PatternValue::in_set(values));
        self
    }

    /// Sets the cell for `attr` to a complement set.
    pub fn not_in<V: Into<Value>>(
        mut self,
        attr: &str,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.set(attr, PatternValue::not_in_set(values));
        self
    }

    /// Sets the cell for `attr` to a single constant.
    pub fn constant(mut self, attr: &str, value: impl Into<Value>) -> Self {
        self.set(attr, PatternValue::constant(value));
        self
    }

    /// Sets the cell for `attr` back to the wildcard (the default).
    pub fn wildcard(mut self, attr: &str) -> Self {
        self.set(attr, PatternValue::Wildcard);
        self
    }

    /// Sets the *left-hand* cell only (for attributes occurring on both sides).
    pub fn lhs_cell(mut self, attr: &str, value: PatternValue) -> Self {
        let pos = self
            .lhs_attrs
            .iter()
            .position(|a| a == attr)
            .unwrap_or_else(|| panic!("attribute `{attr}` is not in X"));
        self.lhs[pos] = value;
        self
    }

    /// Sets the *right-hand* cell only (for attributes occurring on both sides).
    pub fn rhs_cell(mut self, attr: &str, value: PatternValue) -> Self {
        let pos = self
            .rhs_attrs
            .iter()
            .position(|a| a == attr)
            .unwrap_or_else(|| panic!("attribute `{attr}` is not in Y ∪ Yp"));
        self.rhs[pos] = value;
        self
    }

    fn finish(self) -> PatternTuple {
        PatternTuple::new(self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_phi1() {
        // φ1 of the paper via the builder API.
        let phi1 = ECfd::builder("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap();
        assert_eq!(phi1.tableau_size(), 2);
        assert_eq!(
            phi1.lhs_cell(0, "CT"),
            Some(&PatternValue::not_in_set(["NYC", "LI"]))
        );
        // Unassigned cells default to wildcard.
        assert_eq!(phi1.rhs_cell(0, "AC"), Some(&PatternValue::Wildcard));
        assert_eq!(phi1.rhs_cell(1, "AC"), Some(&PatternValue::constant("518")));
    }

    #[test]
    fn builder_constructs_pattern_only_constraints() {
        let phi2 = ECfd::builder("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| {
                p.constant("CT", "NYC")
                    .in_set("AC", ["212", "718", "646", "347", "917"])
            })
            .build()
            .unwrap();
        assert!(phi2.is_pattern_only());
        assert_eq!(phi2.rhs_cell(0, "AC").unwrap().num_constants(), 5);
    }

    #[test]
    fn same_attribute_on_both_sides_uses_lhs_and_rhs_cells() {
        // The unsatisfiable φ3 of Example 3.1: CT on both sides.
        let phi3 = ECfd::builder("cust")
            .lhs(["CT"])
            .fd_rhs(["CT"])
            .pattern(|p| {
                p.lhs_cell("CT", PatternValue::in_set(["NYC"]))
                    .rhs_cell("CT", PatternValue::in_set(["NYC"]))
            })
            .pattern(|p| {
                p.lhs_cell("CT", PatternValue::in_set(["NYC"]))
                    .rhs_cell("CT", PatternValue::in_set(["LI"]))
            })
            .build()
            .unwrap();
        assert_eq!(phi3.tableau_size(), 2);
        assert_eq!(phi3.lhs_cell(1, "CT"), Some(&PatternValue::in_set(["NYC"])));
        assert_eq!(phi3.rhs_cell(1, "CT"), Some(&PatternValue::in_set(["LI"])));
    }

    #[test]
    fn plain_set_on_shared_attribute_sets_both_sides() {
        let phi = ECfd::builder("t")
            .lhs(["A"])
            .fd_rhs(["A"])
            .pattern(|p| p.constant("A", "x"))
            .build()
            .unwrap();
        assert_eq!(phi.lhs_cell(0, "A"), Some(&PatternValue::constant("x")));
        assert_eq!(phi.rhs_cell(0, "A"), Some(&PatternValue::constant("x")));
    }

    #[test]
    #[should_panic(expected = "not part of the constraint")]
    fn unknown_attribute_in_pattern_panics() {
        let _ = ECfd::builder("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.constant("ZIP", "12345"));
    }

    #[test]
    fn build_surfaces_validation_errors() {
        // Y ∩ Yp ≠ ∅ is still rejected at build time.
        assert!(ECfd::builder("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern_rhs(["AC"])
            .build()
            .is_err());
    }
}
