//! Pattern values: the cells of an eCFD pattern tableau.
//!
//! For an attribute `A`, a pattern cell `tp[A]` is (Section II of the paper):
//!
//! * the unnamed variable `_` — any value of `dom(A)` matches;
//! * a finite set `S ⊆ dom(A)` — disjunction: the value must be in `S`;
//! * a complement set `S̄` — inequality: the value must *not* be in `S`.
//!
//! Classic CFD cells (a single constant `a`) are the singleton set `{a}`.

use ecfd_relation::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One cell of a pattern tuple.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternValue {
    /// The unnamed variable `_`: matches every value.
    Wildcard,
    /// A finite set `S`: matches exactly the listed values (disjunction).
    In(BTreeSet<Value>),
    /// A complement set `S̄`: matches everything *except* the listed values
    /// (inequality).
    NotIn(BTreeSet<Value>),
}

impl PatternValue {
    /// The wildcard `_`.
    pub fn wildcard() -> Self {
        PatternValue::Wildcard
    }

    /// A positive set `S` built from anything convertible to values.
    pub fn in_set<V: Into<Value>>(values: impl IntoIterator<Item = V>) -> Self {
        PatternValue::In(values.into_iter().map(Into::into).collect())
    }

    /// A complement set `S̄` built from anything convertible to values.
    pub fn not_in_set<V: Into<Value>>(values: impl IntoIterator<Item = V>) -> Self {
        PatternValue::NotIn(values.into_iter().map(Into::into).collect())
    }

    /// The CFD-style single-constant pattern `{a}`.
    pub fn constant(value: impl Into<Value>) -> Self {
        PatternValue::In([value.into()].into_iter().collect())
    }

    /// Whether the cell is the wildcard.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, PatternValue::Wildcard)
    }

    /// Whether the cell is a CFD-compatible cell: a wildcard or a singleton
    /// positive set (no disjunction, no inequality).
    pub fn is_cfd_compatible(&self) -> bool {
        match self {
            PatternValue::Wildcard => true,
            PatternValue::In(s) => s.len() == 1,
            PatternValue::NotIn(_) => false,
        }
    }

    /// The semantics of `t[A] ≍ tp[A]`: does `value` match this cell?
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            PatternValue::Wildcard => true,
            PatternValue::In(s) => s.contains(value),
            PatternValue::NotIn(s) => !s.contains(value),
        }
    }

    /// The constants mentioned by the cell (the cell's contribution to the
    /// *active domain* used by the satisfiability analyses and the MAXSS
    /// reduction).
    pub fn constants(&self) -> &BTreeSet<Value> {
        static EMPTY: std::sync::OnceLock<BTreeSet<Value>> = std::sync::OnceLock::new();
        match self {
            PatternValue::Wildcard => EMPTY.get_or_init(BTreeSet::new),
            PatternValue::In(s) | PatternValue::NotIn(s) => s,
        }
    }

    /// Number of constants mentioned by the cell.
    pub fn num_constants(&self) -> usize {
        self.constants().len()
    }

    /// Whether this cell is *more general* than `other`: every value matching
    /// `other` also matches `self`. Used when reasoning about redundant
    /// pattern tuples.
    ///
    /// The check is sound but only complete over the constants mentioned by
    /// the two cells plus "everything else" treated as a single bucket, which
    /// is exactly the granularity eCFD semantics can distinguish.
    pub fn generalizes(&self, other: &PatternValue) -> bool {
        match (self, other) {
            (PatternValue::Wildcard, _) => true,
            (_, PatternValue::Wildcard) => matches!(self, PatternValue::Wildcard),
            (PatternValue::In(sup), PatternValue::In(sub)) => sub.is_subset(sup),
            (PatternValue::NotIn(excl), PatternValue::In(s)) => s.is_disjoint(excl),
            (PatternValue::NotIn(small), PatternValue::NotIn(large)) => small.is_subset(large),
            (PatternValue::In(_), PatternValue::NotIn(_)) => false,
        }
    }

    /// Whether some value can match both cells simultaneously, assuming the
    /// underlying domain has more values than the constants mentioned.
    pub fn compatible_with(&self, other: &PatternValue) -> bool {
        match (self, other) {
            (PatternValue::Wildcard, _) | (_, PatternValue::Wildcard) => true,
            (PatternValue::In(a), PatternValue::In(b)) => !a.is_disjoint(b),
            (PatternValue::In(a), PatternValue::NotIn(b)) => a.difference(b).next().is_some(),
            (PatternValue::NotIn(b), PatternValue::In(a)) => a.difference(b).next().is_some(),
            // Two complements are always jointly satisfiable in a large-enough
            // domain (pick a value outside both exclusion sets).
            (PatternValue::NotIn(_), PatternValue::NotIn(_)) => true,
        }
    }
}

impl fmt::Display for PatternValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_set(f: &mut fmt::Formatter<'_>, s: &BTreeSet<Value>) -> fmt::Result {
            write!(f, "{{")?;
            for (i, v) in s.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")
        }
        match self {
            PatternValue::Wildcard => write!(f, "_"),
            PatternValue::In(s) => write_set(f, s),
            PatternValue::NotIn(s) => {
                write!(f, "!")?;
                write_set(f, s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_semantics() {
        let wild = PatternValue::wildcard();
        let nyc_li = PatternValue::in_set(["NYC", "LI"]);
        let not_nyc_li = PatternValue::not_in_set(["NYC", "LI"]);

        for v in ["NYC", "LI", "Albany", ""] {
            assert!(wild.matches(&Value::str(v)));
        }
        assert!(nyc_li.matches(&Value::str("NYC")));
        assert!(!nyc_li.matches(&Value::str("Albany")));
        assert!(!not_nyc_li.matches(&Value::str("NYC")));
        assert!(not_nyc_li.matches(&Value::str("Albany")));
        // Matching is by value equality including type.
        assert!(!PatternValue::in_set([518i64]).matches(&Value::str("518")));
    }

    #[test]
    fn constant_is_singleton_set() {
        let c = PatternValue::constant("518");
        assert_eq!(c, PatternValue::in_set(["518"]));
        assert!(c.is_cfd_compatible());
        assert!(PatternValue::wildcard().is_cfd_compatible());
        assert!(!PatternValue::in_set(["212", "718"]).is_cfd_compatible());
        assert!(!PatternValue::not_in_set(["NYC"]).is_cfd_compatible());
    }

    #[test]
    fn constants_and_counts() {
        assert_eq!(PatternValue::wildcard().num_constants(), 0);
        assert_eq!(PatternValue::in_set(["a", "b"]).num_constants(), 2);
        assert_eq!(PatternValue::not_in_set(["a"]).num_constants(), 1);
        assert!(PatternValue::wildcard().constants().is_empty());
    }

    #[test]
    fn generalizes_relation() {
        let wild = PatternValue::wildcard();
        let ab = PatternValue::in_set(["a", "b"]);
        let a = PatternValue::in_set(["a"]);
        let not_c = PatternValue::not_in_set(["c"]);
        let not_cd = PatternValue::not_in_set(["c", "d"]);

        assert!(wild.generalizes(&ab));
        assert!(!ab.generalizes(&wild));
        assert!(ab.generalizes(&a));
        assert!(!a.generalizes(&ab));
        assert!(not_c.generalizes(&a), "a ∉ {{c}} so {{a}} ⊆ compl({{c}})");
        assert!(!not_c.generalizes(&PatternValue::in_set(["c"])));
        assert!(not_c.generalizes(&not_cd));
        assert!(!not_cd.generalizes(&not_c));
        assert!(!a.generalizes(&not_c), "complement sets are infinite");
    }

    #[test]
    fn compatibility() {
        let a = PatternValue::in_set(["a"]);
        let b = PatternValue::in_set(["b"]);
        let not_a = PatternValue::not_in_set(["a"]);
        assert!(!a.compatible_with(&b));
        assert!(a.compatible_with(&PatternValue::in_set(["a", "b"])));
        assert!(!a.compatible_with(&not_a));
        assert!(b.compatible_with(&not_a));
        assert!(not_a.compatible_with(&PatternValue::not_in_set(["b"])));
        assert!(PatternValue::wildcard().compatible_with(&a));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PatternValue::wildcard().to_string(), "_");
        assert_eq!(PatternValue::in_set(["NYC", "LI"]).to_string(), "{LI, NYC}");
        assert_eq!(PatternValue::not_in_set(["NYC"]).to_string(), "!{NYC}");
        assert_eq!(
            PatternValue::in_set([212i64, 718]).to_string(),
            "{212, 718}"
        );
    }
}
