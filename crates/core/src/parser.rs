//! A concrete textual syntax for eCFDs.
//!
//! The paper writes eCFDs as `φ1 = (cust: [CT] → [AC], ∅, T1)` with the tableau
//! rendered as a table (Fig. 2). This module provides an equivalent one-line
//! ASCII syntax, convenient for configuration files and examples:
//!
//! ```text
//! cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }
//! cust: [CT] -> []   | [AC], { {NYC} || {212, 718, 646, 347, 917} }
//! ```
//!
//! * `[..] -> [..] | [..]` lists the attributes of `X`, `Y` and `Yp`; the
//!   `| [..]` part may be omitted when `Yp = ∅`.
//! * The tableau is a `{ .. }` block of pattern tuples separated by `;`.
//! * Each pattern tuple lists the cells for `X`, then `||`, then the cells for
//!   `Y ∪ Yp` (Y attributes first, then Yp), separated by commas.
//! * A cell is `_` (wildcard), `{a, b, c}` (a positive set) or `!{a, b, c}`
//!   (a complement set).
//! * Set elements are strings; quote with `"…"` to include spaces, commas or
//!   braces. An element prefixed with `#` is parsed as an integer
//!   (e.g. `{#1, #2}`).
//!
//! [`parse_ecfds`] parses a whole file of constraints, one per line, ignoring
//! blank lines and `//` / `--` comments.

use crate::ecfd::{ECfd, PatternTuple};
use crate::error::{CoreError, Result};
use crate::pattern::PatternValue;
use ecfd_relation::Value;
use std::collections::BTreeSet;

/// Parses a single eCFD from its textual form.
pub fn parse_ecfd(input: &str) -> Result<ECfd> {
    Parser::new(input).parse_constraint()
}

/// Parses a list of eCFDs, one per non-empty, non-comment line.
pub fn parse_ecfds(input: &str) -> Result<Vec<ECfd>> {
    let mut out = Vec::new();
    for line in input.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("//") || trimmed.starts_with("--") {
            continue;
        }
        out.push(parse_ecfd(trimmed)?);
    }
    Ok(out)
}

struct Parser<'a> {
    input: &'a str,
    chars: Vec<char>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            chars: input.chars().collect(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> CoreError {
        CoreError::Parse {
            position: self.chars.iter().take(self.pos).map(|c| c.len_utf8()).sum(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, expected: char) -> Result<()> {
        self.skip_ws();
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(self.error(format!("expected `{expected}`, found `{c}`"))),
            None => Err(self.error(format!("expected `{expected}`, found end of input"))),
        }
    }

    fn eat(&mut self, expected: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, expected: &str) -> bool {
        self.skip_ws();
        let chars: Vec<char> = expected.chars().collect();
        if self.chars[self.pos..].starts_with(&chars) {
            self.pos += chars.len();
            true
        } else {
            false
        }
    }

    /// A bare identifier: letters, digits, `_`, `.`, `-`.
    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '.' || c == '-')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected an identifier"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    /// A double-quoted string with `\"` and `\\` escapes.
    fn quoted(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some(c) => out.push(c),
                    None => return Err(self.error("unterminated escape in string literal")),
                },
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    /// A set element: quoted string, `#int`, or a bare identifier (string).
    fn set_element(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some('"') => Ok(Value::Str(self.quoted()?)),
            Some('#') => {
                self.pos += 1;
                let tok = self.ident()?;
                tok.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| self.error(format!("`#{tok}` is not a valid integer literal")))
            }
            _ => Ok(Value::Str(self.ident()?)),
        }
    }

    /// `{ a, b, c }` — possibly empty.
    fn value_set(&mut self) -> Result<BTreeSet<Value>> {
        self.expect('{')?;
        let mut out = BTreeSet::new();
        self.skip_ws();
        if self.eat('}') {
            return Ok(out);
        }
        loop {
            out.insert(self.set_element()?);
            self.skip_ws();
            if self.eat(',') {
                continue;
            }
            self.expect('}')?;
            return Ok(out);
        }
    }

    /// `_` | `{..}` | `!{..}`
    fn cell(&mut self) -> Result<PatternValue> {
        self.skip_ws();
        match self.peek() {
            Some('_') => {
                self.pos += 1;
                Ok(PatternValue::Wildcard)
            }
            Some('!') => {
                self.pos += 1;
                let set = self.value_set()?;
                if set.is_empty() {
                    return Err(self.error("a complement set `!{..}` must not be empty"));
                }
                Ok(PatternValue::NotIn(set))
            }
            Some('{') => {
                let set = self.value_set()?;
                if set.is_empty() {
                    return Err(self.error("a positive set `{..}` must not be empty"));
                }
                Ok(PatternValue::In(set))
            }
            Some(c) => Err(self.error(format!(
                "expected a pattern cell (`_`, `{{..}}` or `!{{..}}`), found `{c}`"
            ))),
            None => Err(self.error("expected a pattern cell, found end of input")),
        }
    }

    /// `[ A, B, C ]` — possibly empty.
    fn attr_list(&mut self) -> Result<Vec<String>> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.eat(']') {
            return Ok(out);
        }
        loop {
            out.push(self.ident()?);
            self.skip_ws();
            if self.eat(',') {
                continue;
            }
            self.expect(']')?;
            return Ok(out);
        }
    }

    /// `cell, cell, ... || cell, cell, ...`
    fn pattern_tuple(&mut self, n_lhs: usize, n_rhs: usize) -> Result<PatternTuple> {
        let lhs = self.cell_list(n_lhs)?;
        if !self.eat_str("||") {
            return Err(self.error("expected `||` between LHS and RHS pattern cells"));
        }
        let rhs = self.cell_list(n_rhs)?;
        Ok(PatternTuple::new(lhs, rhs))
    }

    fn cell_list(&mut self, expected: usize) -> Result<Vec<PatternValue>> {
        let mut out = Vec::new();
        for i in 0..expected {
            if i > 0 {
                self.expect(',')?;
            }
            out.push(self.cell()?);
        }
        Ok(out)
    }

    fn parse_constraint(&mut self) -> Result<ECfd> {
        let relation = self.ident()?;
        self.expect(':')?;
        let lhs = self.attr_list()?;
        if !self.eat_str("->") {
            return Err(self.error("expected `->` after the left-hand-side attribute list"));
        }
        let fd_rhs = self.attr_list()?;
        let pattern_rhs = if self.eat('|') {
            self.attr_list()?
        } else {
            Vec::new()
        };
        self.expect(',')?;
        self.expect('{')?;

        let n_lhs = lhs.len();
        let n_rhs = fd_rhs.len() + pattern_rhs.len();
        let mut tableau = Vec::new();
        self.skip_ws();
        if !self.eat('}') {
            loop {
                tableau.push(self.pattern_tuple(n_lhs, n_rhs)?);
                self.skip_ws();
                if self.eat(';') {
                    continue;
                }
                self.expect('}')?;
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.chars.len() {
            return Err(self.error(format!(
                "unexpected trailing input: `{}`",
                &self.input[self
                    .chars
                    .iter()
                    .take(self.pos)
                    .map(|c| c.len_utf8())
                    .sum::<usize>()..]
            )));
        }
        ECfd::new(relation, lhs, fd_rhs, pattern_rhs, tableau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PHI1: &str =
        "cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }";
    const PHI2: &str = "cust: [CT] -> [] | [AC], { {NYC} || {212, 718, 646, 347, 917} }";

    #[test]
    fn parses_phi1_from_the_paper() {
        let phi = parse_ecfd(PHI1).unwrap();
        assert_eq!(phi.relation(), "cust");
        assert_eq!(phi.lhs(), &["CT".to_string()]);
        assert_eq!(phi.fd_rhs(), &["AC".to_string()]);
        assert!(phi.pattern_rhs().is_empty());
        assert_eq!(phi.tableau_size(), 2);
        assert_eq!(
            phi.lhs_cell(0, "CT"),
            Some(&PatternValue::not_in_set(["NYC", "LI"]))
        );
        assert_eq!(phi.rhs_cell(0, "AC"), Some(&PatternValue::Wildcard));
        assert_eq!(
            phi.lhs_cell(1, "CT"),
            Some(&PatternValue::in_set(["Albany", "Troy", "Colonie"]))
        );
        assert_eq!(phi.rhs_cell(1, "AC"), Some(&PatternValue::in_set(["518"])));
    }

    #[test]
    fn parses_phi2_with_pattern_only_rhs() {
        let phi = parse_ecfd(PHI2).unwrap();
        assert!(phi.is_pattern_only());
        assert_eq!(phi.pattern_rhs(), &["AC".to_string()]);
        assert_eq!(phi.rhs_cell(0, "AC").unwrap().num_constants(), 5);
    }

    #[test]
    fn yp_clause_is_optional() {
        let a = parse_ecfd("cust: [CT] -> [AC], { _ || _ }").unwrap();
        let b = parse_ecfd("cust: [CT] -> [AC] | [], { _ || _ }").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quoted_strings_and_integers() {
        let phi = parse_ecfd(
            r#"orders: [city] -> [zip], { {"New York, NY", "St. \"Quote\""} || {#10001, #10002} }"#,
        )
        .unwrap();
        let lhs = phi.lhs_cell(0, "city").unwrap();
        assert!(lhs.matches(&Value::str("New York, NY")));
        assert!(lhs.matches(&Value::str("St. \"Quote\"")));
        let rhs = phi.rhs_cell(0, "zip").unwrap();
        assert!(rhs.matches(&Value::int(10001)));
        assert!(!rhs.matches(&Value::str("10001")));
    }

    #[test]
    fn empty_tableau_and_multi_attribute_sides() {
        let phi = parse_ecfd("t: [A, B] -> [C] | [D], { }").unwrap();
        assert_eq!(phi.tableau_size(), 0);
        let phi = parse_ecfd("t: [A, B] -> [C] | [D], { {a}, _ || !{c}, {d1, d2} }").unwrap();
        assert_eq!(phi.tableau_size(), 1);
        assert_eq!(phi.lhs_cell(0, "B"), Some(&PatternValue::Wildcard));
        assert_eq!(phi.rhs_cell(0, "C"), Some(&PatternValue::not_in_set(["c"])));
        assert_eq!(
            phi.rhs_cell(0, "D"),
            Some(&PatternValue::in_set(["d1", "d2"]))
        );
    }

    #[test]
    fn display_output_reparses_to_the_same_constraint() {
        for text in [
            PHI1,
            PHI2,
            "t: [A, B] -> [C] | [D], { {a}, _ || !{c}, {d1, d2} }",
        ] {
            let phi = parse_ecfd(text).unwrap();
            let round = parse_ecfd(&phi.to_string()).unwrap();
            assert_eq!(phi, round, "display of `{text}` should reparse identically");
        }
    }

    #[test]
    fn parse_errors_carry_positions_and_messages() {
        let cases = [
            ("cust [CT] -> [AC], { }", "expected `:`"),
            ("cust: [CT] [AC], { }", "expected `->`"),
            ("cust: [CT] -> [AC], { _  _ }", "expected `||`"),
            ("cust: [CT] -> [AC], { _ || }", "expected a pattern cell"),
            ("cust: [CT] -> [AC], { _ || {} }", "must not be empty"),
            ("cust: [CT] -> [AC], { _ || _ } trailing", "trailing"),
            (
                "cust: [CT] -> [AC], { _ || {\"unterminated} }",
                "unterminated",
            ),
            ("cust: [CT] -> [AC], { _ || {#abc} }", "integer"),
        ];
        for (input, needle) in cases {
            let err = parse_ecfd(input).unwrap_err();
            match err {
                CoreError::Parse { message, .. } => {
                    assert!(
                        message.contains(needle),
                        "input `{input}`: message `{message}` should contain `{needle}`"
                    );
                }
                other => panic!("input `{input}`: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn structural_errors_are_reported_as_invalid_constraints() {
        // Parses fine syntactically but Y ∩ Yp ≠ ∅.
        let err = parse_ecfd("cust: [CT] -> [AC] | [AC], { _ || _, _ }").unwrap_err();
        assert!(matches!(err, CoreError::InvalidConstraint(_)));
    }

    #[test]
    fn parse_ecfds_handles_comments_and_blank_lines() {
        let text = format!("// constraints from Fig. 2\n\n{PHI1}\n-- second one\n{PHI2}\n");
        let all = parse_ecfds(&text).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].tableau_size(), 2);
        assert_eq!(all[1].tableau_size(), 1);

        let err = parse_ecfds("not a constraint").unwrap_err();
        assert!(matches!(err, CoreError::Parse { .. }));
    }
}
