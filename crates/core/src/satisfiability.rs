//! Exact satisfiability analysis of eCFD sets (Section III of the paper).
//!
//! The satisfiability problem — "is there a nonempty instance `I` with
//! `I ⊨ Σ`?" — is NP-complete for eCFDs (Proposition 3.1), but it enjoys a
//! *small model property*: if `Σ` is satisfiable then a **single-tuple**
//! instance satisfies it. The exact procedure here therefore searches for one
//! witness tuple:
//!
//! 1. restrict attention to the attributes mentioned by `Σ`;
//! 2. for each such attribute `A_i`, build the *active domain* `adom(A_i)`:
//!    the constants appearing in the tableaux for `A_i`, plus one fresh value
//!    of `dom(A_i)` outside those constants if such a value exists (for an
//!    enumerated finite domain it may not) — exactly the construction used in
//!    the reduction of Section IV;
//! 3. backtrack over assignments of active-domain values to attributes,
//!    pruning as soon as a fully-assigned constraint is violated.
//!
//! The search is exponential in the number of constrained attributes in the
//! worst case — unavoidable unless P = NP — so callers can cap the number of
//! search nodes with [`SatOptions::node_budget`]; the default is generous
//! enough for all constraint sets used in the paper's experiments.

use crate::ecfd::ECfd;
use crate::error::{CoreError, Result};
use crate::pattern::PatternValue;
use crate::satisfaction;
use ecfd_relation::{Domain, Relation, Schema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Options controlling the exact satisfiability search.
#[derive(Debug, Clone, Copy)]
pub struct SatOptions {
    /// Maximum number of backtracking nodes to explore before giving up with
    /// [`CoreError::AnalysisBudgetExceeded`].
    pub node_budget: u64,
}

impl Default for SatOptions {
    fn default() -> Self {
        SatOptions {
            node_budget: 5_000_000,
        }
    }
}

/// Outcome of the exact satisfiability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// `Σ` is satisfiable; the contained tuple is a single-tuple witness
    /// (over the full schema).
    Satisfiable(Tuple),
    /// No nonempty instance satisfies `Σ`.
    Unsatisfiable,
}

impl SatOutcome {
    /// True for [`SatOutcome::Satisfiable`].
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, SatOutcome::Satisfiable(_))
    }

    /// The witness tuple, if satisfiable.
    pub fn witness(&self) -> Option<&Tuple> {
        match self {
            SatOutcome::Satisfiable(t) => Some(t),
            SatOutcome::Unsatisfiable => None,
        }
    }
}

/// Computes the active domain of every attribute mentioned by `ecfds`:
/// the constants appearing in pattern cells for that attribute, plus (when the
/// declared domain still has one) a representative value outside them.
///
/// Values outside the constants are indistinguishable to every pattern cell,
/// so one representative suffices — this is what keeps the small-model search
/// finite and the reduction of Section IV polynomial.
pub fn active_domains(schema: &Schema, ecfds: &[ECfd]) -> BTreeMap<String, Vec<Value>> {
    let mut constants: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
    for ecfd in ecfds {
        for (attr, consts) in ecfd.constants_per_attribute() {
            constants.entry(attr).or_default().extend(consts);
        }
    }
    let mut out = BTreeMap::new();
    for (attr, consts) in constants {
        let domain = schema
            .attr_id(&attr)
            .and_then(|id| schema.attribute(id))
            .map(|a| a.domain.clone())
            .unwrap_or(Domain::Unbounded(ecfd_relation::DataType::Str));
        let mut values: Vec<Value> = consts
            .iter()
            .filter(|v| domain.contains(v))
            .cloned()
            .collect();
        if let Some(fresh) = domain.fresh_value_outside(&consts) {
            values.push(fresh);
        }
        out.insert(attr, values);
    }
    out
}

/// Exact satisfiability with default options.
pub fn is_satisfiable(schema: &Schema, ecfds: &[ECfd]) -> Result<bool> {
    Ok(check_satisfiability(schema, ecfds, SatOptions::default())?.is_satisfiable())
}

/// Exact satisfiability returning a witness, with default options.
pub fn find_witness(schema: &Schema, ecfds: &[ECfd]) -> Result<Option<Tuple>> {
    Ok(check_satisfiability(schema, ecfds, SatOptions::default())?
        .witness()
        .cloned())
}

/// Exact satisfiability analysis with explicit options.
pub fn check_satisfiability(
    schema: &Schema,
    ecfds: &[ECfd],
    options: SatOptions,
) -> Result<SatOutcome> {
    for ecfd in ecfds {
        ecfd.validate_against(schema)?;
    }
    if ecfds.is_empty() {
        // Any single tuple works; produce one from default values.
        return Ok(SatOutcome::Satisfiable(default_tuple(schema)));
    }

    let domains = active_domains(schema, ecfds);
    // Fix an attribute order for the backtracking search: constrained
    // attributes first (most constrained — smallest active domain — first to
    // fail fast), then the rest of the schema.
    let mut constrained: Vec<(String, Vec<Value>)> = domains.into_iter().collect();
    constrained.sort_by_key(|(_, vals)| vals.len());

    let mut assignment: BTreeMap<String, Value> = BTreeMap::new();
    let mut budget = options.node_budget;
    let found = search(schema, ecfds, &constrained, 0, &mut assignment, &mut budget)?;
    if !found {
        return Ok(SatOutcome::Unsatisfiable);
    }

    // Extend the partial witness to a full tuple over the schema.
    let witness = complete_tuple(schema, &assignment);
    debug_assert!(single_tuple_satisfies(schema, ecfds, &witness)?);
    Ok(SatOutcome::Satisfiable(witness))
}

/// Checks whether the single-tuple instance `{t}` satisfies every constraint.
///
/// Exposed because both the MAXSS reduction's `g` function and tests need it.
pub fn single_tuple_satisfies(schema: &Schema, ecfds: &[ECfd], tuple: &Tuple) -> Result<bool> {
    let db = Relation::with_tuples(schema.clone(), [tuple.clone()])?;
    satisfaction::satisfies_all(&db, ecfds)
}

fn default_value_for(domain: &Domain) -> Value {
    domain
        .fresh_value_outside(&BTreeSet::new())
        .unwrap_or(Value::Null)
}

fn default_tuple(schema: &Schema) -> Tuple {
    Tuple::new(
        schema
            .attributes()
            .iter()
            .map(|a| default_value_for(&a.domain))
            .collect(),
    )
}

fn complete_tuple(schema: &Schema, assignment: &BTreeMap<String, Value>) -> Tuple {
    Tuple::new(
        schema
            .attributes()
            .iter()
            .map(|a| {
                assignment
                    .get(&a.name)
                    .cloned()
                    .unwrap_or_else(|| default_value_for(&a.domain))
            })
            .collect(),
    )
}

/// Can constraint violation already be decided from `assignment`?
///
/// A single-pattern check of the form "if t[X] matches then t[Y, Yp] must
/// match" can be *refuted* as soon as all attributes of X are assigned and
/// match, and some assigned attribute of Y ∪ Yp fails its cell. It is
/// *confirmed unviolated* when some assigned X attribute fails to match, or
/// all RHS attributes are assigned and match.
fn violates_partial(ecfd: &ECfd, assignment: &BTreeMap<String, Value>) -> bool {
    for (tp_idx, tp) in ecfd.tableau().iter().enumerate() {
        let mut lhs_all_assigned_and_match = true;
        let mut lhs_definitely_unmatched = false;
        for (attr, _cell) in ecfd.lhs().iter().zip(&tp.lhs) {
            match assignment.get(attr) {
                Some(value) => {
                    if !ecfd
                        .lhs_cell(tp_idx, attr)
                        .expect("cell exists")
                        .matches(value)
                    {
                        lhs_definitely_unmatched = true;
                        break;
                    }
                }
                None => {
                    lhs_all_assigned_and_match = false;
                }
            }
        }
        if lhs_definitely_unmatched || !lhs_all_assigned_and_match {
            continue;
        }
        // LHS fully matches: every assigned RHS attribute must match its cell.
        let rhs_attrs = ecfd.rhs_attrs();
        for (attr, cell) in rhs_attrs.iter().zip(&tp.rhs) {
            if let Some(value) = assignment.get(*attr) {
                if !cell.matches(value) {
                    return true;
                }
            } else if matches!(cell, PatternValue::In(s) if s.is_empty()) {
                return true;
            }
        }
    }
    false
}

fn search(
    schema: &Schema,
    ecfds: &[ECfd],
    attrs: &[(String, Vec<Value>)],
    depth: usize,
    assignment: &mut BTreeMap<String, Value>,
    budget: &mut u64,
) -> Result<bool> {
    if *budget == 0 {
        return Err(CoreError::AnalysisBudgetExceeded(format!(
            "satisfiability search exceeded its node budget with {} attributes left",
            attrs.len() - depth
        )));
    }
    *budget -= 1;

    if depth == attrs.len() {
        let candidate = complete_tuple(schema, assignment);
        return single_tuple_satisfies(schema, ecfds, &candidate);
    }

    let (attr, values) = &attrs[depth];
    if values.is_empty() {
        // A constrained attribute with an empty active domain (e.g. an
        // enumerated finite domain none of whose values are admissible) makes
        // the set unsatisfiable along this branch.
        return Ok(false);
    }
    for value in values {
        assignment.insert(attr.clone(), value.clone());
        if !ecfds.iter().any(|e| violates_partial(e, assignment))
            && search(schema, ecfds, attrs, depth + 1, assignment, budget)?
        {
            return Ok(true);
        }
        assignment.remove(attr);
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ECfdBuilder;
    use crate::pattern::PatternValue;
    use ecfd_relation::DataType;

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("PN", DataType::Str)
            .attr("NM", DataType::Str)
            .attr("STR", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    fn phi1() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .pattern(|p| {
                p.in_set("CT", ["Albany", "Troy", "Colonie"])
                    .constant("AC", "518")
            })
            .build()
            .unwrap()
    }

    fn phi2() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| {
                p.constant("CT", "NYC")
                    .in_set("AC", ["212", "718", "646", "347", "917"])
            })
            .build()
            .unwrap()
    }

    /// φ3 of Example 3.1: unsatisfiable because every tuple's CT is forced to
    /// NYC by the first pattern tuple, and NYC tuples are forced to LI by the
    /// second. (The camera-ready rendering of the example shows `{NYC}` as the
    /// first pattern's LHS, which would make it vacuously satisfiable; the
    /// accompanying argument — "if t[CT] = NYC, then φ3 requires it to be LI;
    /// but φ3 forces it to be NYC again" — only goes through with a wildcard
    /// LHS, which is what we use here.)
    fn phi3_unsat() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["CT"])
            .pattern(|p| {
                p.lhs_cell("CT", PatternValue::Wildcard)
                    .rhs_cell("CT", PatternValue::in_set(["NYC"]))
            })
            .pattern(|p| {
                p.lhs_cell("CT", PatternValue::in_set(["NYC"]))
                    .rhs_cell("CT", PatternValue::in_set(["LI"]))
            })
            .build()
            .unwrap()
    }

    #[test]
    fn paper_constraints_are_satisfiable() {
        let schema = cust_schema();
        let ecfds = [phi1(), phi2()];
        let outcome = check_satisfiability(&schema, &ecfds, SatOptions::default()).unwrap();
        let witness = outcome.witness().expect("φ1, φ2 are satisfiable").clone();
        assert!(single_tuple_satisfies(&schema, &ecfds, &witness).unwrap());
        assert!(is_satisfiable(&schema, &ecfds).unwrap());
    }

    #[test]
    fn example_3_1_is_unsatisfiable() {
        let schema = cust_schema();
        assert!(!is_satisfiable(&schema, &[phi3_unsat()]).unwrap());
        assert!(find_witness(&schema, &[phi3_unsat()]).unwrap().is_none());
    }

    #[test]
    fn unsatisfiability_needs_the_whole_set() {
        // Each of the two pattern tuples of φ3 alone is satisfiable; only
        // together do they conflict.
        let schema = cust_schema();
        let phi3 = phi3_unsat();
        for tp in phi3.tableau() {
            let single = phi3.with_tableau(vec![tp.clone()]).unwrap();
            assert!(is_satisfiable(&schema, &[single]).unwrap());
        }
    }

    #[test]
    fn empty_constraint_set_is_satisfiable() {
        let schema = cust_schema();
        let outcome = check_satisfiability(&schema, &[], SatOptions::default()).unwrap();
        assert!(outcome.is_satisfiable());
    }

    #[test]
    fn finite_domain_conflicts_are_detected() {
        // Proposition 3.3's mechanism: an eCFD can force an attribute to draw
        // values from a finite set. Here two constraints force disjoint sets,
        // so the set is unsatisfiable even though dom(CT) is infinite.
        let schema = cust_schema();
        let force_a = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.in_set("AC", ["212", "718"]))
            .build()
            .unwrap();
        let force_b = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.in_set("AC", ["518"]))
            .build()
            .unwrap();
        assert!(!is_satisfiable(&schema, &[force_a.clone(), force_b]).unwrap());
        assert!(is_satisfiable(&schema, &[force_a]).unwrap());
    }

    #[test]
    fn finite_declared_domain_restricts_witnesses() {
        // AC has the finite domain {212}; a constraint requiring AC ∉ {212}
        // cannot be satisfied.
        let schema = Schema::builder("cust")
            .finite_attr("AC", DataType::Str, [Value::str("212")])
            .attr("CT", DataType::Str)
            .build();
        let phi = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.not_in("AC", ["212"]))
            .build()
            .unwrap();
        assert!(!is_satisfiable(&schema, &[phi]).unwrap());

        // With a 2-element finite domain there is room again.
        let schema = Schema::builder("cust")
            .finite_attr("AC", DataType::Str, [Value::str("212"), Value::str("518")])
            .attr("CT", DataType::Str)
            .build();
        let phi = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.not_in("AC", ["212"]))
            .build()
            .unwrap();
        let witness = find_witness(&schema, &[phi]).unwrap().unwrap();
        let ac = schema.attr_id("AC").unwrap();
        assert_eq!(witness[ac], Value::str("518"));
    }

    #[test]
    fn active_domains_include_constants_and_a_fresh_value() {
        let schema = cust_schema();
        let domains = active_domains(&schema, &[phi1(), phi2()]);
        let ct = &domains["CT"];
        for c in ["NYC", "LI", "Albany", "Troy", "Colonie"] {
            assert!(ct.contains(&Value::str(c)));
        }
        assert_eq!(ct.len(), 6, "five constants plus one fresh representative");
        let ac = &domains["AC"];
        assert_eq!(ac.len(), 7, "six constants plus one fresh representative");
    }

    #[test]
    fn node_budget_is_enforced() {
        let schema = cust_schema();
        let err = check_satisfiability(&schema, &[phi1(), phi2()], SatOptions { node_budget: 1 })
            .unwrap_err();
        assert!(matches!(err, CoreError::AnalysisBudgetExceeded(_)));
    }

    #[test]
    fn witness_respects_constraints_that_chain() {
        // CT ∈ {Albany} forces AC ∈ {518}; AC ∈ {518} forces ZIP ∉ {00000}.
        let schema = cust_schema();
        let c1 = ECfdBuilder::new("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.in_set("CT", ["Albany"]).in_set("AC", ["518"]))
            .build()
            .unwrap();
        let c2 = ECfdBuilder::new("cust")
            .lhs(["AC"])
            .pattern_rhs(["ZIP"])
            .pattern(|p| p.in_set("AC", ["518"]).not_in("ZIP", ["00000"]))
            .build()
            .unwrap();
        // Also force CT to actually be Albany so the chain is exercised.
        let c3 = ECfdBuilder::new("cust")
            .lhs(["ZIP"])
            .pattern_rhs(["CT"])
            .pattern(|p| p.in_set("CT", ["Albany"]))
            .build()
            .unwrap();
        let witness = find_witness(&schema, &[c1.clone(), c2.clone(), c3.clone()])
            .unwrap()
            .unwrap();
        assert!(single_tuple_satisfies(&schema, &[c1, c2, c3], &witness).unwrap());
        assert_eq!(witness[schema.attr_id("CT").unwrap()], Value::str("Albany"));
        assert_eq!(witness[schema.attr_id("AC").unwrap()], Value::str("518"));
        assert_ne!(witness[schema.attr_id("ZIP").unwrap()], Value::str("00000"));
    }
}
