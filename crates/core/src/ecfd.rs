//! The eCFD constraint type and its pattern tuples.

use crate::error::{CoreError, Result};
use crate::pattern::PatternValue;
use ecfd_relation::{Schema, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A pattern tuple `tp` of an eCFD: one cell per attribute of `X` (the
/// left-hand side) and one cell per attribute of `Y ∪ Yp` (the right-hand
/// side), in the order declared by the owning [`ECfd`].
///
/// When an attribute `A` occurs on both sides the paper writes `tp[A_L]` and
/// `tp[A_R]`; here those are simply the cell in `lhs` and the cell in `rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternTuple {
    /// Cells for the attributes of `X`, in [`ECfd::lhs`] order.
    pub lhs: Vec<PatternValue>,
    /// Cells for the attributes of `Y ∪ Yp`, in [`ECfd::rhs_attrs`] order
    /// (all of `Y` first, then all of `Yp`).
    pub rhs: Vec<PatternValue>,
}

impl PatternTuple {
    /// Creates a pattern tuple from its two cell lists.
    pub fn new(lhs: Vec<PatternValue>, rhs: Vec<PatternValue>) -> Self {
        PatternTuple { lhs, rhs }
    }

    /// Every cell on either side mentions only CFD-compatible patterns
    /// (wildcards and singletons).
    pub fn is_cfd_compatible(&self) -> bool {
        self.lhs
            .iter()
            .chain(self.rhs.iter())
            .all(PatternValue::is_cfd_compatible)
    }

    /// Total number of constants mentioned across all cells.
    pub fn num_constants(&self) -> usize {
        self.lhs
            .iter()
            .chain(self.rhs.iter())
            .map(PatternValue::num_constants)
            .sum()
    }
}

/// An extended Conditional Functional Dependency
/// `φ = (R: X → Y, Yp, Tp)` (Definition in Section II of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ECfd {
    relation: String,
    lhs: Vec<String>,
    fd_rhs: Vec<String>,
    pattern_rhs: Vec<String>,
    tableau: Vec<PatternTuple>,
}

impl ECfd {
    /// Creates an eCFD, validating the structural well-formedness conditions
    /// of the definition:
    ///
    /// * `Y ∩ Yp = ∅`;
    /// * attribute lists contain no duplicates;
    /// * every pattern tuple has exactly `|X|` left cells and `|Y| + |Yp|`
    ///   right cells.
    pub fn new(
        relation: impl Into<String>,
        lhs: Vec<String>,
        fd_rhs: Vec<String>,
        pattern_rhs: Vec<String>,
        tableau: Vec<PatternTuple>,
    ) -> Result<Self> {
        let relation = relation.into();
        for (label, list) in [("X", &lhs), ("Y", &fd_rhs), ("Yp", &pattern_rhs)] {
            let mut seen = BTreeSet::new();
            for a in list {
                if !seen.insert(a) {
                    return Err(CoreError::InvalidConstraint(format!(
                        "attribute `{a}` appears twice in {label}"
                    )));
                }
            }
        }
        let y_set: BTreeSet<&String> = fd_rhs.iter().collect();
        if let Some(shared) = pattern_rhs.iter().find(|a| y_set.contains(a)) {
            return Err(CoreError::InvalidConstraint(format!(
                "attribute `{shared}` appears in both Y and Yp (the definition requires Y ∩ Yp = ∅)"
            )));
        }
        if fd_rhs.is_empty() && pattern_rhs.is_empty() {
            return Err(CoreError::InvalidConstraint(
                "an eCFD needs at least one right-hand-side attribute (Y ∪ Yp ≠ ∅)".into(),
            ));
        }
        let rhs_arity = fd_rhs.len() + pattern_rhs.len();
        for (i, tp) in tableau.iter().enumerate() {
            if tp.lhs.len() != lhs.len() {
                return Err(CoreError::InvalidConstraint(format!(
                    "pattern tuple {i} has {} left cells but X has {} attributes",
                    tp.lhs.len(),
                    lhs.len()
                )));
            }
            if tp.rhs.len() != rhs_arity {
                return Err(CoreError::InvalidConstraint(format!(
                    "pattern tuple {i} has {} right cells but Y ∪ Yp has {} attributes",
                    tp.rhs.len(),
                    rhs_arity
                )));
            }
        }
        Ok(ECfd {
            relation,
            lhs,
            fd_rhs,
            pattern_rhs,
            tableau,
        })
    }

    /// Starts a fluent builder (see [`crate::ECfdBuilder`]).
    pub fn builder(relation: impl Into<String>) -> crate::builder::ECfdBuilder {
        crate::builder::ECfdBuilder::new(relation)
    }

    /// Name of the relation the constraint is defined on.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The attributes of `X` (the paper's `LHS(φ)`).
    pub fn lhs(&self) -> &[String] {
        &self.lhs
    }

    /// The attributes of `Y` (the embedded FD's right-hand side).
    pub fn fd_rhs(&self) -> &[String] {
        &self.fd_rhs
    }

    /// The attributes of `Yp` (right-hand-side pattern-only attributes).
    pub fn pattern_rhs(&self) -> &[String] {
        &self.pattern_rhs
    }

    /// The attributes of `Y ∪ Yp` in tableau cell order (the paper's
    /// `RHS(φ)`): all of `Y` first, then all of `Yp`.
    pub fn rhs_attrs(&self) -> Vec<&str> {
        self.fd_rhs
            .iter()
            .chain(self.pattern_rhs.iter())
            .map(String::as_str)
            .collect()
    }

    /// The pattern tableau `Tp`.
    pub fn tableau(&self) -> &[PatternTuple] {
        &self.tableau
    }

    /// Number of pattern tuples (the `|Tp|` knob of the experiments).
    pub fn tableau_size(&self) -> usize {
        self.tableau.len()
    }

    /// Every attribute mentioned by the constraint, deduplicated, in
    /// X, Y, Yp order.
    pub fn attributes(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in self
            .lhs
            .iter()
            .chain(self.fd_rhs.iter())
            .chain(self.pattern_rhs.iter())
        {
            if seen.insert(a.as_str()) {
                out.push(a.as_str());
            }
        }
        out
    }

    /// True when the constraint is expressible as a classic CFD: `Yp = ∅` and
    /// every cell is a wildcard or a singleton positive set.
    pub fn is_cfd(&self) -> bool {
        self.pattern_rhs.is_empty() && self.tableau.iter().all(PatternTuple::is_cfd_compatible)
    }

    /// True when the embedded FD is trivial (`Y = ∅`), i.e. the constraint
    /// only enforces pattern constraints via `Yp`.
    pub fn is_pattern_only(&self) -> bool {
        self.fd_rhs.is_empty()
    }

    /// Checks that every attribute the constraint mentions exists in `schema`
    /// and that the schema describes the same relation.
    pub fn validate_against(&self, schema: &Schema) -> Result<()> {
        if schema.name() != self.relation {
            return Err(CoreError::RelationMismatch {
                expected: self.relation.clone(),
                actual: schema.name().to_string(),
            });
        }
        for a in self.attributes() {
            if schema.attr_id(a).is_none() {
                return Err(CoreError::UnknownAttribute {
                    attribute: a.to_string(),
                    relation: self.relation.clone(),
                });
            }
        }
        Ok(())
    }

    /// Constants appearing in the tableau, grouped per attribute name.
    ///
    /// This is the constraint's contribution to the *active domain*
    /// `adom(A_i)` used in the satisfiability analysis and the MAXSS
    /// reduction (Section IV).
    pub fn constants_per_attribute(&self) -> BTreeMap<String, BTreeSet<Value>> {
        let mut out: BTreeMap<String, BTreeSet<Value>> = BTreeMap::new();
        for tp in &self.tableau {
            for (attr, cell) in self.lhs.iter().zip(&tp.lhs) {
                out.entry(attr.clone())
                    .or_default()
                    .extend(cell.constants().iter().cloned());
            }
            for (attr, cell) in self.rhs_attrs().iter().zip(&tp.rhs) {
                out.entry((*attr).to_string())
                    .or_default()
                    .extend(cell.constants().iter().cloned());
            }
        }
        // Attributes mentioned only with wildcards still participate.
        for attr in self.attributes() {
            out.entry(attr.to_string()).or_default();
        }
        out
    }

    /// Total number of constants across the tableau (a size measure used by
    /// complexity-oriented tests: the detection encoding must stay linear in
    /// it).
    pub fn total_constants(&self) -> usize {
        self.tableau.iter().map(PatternTuple::num_constants).sum()
    }

    /// Returns the cell for attribute `attr` on the left-hand side of pattern
    /// tuple `tp_idx`, if `attr ∈ X`.
    pub fn lhs_cell(&self, tp_idx: usize, attr: &str) -> Option<&PatternValue> {
        let pos = self.lhs.iter().position(|a| a == attr)?;
        self.tableau.get(tp_idx).map(|tp| &tp.lhs[pos])
    }

    /// Returns the cell for attribute `attr` on the right-hand side of pattern
    /// tuple `tp_idx`, if `attr ∈ Y ∪ Yp`.
    pub fn rhs_cell(&self, tp_idx: usize, attr: &str) -> Option<&PatternValue> {
        let pos = self.rhs_attrs().iter().position(|a| *a == attr)?;
        self.tableau.get(tp_idx).map(|tp| &tp.rhs[pos])
    }

    /// Replaces the tableau wholesale (used by the workload generator when
    /// scaling `|Tp|`). The new tableau is validated against the attribute
    /// lists.
    pub fn with_tableau(&self, tableau: Vec<PatternTuple>) -> Result<ECfd> {
        ECfd::new(
            self.relation.clone(),
            self.lhs.clone(),
            self.fd_rhs.clone(),
            self.pattern_rhs.clone(),
            tableau,
        )
    }
}

impl fmt::Display for ECfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] -> [{}] | [{}], {{ ",
            self.relation,
            self.lhs.join(", "),
            self.fd_rhs.join(", "),
            self.pattern_rhs.join(", ")
        )?;
        for (i, tp) in self.tableau.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            let lhs: Vec<String> = tp.lhs.iter().map(|c| c.to_string()).collect();
            let rhs: Vec<String> = tp.rhs.iter().map(|c| c.to_string()).collect();
            write!(f, "{} || {}", lhs.join(", "), rhs.join(", "))?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfd_relation::DataType;

    /// φ1 of Fig. 2: (cust: [CT] → [AC], ∅, T1).
    pub(crate) fn phi1() -> ECfd {
        ECfd::new(
            "cust",
            vec!["CT".into()],
            vec!["AC".into()],
            vec![],
            vec![
                PatternTuple::new(
                    vec![PatternValue::not_in_set(["NYC", "LI"])],
                    vec![PatternValue::wildcard()],
                ),
                PatternTuple::new(
                    vec![PatternValue::in_set(["Albany", "Troy", "Colonie"])],
                    vec![PatternValue::in_set(["518"])],
                ),
            ],
        )
        .unwrap()
    }

    /// φ2 of Fig. 2: (cust: [CT] → ∅, {AC}, T2).
    pub(crate) fn phi2() -> ECfd {
        ECfd::new(
            "cust",
            vec!["CT".into()],
            vec![],
            vec!["AC".into()],
            vec![PatternTuple::new(
                vec![PatternValue::in_set(["NYC"])],
                vec![PatternValue::in_set(["212", "718", "646", "347", "917"])],
            )],
        )
        .unwrap()
    }

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .attr("AC", DataType::Str)
            .attr("PN", DataType::Str)
            .attr("NM", DataType::Str)
            .attr("STR", DataType::Str)
            .attr("CT", DataType::Str)
            .attr("ZIP", DataType::Str)
            .build()
    }

    #[test]
    fn paper_constraints_are_well_formed() {
        let p1 = phi1();
        assert_eq!(p1.lhs(), &["CT".to_string()]);
        assert_eq!(p1.fd_rhs(), &["AC".to_string()]);
        assert!(p1.pattern_rhs().is_empty());
        assert_eq!(p1.tableau_size(), 2);
        assert_eq!(p1.rhs_attrs(), vec!["AC"]);
        assert!(!p1.is_cfd(), "φ1 uses a complement set");
        assert!(!p1.is_pattern_only());

        let p2 = phi2();
        assert!(p2.is_pattern_only());
        assert_eq!(p2.rhs_attrs(), vec!["AC"]);
        assert_eq!(p2.attributes(), vec!["CT", "AC"]);
    }

    #[test]
    fn validation_rejects_overlapping_y_and_yp() {
        let err = ECfd::new(
            "cust",
            vec!["CT".into()],
            vec!["AC".into()],
            vec!["AC".into()],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConstraint(_)));
    }

    #[test]
    fn validation_rejects_duplicates_and_empty_rhs() {
        assert!(ECfd::new(
            "cust",
            vec!["CT".into(), "CT".into()],
            vec!["AC".into()],
            vec![],
            vec![],
        )
        .is_err());
        assert!(ECfd::new("cust", vec!["CT".into()], vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn validation_rejects_misshaped_pattern_tuples() {
        let err = ECfd::new(
            "cust",
            vec!["CT".into()],
            vec!["AC".into()],
            vec![],
            vec![PatternTuple::new(vec![], vec![PatternValue::wildcard()])],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConstraint(_)));

        let err = ECfd::new(
            "cust",
            vec!["CT".into()],
            vec!["AC".into()],
            vec![],
            vec![PatternTuple::new(vec![PatternValue::wildcard()], vec![])],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConstraint(_)));
    }

    #[test]
    fn schema_validation() {
        let p1 = phi1();
        p1.validate_against(&cust_schema()).unwrap();

        let other = Schema::builder("orders").attr("CT", DataType::Str).build();
        assert!(matches!(
            p1.validate_against(&other),
            Err(CoreError::RelationMismatch { .. })
        ));

        let missing = Schema::builder("cust").attr("CT", DataType::Str).build();
        assert!(matches!(
            p1.validate_against(&missing),
            Err(CoreError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn constants_per_attribute_collects_active_domain() {
        let p1 = phi1();
        let consts = p1.constants_per_attribute();
        assert_eq!(
            consts["CT"],
            ["NYC", "LI", "Albany", "Troy", "Colonie"]
                .into_iter()
                .map(Value::str)
                .collect()
        );
        assert_eq!(consts["AC"], [Value::str("518")].into_iter().collect());
        assert_eq!(p1.total_constants(), 6);
    }

    #[test]
    fn cell_lookup_by_attribute() {
        let p1 = phi1();
        assert_eq!(
            p1.lhs_cell(0, "CT"),
            Some(&PatternValue::not_in_set(["NYC", "LI"]))
        );
        assert_eq!(p1.rhs_cell(1, "AC"), Some(&PatternValue::in_set(["518"])));
        assert_eq!(p1.lhs_cell(0, "AC"), None);
        assert_eq!(p1.rhs_cell(5, "AC"), None);
    }

    #[test]
    fn with_tableau_replaces_and_validates() {
        let p1 = phi1();
        let smaller = p1.with_tableau(vec![p1.tableau()[0].clone()]).unwrap();
        assert_eq!(smaller.tableau_size(), 1);
        assert!(p1
            .with_tableau(vec![PatternTuple::new(vec![], vec![])])
            .is_err());
    }

    #[test]
    fn display_round_trips_visually() {
        let s = phi1().to_string();
        assert!(s.starts_with("cust: [CT] -> [AC] | []"));
        assert!(s.contains("!{LI, NYC} || _"));
        assert!(s.contains("{Albany, Colonie, Troy} || {518}"));
    }
}
