//! Classic CFDs (Bohannon et al., ICDE 2007) as a special case of eCFDs.
//!
//! A CFD is `(R: X → Y, Tp)` where every tableau cell is either the wildcard
//! `_` or a single constant. The paper's Remark in Section II observes that a
//! CFD is exactly an eCFD with `Yp = ∅` whose constants `a` become singleton
//! sets `{a}`; [`Cfd::to_ecfd`] performs that embedding and
//! [`Cfd::try_from_ecfd`] inverts it when possible.

use crate::ecfd::{ECfd, PatternTuple};
use crate::error::{CoreError, Result};
use crate::pattern::PatternValue;
use ecfd_relation::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cell of a CFD pattern tableau: wildcard or a single constant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CfdCell {
    /// The unnamed variable `_`.
    Wildcard,
    /// A single constant.
    Constant(Value),
}

impl CfdCell {
    /// Converts to the corresponding eCFD pattern cell.
    pub fn to_pattern(&self) -> PatternValue {
        match self {
            CfdCell::Wildcard => PatternValue::Wildcard,
            CfdCell::Constant(v) => PatternValue::constant(v.clone()),
        }
    }
}

impl fmt::Display for CfdCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfdCell::Wildcard => write!(f, "_"),
            CfdCell::Constant(v) => write!(f, "{v}"),
        }
    }
}

/// A classic Conditional Functional Dependency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cfd {
    relation: String,
    lhs: Vec<String>,
    rhs: Vec<String>,
    tableau: Vec<(Vec<CfdCell>, Vec<CfdCell>)>,
}

impl Cfd {
    /// Creates a CFD; each tableau row is a pair of (LHS cells, RHS cells).
    pub fn new(
        relation: impl Into<String>,
        lhs: Vec<String>,
        rhs: Vec<String>,
        tableau: Vec<(Vec<CfdCell>, Vec<CfdCell>)>,
    ) -> Result<Self> {
        let relation = relation.into();
        for (i, (l, r)) in tableau.iter().enumerate() {
            if l.len() != lhs.len() || r.len() != rhs.len() {
                return Err(CoreError::InvalidConstraint(format!(
                    "CFD pattern tuple {i} arity mismatch: ({}, {}) vs attributes ({}, {})",
                    l.len(),
                    r.len(),
                    lhs.len(),
                    rhs.len()
                )));
            }
        }
        if rhs.is_empty() {
            return Err(CoreError::InvalidConstraint(
                "a CFD needs at least one right-hand-side attribute".into(),
            ));
        }
        Ok(Cfd {
            relation,
            lhs,
            rhs,
            tableau,
        })
    }

    /// Name of the relation the constraint is defined on.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Left-hand-side attributes.
    pub fn lhs(&self) -> &[String] {
        &self.lhs
    }

    /// Right-hand-side attributes.
    pub fn rhs(&self) -> &[String] {
        &self.rhs
    }

    /// The pattern tableau.
    pub fn tableau(&self) -> &[(Vec<CfdCell>, Vec<CfdCell>)] {
        &self.tableau
    }

    /// Embeds the CFD into the eCFD language: `(R: X → Y, ∅, Tp')` where every
    /// constant `a` becomes the singleton set `{a}`.
    pub fn to_ecfd(&self) -> ECfd {
        let tableau = self
            .tableau
            .iter()
            .map(|(l, r)| {
                PatternTuple::new(
                    l.iter().map(CfdCell::to_pattern).collect(),
                    r.iter().map(CfdCell::to_pattern).collect(),
                )
            })
            .collect();
        ECfd::new(
            self.relation.clone(),
            self.lhs.clone(),
            self.rhs.clone(),
            vec![],
            tableau,
        )
        .expect("a well-formed CFD always embeds into a well-formed eCFD")
    }

    /// Attempts to view an eCFD as a CFD. Succeeds only when `Yp = ∅` and every
    /// cell is a wildcard or a singleton positive set.
    pub fn try_from_ecfd(ecfd: &ECfd) -> Result<Cfd> {
        if !ecfd.is_cfd() {
            return Err(CoreError::InvalidConstraint(format!(
                "eCFD `{ecfd}` uses disjunction, inequality or Yp and is not expressible as a CFD"
            )));
        }
        let to_cell = |p: &PatternValue| -> CfdCell {
            match p {
                PatternValue::Wildcard => CfdCell::Wildcard,
                PatternValue::In(s) => {
                    CfdCell::Constant(s.iter().next().expect("singleton checked").clone())
                }
                PatternValue::NotIn(_) => unreachable!("is_cfd() excludes complement sets"),
            }
        };
        let tableau = ecfd
            .tableau()
            .iter()
            .map(|tp| {
                (
                    tp.lhs.iter().map(to_cell).collect(),
                    tp.rhs.iter().map(to_cell).collect(),
                )
            })
            .collect();
        Cfd::new(
            ecfd.relation(),
            ecfd.lhs().to_vec(),
            ecfd.fd_rhs().to_vec(),
            tableau,
        )
    }

    /// A convenience constructor for the standard FD `X → Y` (a CFD whose
    /// tableau is a single all-wildcard row).
    pub fn standard_fd(
        relation: impl Into<String>,
        lhs: Vec<String>,
        rhs: Vec<String>,
    ) -> Result<Cfd> {
        let row = (
            vec![CfdCell::Wildcard; lhs.len()],
            vec![CfdCell::Wildcard; rhs.len()],
        );
        Cfd::new(relation, lhs, rhs, vec![row])
    }
}

impl fmt::Display for Cfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] -> [{}], {{ ",
            self.relation,
            self.lhs.join(", "),
            self.rhs.join(", ")
        )?;
        for (i, (l, r)) in self.tableau.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            let l: Vec<String> = l.iter().map(|c| c.to_string()).collect();
            let r: Vec<String> = r.iter().map(|c| c.to_string()).collect();
            write!(f, "{} || {}", l.join(", "), r.join(", "))?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ψ1 of Example 1.1: CT → AC with bindings for Albany / Troy / Colonie.
    fn psi1() -> Cfd {
        Cfd::new(
            "cust",
            vec!["CT".into()],
            vec!["AC".into()],
            vec![
                (
                    vec![CfdCell::Constant(Value::str("Albany"))],
                    vec![CfdCell::Constant(Value::str("518"))],
                ),
                (
                    vec![CfdCell::Constant(Value::str("Troy"))],
                    vec![CfdCell::Constant(Value::str("518"))],
                ),
                (
                    vec![CfdCell::Constant(Value::str("Colonie"))],
                    vec![CfdCell::Constant(Value::str("518"))],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn cfd_embeds_into_ecfd_and_back() {
        let cfd = psi1();
        let ecfd = cfd.to_ecfd();
        assert!(ecfd.is_cfd());
        assert_eq!(ecfd.tableau_size(), 3);
        assert_eq!(
            ecfd.lhs_cell(0, "CT"),
            Some(&PatternValue::constant("Albany"))
        );
        let back = Cfd::try_from_ecfd(&ecfd).unwrap();
        assert_eq!(back, cfd);
    }

    #[test]
    fn ecfds_with_extra_expressivity_are_not_cfds() {
        let phi1 = ECfd::builder("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.not_in("CT", ["NYC", "LI"]))
            .build()
            .unwrap();
        assert!(Cfd::try_from_ecfd(&phi1).is_err());

        let phi2 = ECfd::builder("cust")
            .lhs(["CT"])
            .pattern_rhs(["AC"])
            .pattern(|p| p.constant("CT", "NYC").in_set("AC", ["212", "718"]))
            .build()
            .unwrap();
        assert!(Cfd::try_from_ecfd(&phi2).is_err());
    }

    #[test]
    fn standard_fd_is_single_wildcard_row() {
        let fd = Cfd::standard_fd("cust", vec!["CT".into()], vec!["AC".into()]).unwrap();
        assert_eq!(fd.tableau().len(), 1);
        assert_eq!(fd.tableau()[0].0, vec![CfdCell::Wildcard]);
        let ecfd = fd.to_ecfd();
        assert!(ecfd.is_cfd());
    }

    #[test]
    fn arity_validation() {
        assert!(Cfd::new(
            "t",
            vec!["A".into()],
            vec!["B".into()],
            vec![(vec![], vec![CfdCell::Wildcard])],
        )
        .is_err());
        assert!(Cfd::new("t", vec!["A".into()], vec![], vec![]).is_err());
    }

    #[test]
    fn display_shows_constants_and_wildcards() {
        let s = psi1().to_string();
        assert!(s.contains("cust: [CT] -> [AC]"));
        assert!(s.contains("Albany || 518"));
    }
}
