//! # ecfd-core
//!
//! Extended Conditional Functional Dependencies (eCFDs), the primary
//! contribution of *"Increasing the Expressivity of Conditional Functional
//! Dependencies without Extra Complexity"* (Bravo, Fan, Geerts, Ma; ICDE 2008).
//!
//! An eCFD `φ = (R: X → Y, Yp, Tp)` pairs an embedded functional dependency
//! `X → Y` with a pattern tableau `Tp` whose cells are, per attribute, either a
//! wildcard `_`, a finite set `S` (disjunction: the attribute must take one of
//! the listed values) or a complement set `S̄` (inequality: the attribute must
//! take none of them). The extra attribute set `Yp` carries pattern constraints
//! on the right-hand side without participating in the FD. Classic CFDs are the
//! special case where every non-wildcard cell is a singleton set and `Yp = ∅`.
//!
//! This crate provides:
//!
//! * the constraint model ([`PatternValue`], [`PatternTuple`], [`ECfd`],
//!   [`Cfd`]) with a fluent [`ECfdBuilder`];
//! * a concrete textual syntax and parser ([`parse_ecfd`], [`parse_ecfds`]);
//! * the matching and satisfaction semantics of Section II
//!   ([`satisfaction::check`], [`satisfaction::check_all`]);
//! * the static analyses of Section III: exact satisfiability
//!   ([`satisfiability::is_satisfiable`], single-tuple small-model search) and
//!   exact implication ([`implication::implies`], two-tuple small-model
//!   search);
//! * the MAXSS → MAXGSAT approximation of Section IV ([`maxss`]);
//! * compiled constraint sets ([`ConstraintSet`]): the validate → (optional)
//!   minimize → merge → dedupe pipeline whose output every detector backend
//!   shares.
//!
//! Violation *detection* on large instances lives in the companion crate
//! `ecfd-detect`, which encodes tableaux as data and generates SQL (Section V).
//!
//! A standalone grammar-and-semantics reference for the pattern-tuple
//! language — constants, wildcards, disjunction, negation, `Yp`-attribute
//! violations, with the paper's figures worked through — lives in
//! `docs/ecfd-syntax.md` at the repository root.
//!
//! ## Example
//!
//! ```
//! use ecfd_core::{parse_ecfd, satisfaction};
//! use ecfd_relation::{DataType, Relation, Schema, Tuple};
//!
//! let schema = Schema::builder("cust")
//!     .attr("CT", DataType::Str)
//!     .attr("AC", DataType::Str)
//!     .build();
//! // φ1 of the paper: outside {NYC, LI} city determines area code, and the
//! // three capital-district cities must have area code 518.
//! let phi1 = parse_ecfd(
//!     "cust: [CT] -> [AC] | [], { !{NYC, LI} || _ ; {Albany, Troy, Colonie} || {518} }",
//! ).unwrap();
//!
//! let db = Relation::with_tuples(schema, [
//!     Tuple::from_iter(["Albany", "718"]),   // violates φ1: Albany must be 518
//!     Tuple::from_iter(["Colonie", "518"]),
//! ]).unwrap();
//!
//! let result = satisfaction::check(&db, &phi1).unwrap();
//! assert!(!result.is_satisfied());
//! assert_eq!(result.single_tuple_violations().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod cfd;
pub mod coded;
pub mod ecfd;
pub mod error;
pub mod implication;
pub mod matching;
pub mod maxss;
pub mod normalize;
pub mod parser;
pub mod pattern;
pub mod satisfaction;
pub mod satisfiability;
pub mod set;
pub mod violation;

pub use builder::{ECfdBuilder, PatternTupleBuilder};
pub use cfd::Cfd;
pub use coded::{CodedCell, CodedSingle};
pub use ecfd::{ECfd, PatternTuple};
pub use error::{CoreError, Result};
pub use parser::{parse_ecfd, parse_ecfds};
pub use pattern::PatternValue;
pub use satisfaction::{check, check_all, SatisfactionResult};
pub use set::{CompileOptions, ConstraintSet};
pub use violation::{Violation, ViolationKind, ViolationSet};
