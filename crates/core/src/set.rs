//! Compiled constraint sets: the unit of registration for the session layer.
//!
//! The paper treats detection as a *fixed-query service*: constraints are
//! encoded once and the per-query work is independent of how many eCFDs are
//! checked. [`ConstraintSet`] is the front half of that contract — it takes a
//! user-supplied list of eCFDs through a compilation pipeline
//!
//! 1. **validate** — every constraint is checked against the relation schema
//!    ([`ECfd::validate_against`]);
//! 2. **minimize** (optional) — the set is split to pattern-tuple granularity
//!    ("each tuple itself is a constraint") and every single-pattern
//!    constraint implied by the rest is removed via the exact implication
//!    analysis ([`crate::implication::minimal_cover_with`], Section III's
//!    redundancy elimination). Off by default because implication is
//!    coNP-complete and the search, while budgeted, can be expensive on wide
//!    schemas;
//! 3. **normalize** — constraints sharing relation, `X`, `Y` and `Yp` are
//!    merged into one tableau ([`crate::normalize::merge_compatible`]), which
//!    is the form users write (cf. φ1 of the paper carrying two pattern
//!    tuples);
//! 4. **dedupe** — duplicate pattern tuples within a tableau (including those
//!    introduced by merging identical constraints) are dropped;
//!
//! and finally **splits** the result into single-pattern constraints
//! ([`crate::normalize::split_patterns`]) — the shape every detector consumes.
//! Detectors constructed from a `ConstraintSet` (`from_set` constructors in
//! `ecfd_detect`) reuse the split verbatim instead of re-validating and
//! re-splitting per detector, so a set compiled once serves the semantic,
//! SQL and incremental backends alike.
//!
//! Violation evidence produced by those detectors refers to constraints by
//! index into [`ConstraintSet::ecfds`] — the *compiled* list, which may be
//! smaller than what was registered when normalization or minimization
//! collapsed redundancies.

use crate::ecfd::ECfd;
use crate::error::Result;
use crate::implication::{minimal_cover_with, ImplicationOptions};
use crate::normalize::{merge_compatible, split_patterns, total_pattern_tuples, SinglePattern};
use ecfd_relation::Schema;
use serde::{Deserialize, Serialize};

/// Options steering [`ConstraintSet::compile_with`].
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Merge constraints sharing relation, `X`, `Y` and `Yp` into a single
    /// tableau before anything else. Default `true`.
    pub merge: bool,
    /// Drop duplicate pattern tuples within each tableau. Default `true`.
    pub dedupe: bool,
    /// Remove constraints implied by the rest of the set (exact implication
    /// analysis). Default `false` — see the module docs.
    pub minimize: bool,
    /// Search budget for the implication analysis when `minimize` is on.
    pub implication: ImplicationOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            merge: true,
            dedupe: true,
            minimize: false,
            implication: ImplicationOptions::default(),
        }
    }
}

impl CompileOptions {
    /// The default pipeline plus implication-based minimization.
    pub fn minimizing() -> Self {
        CompileOptions {
            minimize: true,
            ..CompileOptions::default()
        }
    }
}

/// A validated, normalized, split — and optionally minimized — set of eCFDs
/// over one relation schema, ready to be shared across detector backends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintSet {
    schema: Schema,
    source: Vec<ECfd>,
    compiled: Vec<ECfd>,
    singles: Vec<SinglePattern>,
}

impl ConstraintSet {
    /// Compiles `ecfds` against `schema` with [`CompileOptions::default`].
    pub fn compile(schema: &Schema, ecfds: &[ECfd]) -> Result<Self> {
        Self::compile_with(schema, ecfds, CompileOptions::default())
    }

    /// Compiles `ecfds` against `schema`: validate → merge → dedupe →
    /// (optionally) minimize → split. See the module docs for the pipeline.
    pub fn compile_with(schema: &Schema, ecfds: &[ECfd], options: CompileOptions) -> Result<Self> {
        for ecfd in ecfds {
            ecfd.validate_against(schema)?;
        }
        let mut compiled: Vec<ECfd> = ecfds.to_vec();
        if options.minimize {
            // Minimize at pattern-tuple granularity ("each tuple itself is a
            // constraint"): split first so that a single implied pattern tuple
            // can be dropped without discarding its siblings.
            let singles: Vec<ECfd> = split_patterns(&compiled)
                .into_iter()
                .map(|s| s.ecfd)
                .collect();
            compiled = minimal_cover_with(schema, &singles, options.implication)?;
        }
        if options.merge {
            compiled = merge_compatible(&compiled);
        }
        if options.dedupe {
            compiled = compiled
                .iter()
                .map(|e| {
                    let mut tableau = e.tableau().to_vec();
                    let mut seen = Vec::with_capacity(tableau.len());
                    tableau.retain(|tp| {
                        if seen.contains(tp) {
                            false
                        } else {
                            seen.push(tp.clone());
                            true
                        }
                    });
                    e.with_tableau(tableau)
                        .expect("a deduped tableau of a valid eCFD is valid")
                })
                .collect();
        }
        let singles = split_patterns(&compiled);
        Ok(ConstraintSet {
            schema: schema.clone(),
            source: ecfds.to_vec(),
            compiled,
            singles,
        })
    }

    /// Parses the textual syntax ([`crate::parse_ecfds`]) and compiles the
    /// result with [`CompileOptions::default`].
    pub fn parse(schema: &Schema, text: &str) -> Result<Self> {
        let ecfds = crate::parser::parse_ecfds(text)?;
        Self::compile(schema, &ecfds)
    }

    /// The schema the set was compiled against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The constraints exactly as they were registered, before normalization.
    pub fn source(&self) -> &[ECfd] {
        &self.source
    }

    /// The compiled constraints. Violation evidence
    /// (`ecfd_detect::ConstraintRef`) indexes into this list.
    pub fn ecfds(&self) -> &[ECfd] {
        &self.compiled
    }

    /// The split single-pattern constraints, in `CID` order, with provenance
    /// back into [`ConstraintSet::ecfds`].
    pub fn singles(&self) -> &[SinglePattern] {
        &self.singles
    }

    /// `(constraint, pattern)` provenance per split constraint — parallel to
    /// [`ConstraintSet::singles`].
    pub fn provenance(&self) -> Vec<(usize, usize)> {
        self.singles
            .iter()
            .map(|s| (s.source_constraint, s.source_pattern))
            .collect()
    }

    /// Number of compiled constraints.
    pub fn len(&self) -> usize {
        self.compiled.len()
    }

    /// True when the set compiled down to nothing.
    pub fn is_empty(&self) -> bool {
        self.compiled.is_empty()
    }

    /// Total pattern tuples across the compiled set (the paper's `|Tp|`).
    pub fn num_patterns(&self) -> usize {
        total_pattern_tuples(&self.compiled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ECfdBuilder;
    use crate::satisfaction;
    use ecfd_relation::{DataType, Relation, Tuple};

    fn schema() -> Schema {
        Schema::builder("cust")
            .attr("CT", DataType::Str)
            .attr("AC", DataType::Str)
            .build()
    }

    fn phi_albany() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.in_set("CT", ["Albany", "Troy"]).constant("AC", "518"))
            .build()
            .unwrap()
    }

    fn phi_weaker() -> ECfd {
        ECfdBuilder::new("cust")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p.in_set("CT", ["Albany"]).constant("AC", "518"))
            .build()
            .unwrap()
    }

    #[test]
    fn compile_validates_against_the_schema() {
        let bad = ECfdBuilder::new("orders")
            .lhs(["CT"])
            .fd_rhs(["AC"])
            .pattern(|p| p)
            .build()
            .unwrap();
        assert!(ConstraintSet::compile(&schema(), &[bad]).is_err());
        let set = ConstraintSet::compile(&schema(), &[phi_albany()]).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.num_patterns(), 1);
    }

    #[test]
    fn duplicate_registrations_collapse() {
        // Registering the same constraint twice merges the tableaux and then
        // dedupes the repeated pattern tuple.
        let set = ConstraintSet::compile(&schema(), &[phi_albany(), phi_albany()]).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.num_patterns(), 1);
        assert_eq!(set.source().len(), 2);
        assert_eq!(set.singles().len(), 1);
    }

    #[test]
    fn minimization_drops_implied_constraints() {
        let set = ConstraintSet::compile_with(
            &schema(),
            &[phi_albany(), phi_weaker()],
            CompileOptions::minimizing(),
        )
        .unwrap();
        assert_eq!(set.len(), 1, "the weaker Albany rule is implied");
        assert_eq!(set.ecfds()[0], phi_albany());

        // Without minimization both survive (they merge-compatibly share
        // X/Y/Yp, so they fold into one constraint with two pattern tuples).
        let raw = ConstraintSet::compile(&schema(), &[phi_albany(), phi_weaker()]).unwrap();
        assert_eq!(raw.num_patterns(), 2);
    }

    #[test]
    fn compilation_preserves_satisfaction() {
        let rows = [
            vec![("Albany", "518"), ("Troy", "518")],
            vec![("Albany", "718")],
            vec![("NYC", "212")],
        ];
        for variant in [
            CompileOptions::default(),
            CompileOptions::minimizing(),
            CompileOptions {
                merge: false,
                dedupe: false,
                ..CompileOptions::default()
            },
        ] {
            let set = ConstraintSet::compile_with(
                &schema(),
                &[phi_albany(), phi_weaker(), phi_albany()],
                variant,
            )
            .unwrap();
            for rows in &rows {
                let db = Relation::with_tuples(
                    schema(),
                    rows.iter().map(|(ct, ac)| Tuple::from_iter([*ct, *ac])),
                )
                .unwrap();
                let original = satisfaction::check_all(&db, &[phi_albany(), phi_weaker()])
                    .unwrap()
                    .is_satisfied();
                let compiled = satisfaction::check_all(&db, set.ecfds())
                    .unwrap()
                    .is_satisfied();
                assert_eq!(original, compiled, "rows {rows:?}");
            }
        }
    }

    #[test]
    fn parse_compiles_the_textual_syntax() {
        let set = ConstraintSet::parse(
            &schema(),
            "cust: [CT] -> [AC] | [], { {Albany} || {518} }\n\
             cust: [CT] -> [AC] | [], { {Troy} || {518} }",
        )
        .unwrap();
        // Same X/Y/Yp → merged into one compiled constraint, two patterns.
        assert_eq!(set.len(), 1);
        assert_eq!(set.num_patterns(), 2);
        assert_eq!(set.source().len(), 2);
        assert_eq!(set.provenance(), vec![(0, 0), (0, 1)]);
    }
}
